// Figure 2 reproduction (real threads): "Overhead of time bases for update
// transactions of different size."
//
// Workload (paper Section 4.2): disjoint update transactions of 10/50/100
// accesses -- zero conflicts, so throughput isolates the time-base cost.
// Series: shared integer counter vs MMTimer(-sim) vs host hardware clock.
//
// Paper's shape: (1) for short transactions at 1 thread the counter beats
// MMTimer (its read latency dominates); (2) the counter stops scaling with
// threads while the clock bases scale; (3) the effect shrinks as
// transactions grow.
//
// NOTE on this host: the paper used 16 physical CPUs. Points with more
// threads than hardware CPUs are flagged oversubscribed; the companion
// binary fig2_sim carries the full 16-way sweep on a machine model.

#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include <chronostm/stm/adapter.hpp>
#include <chronostm/timebase/batched_counter.hpp>
#include <chronostm/timebase/mmtimer.hpp>
#include <chronostm/timebase/perfect_clock.hpp>
#include <chronostm/timebase/shared_counter.hpp>
#include <chronostm/util/affinity.hpp>
#include <chronostm/util/cli.hpp>
#include <chronostm/util/json_out.hpp>
#include <chronostm/util/table.hpp>
#include <chronostm/workload/disjoint.hpp>
#include <chronostm/workload/runner.hpp>

using namespace chronostm;

namespace {

template <typename A>
double measure(A& adapter, unsigned threads, unsigned accesses,
               double duration_ms) {
    wl::DisjointWorkload<A> work(threads, 256);
    wl::RunSpec spec;
    spec.threads = threads;
    spec.warmup_ms = duration_ms / 5;
    spec.duration_ms = duration_ms;
    const auto res = wl::run_throughput(spec, [&](unsigned tid) {
        auto ctx = std::make_shared<typename A::Context>(adapter.make_context());
        auto rng = std::make_shared<Rng>(tid * 31 + 7);
        return [&adapter, &work, tid, accesses, ctx, rng] {
            work.run_txn(adapter, *ctx, tid, accesses, *rng);
        };
    });
    return res.mops_per_sec;
}

}  // namespace

int main(int argc, char** argv) {
    Cli cli("Figure 2: time-base overhead, disjoint update transactions");
    cli.flag_i64("duration-ms", 300, "measured window per point")
        .flag_i64("max-threads", 0, "cap thread sweep (0 = paper's 16)")
        .flag_i64("objects", 256, "objects per thread partition")
        .flag_i64("batch", 8, "batched-counter block size B")
        .flag_str("json", "", "write machine-readable results to this path");
    try {
        if (!cli.parse(argc, argv)) return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    const double duration = static_cast<double>(cli.i64("duration-ms"));
    const auto batch = static_cast<std::uint64_t>(cli.i64("batch"));
    const auto sweep = wl::figure2_thread_sweep(
        static_cast<unsigned>(cli.i64("max-threads")));

    std::printf("== Reproduction of Figure 2 (SPAA'07) -- real threads ==\n"
                "host hardware threads: %u%s\n\n",
                hardware_threads(),
                sweep.back() > hardware_threads()
                    ? " (larger points oversubscribed; see fig2_sim)"
                    : "");

    Json json;
    json.obj_begin()
        .kv("driver", "fig2_timebase_overhead")
        .kv("host_threads", hardware_threads())
        .kv("duration_ms", duration)
        .kv("batch", batch)
        .key("panels")
        .arr_begin();

    for (const unsigned accesses : {10u, 50u, 100u}) {
        Table t("panel: " + std::to_string(accesses) +
                " accesses per update transaction (Mtx/s)");
        t.set_header({"threads", "SharedCounter", "BatchedCounter", "MMTimer",
                      "HardwareClock", "oversub"});
        json.obj_begin()
            .kv("accesses", accesses)
            .key("rows")
            .arr_begin();

        std::vector<double> counter_series, mmtimer_series, clock_series;
        for (const unsigned n : sweep) {
            double c, b, m, h;
            {
                tb::SharedCounterTimeBase tbase;
                stm::LsaAdapter<tb::SharedCounterTimeBase> a(tbase);
                c = measure(a, n, accesses, duration);
            }
            {
                tb::BatchedCounterTimeBase tbase(batch);
                stm::LsaAdapter<tb::BatchedCounterTimeBase> a(tbase);
                b = measure(a, n, accesses, duration);
            }
            {
                tb::MMTimerSim sim;  // 20 MHz, 7-tick read latency
                tb::MMTimerClockTimeBase tbase(sim);
                stm::LsaAdapter<tb::MMTimerClockTimeBase> a(tbase);
                m = measure(a, n, accesses, duration);
            }
            {
                tb::PerfectClockTimeBase tbase(tb::PerfectSource::Auto);
                stm::LsaAdapter<tb::PerfectClockTimeBase> a(tbase);
                h = measure(a, n, accesses, duration);
            }
            counter_series.push_back(c);
            mmtimer_series.push_back(m);
            clock_series.push_back(h);
            t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                       Table::num(c, 3), Table::num(b, 3), Table::num(m, 3),
                       Table::num(h, 3),
                       n > hardware_threads() ? "yes" : ""});
            json.obj_begin()
                .kv("threads", n)
                .kv("shared_counter_mtxs", c)
                .kv("batched_counter_mtxs", b)
                .kv("mmtimer_mtxs", m)
                .kv("hardware_clock_mtxs", h)
                .kv("oversubscribed", n > hardware_threads())
                .obj_end();
        }
        json.arr_end().obj_end();
        t.add_note("series = LSA-RT over each time base; workload identical");
        t.add_note("BatchedCounter trades freshness aborts (data committed "
                   "within ~B stamps is unreadable) for 1/B the counter "
                   "RMWs; the win side needs multi-core contention, the "
                   "cost side shows everywhere (--batch to tune)");
        t.print(std::cout);

        // Shape checks on the non-oversubscribed prefix.
        std::size_t hw_points = 0;
        while (hw_points < sweep.size() && sweep[hw_points] <= hardware_threads())
            ++hw_points;
        if (accesses == 10 && hw_points > 0) {
            std::printf("SHAPE-CHECK counter beats MMTimer at 1 thread "
                        "(short txns): %s\n",
                        counter_series[0] > mmtimer_series[0] ? "PASS" : "FAIL");
        }
        if (hw_points >= 3) {
            const double counter_scale =
                counter_series[hw_points - 1] / counter_series[0];
            const double clock_scale =
                clock_series[hw_points - 1] / clock_series[0];
            std::printf("SHAPE-CHECK clock scales at least as well as counter "
                        "(within hardware): %s (clock x%.2f vs counter x%.2f)\n",
                        clock_scale >= counter_scale * 0.9 ? "PASS" : "FAIL",
                        clock_scale, counter_scale);
        } else {
            std::printf("SHAPE-CHECK scaling: INCONCLUSIVE on %u hardware "
                        "threads (contention needs >=4 CPUs; see ./fig2_sim "
                        "for the paper-scale shape)\n",
                        hardware_threads());
        }
        std::printf("\n");
    }
    json.arr_end().obj_end();
    if (!write_json_flag(cli.str("json"), json)) return 2;
    std::printf("For the paper's full 16-processor scaling shape, run "
                "./fig2_sim (machine model).\n");
    return 0;
}
