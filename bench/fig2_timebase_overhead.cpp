// Figure 2 reproduction (real threads): "Overhead of time bases for update
// transactions of different size."
//
// Workload (paper Section 4.2): disjoint update transactions of 10/50/100
// accesses -- zero conflicts, so throughput isolates the time-base cost.
// Series come from the uniform --timebase flag (registry specs through the
// runtime facade), defaulting to the paper's counter-vs-clock comparison
// plus this repo's scalable counters.
//
// Paper's shape: (1) for short transactions at 1 thread the counter beats
// MMTimer (its read latency dominates); (2) the counter stops scaling with
// threads while the clock bases scale; (3) the effect shrinks as
// transactions grow.
//
// NOTE on this host: the paper used 16 physical CPUs. Points with more
// threads than hardware CPUs are flagged oversubscribed; the companion
// binary fig2_sim carries the full 16-way sweep on a machine model.

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <chronostm/stm/facade.hpp>
#include <chronostm/util/affinity.hpp>
#include <chronostm/util/cli.hpp>
#include <chronostm/util/json_out.hpp>
#include <chronostm/util/table.hpp>
#include <chronostm/workload/disjoint.hpp>
#include <chronostm/workload/runner.hpp>

using namespace chronostm;

namespace {

struct Point {
    double mtx = 0;
    TxStats stats;
    std::uint64_t p50_ns = 0, p99_ns = 0, p999_ns = 0;
};

template <typename A>
Point measure(A& adapter, unsigned threads, unsigned accesses,
              double duration_ms) {
    wl::DisjointWorkload<A> work(threads, 256);
    wl::RunSpec spec;
    spec.threads = threads;
    spec.warmup_ms = duration_ms / 5;
    spec.duration_ms = duration_ms;
    const auto res = wl::run_throughput(spec, [&](unsigned tid) {
        auto ctx = std::make_shared<typename A::Context>(
            adapter.make_context());
        auto rng = std::make_shared<Rng>(tid * 31 + 7);
        return [&adapter, &work, tid, accesses, ctx, rng] {
            work.run_txn(adapter, *ctx, tid, accesses, *rng);
        };
    });
    return {res.mops_per_sec, adapter.collected_stats(), res.p50_ns,
            res.p99_ns, res.p999_ns};
}

// The time-base overhead question is engine-agnostic (the time-base
// engines draw stamps at the same points: start, extension, commit), so
// the whole figure can be re-run on any stm::make() spec with
// --engine=orec (or tl2/vstm/glock as flat reference lines -- they
// ignore the time-base axis). CI also re-runs it once with
// --epoch-filter=off to keep the full-walk validation path exercised.
// Each cell builds a FRESH engine from the registry so counters start
// zeroed, mirroring the per-cell tb::make.
Point measure_engine(const std::string& engine_spec,
                     const std::string& tb_spec, unsigned threads,
                     unsigned accesses, double duration_ms) {
    stm::Engine eng = stm::make(engine_spec, tb::make(tb_spec));
    Point p;
    stm::visit(eng, [&](auto& adapter) {
        p = measure(adapter, threads, accesses, duration_ms);
    });
    return p;
}

}  // namespace

int main(int argc, char** argv) {
    Cli cli("Figure 2: time-base overhead, disjoint update transactions");
    wl::flag_timebase(cli, "shared,batched:B=8,sharded:S=4,mmtimer,perfect");
    wl::flag_engine(cli);
    wl::flag_epoch_filter(cli);
    wl::flag_filter_stripes(cli);
    wl::flag_irrevocable_threshold(cli);
    wl::flag_chaos_seed(cli);
    cli.flag_i64("duration-ms", 300, "measured window per point")
        .flag_i64("max-threads", 0, "cap thread sweep (0 = paper's 16)")
        .flag_i64("objects", 256, "objects per thread partition")
        .flag_str("json", "", "write machine-readable results to this path");
    try {
        if (!cli.parse(argc, argv)) return 0;
        wl::validate_timebase_flag(cli);
        wl::validate_engine_flag(cli);
        if (wl::engine_specs(cli).empty())
            throw std::invalid_argument("--engine resolved to no specs");
        wl::epoch_filter_enabled(cli);
        if (wl::filter_stripes_flag(cli).size() != 1)
            throw std::invalid_argument(
                "--filter-stripes takes exactly one value here");
        wl::irrevocable_threshold_flag(cli);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    const bool epoch_filter = wl::epoch_filter_enabled(cli);
    const unsigned filter_stripes = wl::filter_stripes_flag(cli).front();
    const unsigned irrev_threshold = wl::irrevocable_threshold_flag(cli);
    // One engine spec drives the figure; the driver-level flags append as
    // registry keys (later key wins, so the flags override spec keys).
    const std::string engine_spec = wl::engine_spec_with(
        wl::engine_specs(cli).front(),
        std::string("filter=") + (epoch_filter ? "on" : "off") +
            ",stripes=" + std::to_string(filter_stripes) +
            ",irrev=" + std::to_string(irrev_threshold));
    const std::string engine_name = stm::parse_engine_spec(engine_spec).name;
#ifdef CHRONOSTM_FAILPOINTS
    if (cli.i64("chaos-seed") != 0)
        fp::set_seed(static_cast<std::uint64_t>(cli.i64("chaos-seed")));
#endif
    const double duration = static_cast<double>(cli.i64("duration-ms"));
    const auto tb_specs = tb::split_specs(cli.str("timebase"));
    const auto sweep = wl::figure2_thread_sweep(
        static_cast<unsigned>(cli.i64("max-threads")));
    if (tb_specs.empty()) {
        std::fprintf(stderr, "error: --timebase resolved to no specs\n");
        return 2;
    }

    std::printf("== Reproduction of Figure 2 (SPAA'07) -- real threads ==\n"
                "host hardware threads: %u%s\n\n",
                hardware_threads(),
                sweep.back() > hardware_threads()
                    ? " (larger points oversubscribed; see fig2_sim)"
                    : "");

    Json json;
    json.obj_begin()
        .kv("driver", "fig2_timebase_overhead")
        .kv("host_threads", hardware_threads())
        .kv("duration_ms", duration)
        .kv("timebase", cli.str("timebase"))
        .kv("engine", cli.str("engine"))
        .kv("epoch_filter", epoch_filter)
        .kv("filter_stripes", filter_stripes)
        .key("panels")
        .arr_begin();

    const long shared_i = wl::find_timebase_spec(tb_specs, "shared");
    const long mmtimer_i = wl::find_timebase_spec(tb_specs, "mmtimer");
    const long clock_i = wl::find_timebase_spec(tb_specs, "perfect");

    for (const unsigned accesses : {10u, 50u, 100u}) {
        Table t("panel: " + std::to_string(accesses) +
                " accesses per update transaction (Mtx/s)");
        std::vector<std::string> header{"threads"};
        for (const auto& spec : tb_specs) header.push_back(spec);
        header.push_back("oversub");
        t.set_header(header);
        json.obj_begin()
            .kv("accesses", accesses)
            .key("rows")
            .arr_begin();

        std::vector<std::vector<double>> series(tb_specs.size());
        for (const unsigned n : sweep) {
            std::vector<std::string> row{
                Table::num(static_cast<std::uint64_t>(n))};
            json.obj_begin().kv("threads", n).key("series").arr_begin();
            for (std::size_t i = 0; i < tb_specs.size(); ++i) {
                const Point p = measure_engine(engine_spec, tb_specs[i], n,
                                               accesses, duration);
                series[i].push_back(p.mtx);
                row.push_back(Table::num(p.mtx, 3));
                json.obj_begin()
                    .kv("timebase", tb_specs[i])
                    .kv("mtxs", p.mtx);
                wl::latency_json(json, p);
                wl::tx_stats_json(json, p.stats).obj_end();
            }
            json.arr_end()
                .kv("oversubscribed", n > hardware_threads())
                .obj_end();
            row.push_back(n > hardware_threads() ? "yes" : "");
            t.add_row(row);
        }
        json.arr_end().obj_end();
        t.add_note("series = engine '" + engine_name +
                   "' over each time base via the runtime facade; workload "
                   "identical");
        t.add_note("batched/sharded trade freshness aborts (recently "
                   "committed data is unreadable for ~2*deviation stamps) "
                   "for fewer shared-line RMWs; tune via B / S,K");
        t.print(std::cout);

        // Shape checks on the non-oversubscribed prefix, only for the
        // series the paper compares (skipped when absent from the sweep).
        std::size_t hw_points = 0;
        while (hw_points < sweep.size() &&
               sweep[hw_points] <= hardware_threads())
            ++hw_points;
        if (accesses == 10 && hw_points > 0 && shared_i >= 0 &&
            mmtimer_i >= 0) {
            std::printf("SHAPE-CHECK counter beats MMTimer at 1 thread "
                        "(short txns): %s\n",
                        series[shared_i][0] > series[mmtimer_i][0] ? "PASS"
                                                                   : "FAIL");
        }
        if (hw_points >= 3 && shared_i >= 0 && clock_i >= 0) {
            const double counter_scale =
                series[shared_i][hw_points - 1] / series[shared_i][0];
            const double clock_scale =
                series[clock_i][hw_points - 1] / series[clock_i][0];
            std::printf("SHAPE-CHECK clock scales at least as well as counter "
                        "(within hardware): %s (clock x%.2f vs counter x%.2f)\n",
                        clock_scale >= counter_scale * 0.9 ? "PASS" : "FAIL",
                        clock_scale, counter_scale);
        } else {
            std::printf("SHAPE-CHECK scaling: INCONCLUSIVE on %u hardware "
                        "threads (contention needs >=4 CPUs; see ./fig2_sim "
                        "for the paper-scale shape)\n",
                        hardware_threads());
        }
        std::printf("\n");
    }
    json.arr_end().obj_end();
    if (!write_json_flag(cli.str("json"), json)) return 2;
    std::printf("For the paper's full 16-processor scaling shape, run "
                "./fig2_sim (machine model).\n");
    return 0;
}
