// Figure 2 reproduction (machine model): the full 1..16-processor sweep on
// the discrete-event ccNUMA model (include/chronostm/simnuma/machine.hpp),
// calibrated to an Altix-class machine. This is the substitution documented
// in DESIGN.md: the host has too few CPUs to exhibit the paper's contention
// curve, but the workload's cost structure -- a serialized exclusive cache
// line vs a fixed-latency local timer -- is exactly what the model
// simulates.
//
// Paper's shape per panel (10/50/100 accesses):
//   * counter: scales briefly, saturates, then declines as transfers get
//     more expensive with machine size;
//   * MMTimer: linear scaling; loses only the single-thread short-txn case;
//   * the gap shrinks as transactions grow.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include <chronostm/simnuma/machine.hpp>
#include <chronostm/util/cli.hpp>
#include <chronostm/util/json_out.hpp>
#include <chronostm/util/table.hpp>
#include <chronostm/workload/runner.hpp>

using namespace chronostm;

int main(int argc, char** argv) {
    Cli cli("Figure 2 on the ccNUMA machine model (16-way sweep)");
    cli.flag_str("timebase", "shared,mmtimer",
                 "simulated series, facade spec grammar: shared and mmtimer "
                 "(both required -- the gated Figure-2 shapes compare them) "
                 "plus optionally sharded[:domains=N] for a third column");
    cli.flag_f64("duration-ms", 40.0, "simulated window per point")
        .flag_f64("access-ns", 150.0, "STM work per object access")
        .flag_f64("commit-ns", 250.0, "fixed commit cost")
        .flag_f64("timer-ns", 350.0, "local timer read (7 ticks @ 20 MHz)")
        .flag_f64("line-base-ns", 450.0, "counter line transfer, base")
        .flag_f64("line-hop-ns", 240.0, "counter line transfer, per log2(P)")
        .flag_i64("seed", 1, "simulation seed (same seed => same sweep)")
        .flag_str("domains", "1,2,4,8",
                  "clock-domain sweep for the sharded-counter model "
                  "(comma-separated; empty disables the section)")
        .flag_i64("wm-period", 32,
                  "sharded model: commits between watermark publishes")
        .flag_str("json", "", "write machine-readable results to this path");
    bool with_sharded = false;
    unsigned sharded_domains = 1;
    try {
        if (!cli.parse(argc, argv)) return 0;
        bool has_shared = false, has_mmtimer = false;
        for (const auto& raw : tb::split_specs(cli.str("timebase"))) {
            const tb::TimeBaseSpec spec = tb::parse_spec(raw);
            if (spec.name == "shared") {
                has_shared = true;
            } else if (spec.name == "mmtimer") {
                has_mmtimer = true;
            } else if (spec.name == "sharded") {
                with_sharded = true;
                sharded_domains =
                    static_cast<unsigned>(spec.u64("domains", 1));
            } else {
                throw std::invalid_argument(
                    "fig2_sim simulates shared, mmtimer, and "
                    "sharded[:domains=N]; got '" + spec.name + "'");
            }
        }
        if (!has_shared || !has_mmtimer)
            throw std::invalid_argument(
                "fig2_sim needs both shared and mmtimer in --timebase: the "
                "CI-gated Figure-2 shapes compare exactly those two series");
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }

    std::printf("== Reproduction of Figure 2 (SPAA'07) -- ccNUMA model ==\n"
                "model: FIFO exclusive cache line vs fixed-latency local "
                "timer; disjoint txns\n\n");

    const auto sweep = wl::figure2_thread_sweep();
    bool all_pass = true;

    Json json;
    json.obj_begin()
        .kv("driver", "fig2_sim")
        .kv("seed", cli.i64("seed"))
        .kv("duration_ms", cli.f64("duration-ms"))
        .key("panels")
        .arr_begin();

    for (const unsigned accesses : {10u, 50u, 100u}) {
        Table t("panel: " + std::to_string(accesses) +
                " accesses per update transaction (Mtx/s, simulated)");
        std::vector<std::string> header{"processors", "SharedCounter",
                                        "MMTimer"};
        if (with_sharded)
            header.push_back("Sharded(D=" + std::to_string(sharded_domains) +
                             ")");
        t.set_header(header);
        json.obj_begin().kv("accesses", accesses).key("rows").arr_begin();

        std::vector<double> counter_series, timer_series;
        for (const unsigned p : sweep) {
            sim::MachineConfig cfg;
            cfg.processors = p;
            cfg.txn_accesses = accesses;
            cfg.duration_ms = cli.f64("duration-ms");
            cfg.seed = static_cast<std::uint64_t>(cli.i64("seed"));
            cfg.access_ns = cli.f64("access-ns");
            cfg.commit_fixed_ns = cli.f64("commit-ns");
            cfg.timer_read_ns = cli.f64("timer-ns");
            cfg.counter_remote_base_ns = cli.f64("line-base-ns");
            cfg.counter_remote_hop_ns = cli.f64("line-hop-ns");

            cfg.time_base = sim::SimTimeBase::SharedCounter;
            const auto counter = sim::simulate_machine(cfg);
            cfg.time_base = sim::SimTimeBase::LocalTimer;
            const auto timer = sim::simulate_machine(cfg);

            counter_series.push_back(counter.mtx_per_sec);
            timer_series.push_back(timer.mtx_per_sec);
            std::vector<std::string> row{
                Table::num(static_cast<std::uint64_t>(p)),
                Table::num(counter.mtx_per_sec, 3),
                Table::num(timer.mtx_per_sec, 3)};
            json.obj_begin()
                .kv("processors", p)
                .kv("shared_counter_mtxs", counter.mtx_per_sec)
                .kv("mmtimer_mtxs", timer.mtx_per_sec)
                .kv("line_utilization",
                    counter.sim_ns > 0 ? counter.line_busy_ns / counter.sim_ns
                                       : 0.0);
            if (with_sharded) {
                cfg.time_base = sim::SimTimeBase::ShardedCounter;
                cfg.clock_domains = sharded_domains;
                cfg.watermark_period =
                    static_cast<unsigned>(cli.i64("wm-period"));
                const auto sharded = sim::simulate_machine(cfg);
                row.push_back(Table::num(sharded.mtx_per_sec, 3));
                json.kv("sharded_counter_mtxs", sharded.mtx_per_sec);
            }
            json.obj_end();
            t.add_row(row);
        }
        t.print(std::cout);

        const std::size_t last = sweep.size() - 1;
        const double timer_speedup = timer_series[last] / timer_series[0];
        const std::size_t peak = static_cast<std::size_t>(
            std::max_element(counter_series.begin(), counter_series.end()) -
            counter_series.begin());
        // MMTimer has no shared state: within 10% of perfectly linear.
        const bool timer_linear =
            timer_speedup > 0.9 * static_cast<double>(sweep[last]);
        // The paper's counter curve saturates and then *declines* before
        // the 16-way point: its peak sits strictly inside the sweep.
        const bool counter_declines =
            peak < last && counter_series[last] < counter_series[peak];
        const bool timer_wins_at_16 = timer_series[last] > counter_series[last];
        const bool counter_wins_1thread_short =
            accesses > 10 || counter_series[0] > timer_series[0];

        std::printf("SHAPE-CHECK MMTimer within 10%% of linear (x%.1f): %s\n",
                    timer_speedup, timer_linear ? "PASS" : "FAIL");
        std::printf("SHAPE-CHECK counter peaks at P=%u then declines: %s\n",
                    sweep[peak], counter_declines ? "PASS" : "FAIL");
        std::printf("SHAPE-CHECK MMTimer wins at 16 processors: %s\n",
                    timer_wins_at_16 ? "PASS" : "FAIL");
        if (accesses == 10)
            std::printf("SHAPE-CHECK counter wins single-threaded short txns: "
                        "%s\n",
                        counter_wins_1thread_short ? "PASS" : "FAIL");
        std::printf("\n");
        const bool panel_pass = timer_linear && counter_declines &&
                                timer_wins_at_16 && counter_wins_1thread_short;
        all_pass = all_pass && panel_pass;
        json.arr_end()
            .key("checks")
            .obj_begin()
            .kv("timer_speedup", timer_speedup)
            .kv("timer_linear", timer_linear)
            .kv("counter_peak_processors", sweep[peak])
            .kv("counter_peaks_then_declines", counter_declines)
            .kv("timer_wins_at_16", timer_wins_at_16);
        // Only the short-transaction panel runs the 1-thread crossover
        // check; don't report a vacuous pass elsewhere.
        if (accesses == 10)
            json.kv("counter_wins_1thread_short", counter_wins_1thread_short);
        json.obj_end().obj_end();
    }

    json.arr_end();

    // ---- NUMA clock-domain sweep (sharded counter model) ----
    // The per-domain counter lines split the commit-time fetch&inc load D
    // ways (and shrink the transfer diameter to the domain), so the
    // saturation point -- the processor count where throughput peaks --
    // must move right as domains are added. That is the self-check: the
    // peak's position is non-decreasing in D and strictly larger at the
    // largest D than at D=1.
    std::vector<unsigned> domain_sweep;
    {
        const std::string& csv = cli.str("domains");
        std::size_t pos = 0;
        while (pos <= csv.size()) {
            auto comma = csv.find(',', pos);
            if (comma == std::string::npos) comma = csv.size();
            const std::string tok = csv.substr(pos, comma - pos);
            if (!tok.empty())
                domain_sweep.push_back(
                    static_cast<unsigned>(std::strtoul(tok.c_str(), nullptr,
                                                       10)));
            pos = comma + 1;
        }
    }
    if (!domain_sweep.empty()) {
        Table t("clock-domain sweep: sharded counter, 10-access txns "
                "(Mtx/s, simulated)");
        std::vector<std::string> header{"processors"};
        for (const unsigned d : domain_sweep)
            header.push_back("D=" + std::to_string(d));
        t.set_header(header);
        json.key("domain_sweep").obj_begin();
        json.kv("wm_period",
                static_cast<std::uint64_t>(cli.i64("wm-period")));
        json.key("rows").arr_begin();

        std::vector<std::vector<double>> series(domain_sweep.size());
        for (const unsigned p : sweep) {
            std::vector<std::string> row{
                Table::num(static_cast<std::uint64_t>(p))};
            json.obj_begin().kv("processors", p).key("series").arr_begin();
            for (std::size_t i = 0; i < domain_sweep.size(); ++i) {
                sim::MachineConfig cfg;
                cfg.processors = p;
                cfg.txn_accesses = 10;
                cfg.duration_ms = cli.f64("duration-ms");
                cfg.seed = static_cast<std::uint64_t>(cli.i64("seed"));
                cfg.access_ns = cli.f64("access-ns");
                cfg.commit_fixed_ns = cli.f64("commit-ns");
                cfg.timer_read_ns = cli.f64("timer-ns");
                cfg.counter_remote_base_ns = cli.f64("line-base-ns");
                cfg.counter_remote_hop_ns = cli.f64("line-hop-ns");
                cfg.time_base = sim::SimTimeBase::ShardedCounter;
                cfg.clock_domains = domain_sweep[i];
                cfg.watermark_period =
                    static_cast<unsigned>(cli.i64("wm-period"));
                const auto r = sim::simulate_machine(cfg);
                series[i].push_back(r.mtx_per_sec);
                row.push_back(Table::num(r.mtx_per_sec, 3));
                json.obj_begin()
                    .kv("domains", domain_sweep[i])
                    .kv("mtxs", r.mtx_per_sec)
                    .obj_end();
            }
            json.arr_end().obj_end();
            t.add_row(row);
        }
        t.add_note("per-domain counter lines; every wm-period commits pay a "
                   "full-diameter watermark publish");
        t.print(std::cout);

        const auto peak_of = [&](const std::vector<double>& s) {
            return static_cast<std::size_t>(
                std::max_element(s.begin(), s.end()) - s.begin());
        };
        bool moves_right = true;
        for (std::size_t i = 1; i < series.size(); ++i)
            moves_right =
                moves_right && peak_of(series[i]) >= peak_of(series[i - 1]);
        const bool strictly_later =
            series.size() < 2 ||
            peak_of(series.back()) > peak_of(series.front());
        std::printf("SHAPE-CHECK sharded saturation point moves right with "
                    "domains (peak P: D=%u at %u -> D=%u at %u): %s\n",
                    domain_sweep.front(), sweep[peak_of(series.front())],
                    domain_sweep.back(), sweep[peak_of(series.back())],
                    moves_right && strictly_later ? "PASS" : "FAIL");
        all_pass = all_pass && moves_right && strictly_later;
        json.arr_end()  // rows
            .key("checks")
            .obj_begin()
            .kv("peak_moves_right", moves_right && strictly_later)
            .kv("peak_p_first", sweep[peak_of(series.front())])
            .kv("peak_p_last", sweep[peak_of(series.back())])
            .obj_end()
            .obj_end();  // domain_sweep
        std::printf("\n");
    }

    std::printf("overall: %s\n", all_pass ? "PASS" : "FAIL");
    json.kv("all_pass", all_pass).obj_end();
    if (!write_json_flag(cli.str("json"), json)) return 2;
    return all_pass ? 0 : 1;
}
