// Figure 2 reproduction (machine model): the full 1..16-processor sweep on
// the discrete-event ccNUMA model (src/simnuma), calibrated to an
// Altix-class machine. This is the substitution documented in DESIGN.md:
// the host has too few CPUs to exhibit the paper's contention curve, but
// the workload's cost structure -- a serialized exclusive cache line vs a
// fixed-latency local timer -- is exactly what the model simulates.
//
// Paper's shape per panel (10/50/100 accesses):
//   * counter: scales briefly, saturates, then declines as transfers get
//     more expensive with machine size;
//   * MMTimer: linear scaling; loses only the single-thread short-txn case;
//   * the gap shrinks as transactions grow.

#include <cstdio>
#include <iostream>
#include <vector>

#include <chronostm/simnuma/machine.hpp>
#include <chronostm/util/cli.hpp>
#include <chronostm/util/table.hpp>
#include <chronostm/workload/runner.hpp>

using namespace chronostm;

int main(int argc, char** argv) {
    Cli cli("Figure 2 on the ccNUMA machine model (16-way sweep)");
    cli.flag_f64("duration-ms", 40.0, "simulated window per point")
        .flag_f64("access-ns", 150.0, "STM work per object access")
        .flag_f64("commit-ns", 250.0, "fixed commit cost")
        .flag_f64("timer-ns", 350.0, "local timer read (7 ticks @ 20 MHz)")
        .flag_f64("line-base-ns", 450.0, "counter line transfer, base")
        .flag_f64("line-hop-ns", 60.0, "counter line transfer, per log2(P)");
    try {
        if (!cli.parse(argc, argv)) return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }

    std::printf("== Reproduction of Figure 2 (SPAA'07) -- ccNUMA model ==\n"
                "model: FIFO exclusive cache line vs fixed-latency local "
                "timer; disjoint txns\n\n");

    const auto sweep = wl::figure2_thread_sweep();
    bool all_pass = true;

    for (const unsigned accesses : {10u, 50u, 100u}) {
        Table t("panel: " + std::to_string(accesses) +
                " accesses per update transaction (Mtx/s, simulated)");
        t.set_header({"processors", "SharedCounter", "MMTimer"});

        std::vector<double> counter_series, timer_series;
        for (const unsigned p : sweep) {
            sim::MachineConfig cfg;
            cfg.processors = p;
            cfg.txn_accesses = accesses;
            cfg.duration_ms = cli.f64("duration-ms");
            cfg.access_ns = cli.f64("access-ns");
            cfg.commit_fixed_ns = cli.f64("commit-ns");
            cfg.timer_read_ns = cli.f64("timer-ns");
            cfg.counter_remote_base_ns = cli.f64("line-base-ns");
            cfg.counter_remote_hop_ns = cli.f64("line-hop-ns");

            cfg.time_base = sim::SimTimeBase::SharedCounter;
            const auto counter = sim::simulate_machine(cfg);
            cfg.time_base = sim::SimTimeBase::LocalTimer;
            const auto timer = sim::simulate_machine(cfg);

            counter_series.push_back(counter.mtx_per_sec);
            timer_series.push_back(timer.mtx_per_sec);
            t.add_row({Table::num(static_cast<std::uint64_t>(p)),
                       Table::num(counter.mtx_per_sec, 3),
                       Table::num(timer.mtx_per_sec, 3)});
        }
        t.print(std::cout);

        const std::size_t last = sweep.size() - 1;
        const double timer_speedup = timer_series[last] / timer_series[0];
        const double counter_speedup = counter_series[last] / counter_series[0];
        const bool timer_linear = timer_speedup > 14.0;
        // The counter's handicap shrinks as transactions grow (paper: "the
        // influence of the shared counter decreases when transactions get
        // larger"), so judge its scaling *relative* to the timer's.
        const bool counter_stalls = counter_speedup < 0.8 * timer_speedup;
        const bool timer_wins_at_16 = timer_series[last] > counter_series[last];
        const bool counter_wins_1thread_short =
            accesses > 10 || counter_series[0] > timer_series[0];

        std::printf("SHAPE-CHECK MMTimer ~linear to 16 (x%.1f): %s\n",
                    timer_speedup, timer_linear ? "PASS" : "FAIL");
        std::printf("SHAPE-CHECK counter stops scaling (x%.1f): %s\n",
                    counter_speedup, counter_stalls ? "PASS" : "FAIL");
        std::printf("SHAPE-CHECK MMTimer wins at 16 processors: %s\n",
                    timer_wins_at_16 ? "PASS" : "FAIL");
        if (accesses == 10)
            std::printf("SHAPE-CHECK counter wins single-threaded short txns: "
                        "%s\n",
                        counter_wins_1thread_short ? "PASS" : "FAIL");
        std::printf("\n");
        all_pass = all_pass && timer_linear && counter_stalls &&
                   timer_wins_at_16 && counter_wins_1thread_short;
    }

    std::printf("overall: %s\n", all_pass ? "PASS" : "FAIL");
    return all_pass ? 0 : 1;
}
