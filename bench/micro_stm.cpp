// Transaction-level microbenchmarks (google-benchmark): the per-operation
// costs that compose into every Figure-2 point -- read-only transactions of
// various footprints, update transactions, read-after-write, and the
// incremental cost of one more access. Run per time base to see where the
// time base enters the critical path (start + commit only).
//
// Time bases resolve through the runtime facade (tb::make): the static
// Counter/Clock rows cover the baseline-gated configurations, and the
// uniform --timebase=<spec[,spec...]> flag registers extra
// BM_ReadOnly_TB/... rows for any registry spec (sharded, adaptive, ...).

#include <benchmark/benchmark.h>

#include <cstdio>

#include <memory>
#include <string>
#include <vector>

#include <chronostm/core/lsa_stm.hpp>
#include <chronostm/util/gbench_main.hpp>

namespace {

using namespace chronostm;

struct Rig {
    LsaStm stm;
    std::vector<std::unique_ptr<TVar<long>>> vars;

    Rig(const std::string& spec, std::size_t n) : stm(tb::make(spec)) {
        for (std::size_t i = 0; i < n; ++i)
            vars.push_back(std::make_unique<TVar<long>>(1));
    }
};

void bm_readonly_txn(benchmark::State& state, const std::string& spec) {
    const auto reads = static_cast<std::size_t>(state.range(0));
    Rig rig(spec, reads);
    auto ctx = rig.stm.make_context();
    for (auto _ : state) {
        long sum = ctx.run([&](Transaction& tx) {
            long s = 0;
            for (auto& v : rig.vars) s += v->get(tx);
            return s;
        });
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * static_cast<long>(reads));
}

void bm_update_txn(benchmark::State& state, const std::string& spec) {
    const auto writes = static_cast<std::size_t>(state.range(0));
    Rig rig(spec, writes);
    auto ctx = rig.stm.make_context();
    for (auto _ : state) {
        ctx.run([&](Transaction& tx) {
            for (auto& v : rig.vars) v->set(tx, v->get(tx) + 1);
        });
    }
    state.SetItemsProcessed(state.iterations() * static_cast<long>(writes));
}

void bm_read_after_write(benchmark::State& state, const std::string& spec) {
    Rig rig(spec, 1);
    auto ctx = rig.stm.make_context();
    for (auto _ : state) {
        long v = ctx.run([&](Transaction& tx) {
            rig.vars[0]->set(tx, 7);
            long s = 0;
            for (int i = 0; i < 8; ++i) s += rig.vars[0]->get(tx);
            return s;
        });
        benchmark::DoNotOptimize(v);
    }
}

void BM_ReadOnly_Counter(benchmark::State& s) { bm_readonly_txn(s, "shared"); }
void BM_ReadOnly_Clock(benchmark::State& s) { bm_readonly_txn(s, "perfect"); }
void BM_Update_Counter(benchmark::State& s) { bm_update_txn(s, "shared"); }
void BM_Update_Clock(benchmark::State& s) { bm_update_txn(s, "perfect"); }
void BM_ReadAfterWrite_Counter(benchmark::State& s) {
    bm_read_after_write(s, "shared");
}

}  // namespace

BENCHMARK(BM_ReadOnly_Counter)->Arg(1)->Arg(10)->Arg(100);
BENCHMARK(BM_ReadOnly_Clock)->Arg(1)->Arg(10)->Arg(100);
BENCHMARK(BM_Update_Counter)->Arg(1)->Arg(10)->Arg(100);
BENCHMARK(BM_Update_Clock)->Arg(1)->Arg(10)->Arg(100);
BENCHMARK(BM_ReadAfterWrite_Counter);

int main(int argc, char** argv) {
    // Uniform --timebase flag: each extra spec registers the full row set
    // under a spec-tagged name, so sweeps never shadow the gated rows.
    // Specs are resolved once up front so a typo exits 2 with the
    // registry's message instead of aborting mid-benchmark.
    try {
        for (const auto& spec : chronostm::tb::split_specs(
                 chronostm::extract_timebase_flag(argc, argv))) {
            chronostm::tb::make(spec);
            benchmark::RegisterBenchmark(("BM_ReadOnly_TB/" + spec).c_str(),
                                         bm_readonly_txn, spec)
                ->Arg(10)
                ->Arg(100);
            benchmark::RegisterBenchmark(("BM_Update_TB/" + spec).c_str(),
                                         bm_update_txn, spec)
                ->Arg(10)
                ->Arg(100);
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    return chronostm::gbench_main_with_json(argc, argv);
}
