// Transaction-level microbenchmarks (google-benchmark): the per-operation
// costs that compose into every Figure-2 point -- read-only transactions of
// various footprints, update transactions, read-after-write, and the
// incremental cost of one more access. Run per time base to see where the
// time base enters the critical path (start + commit only).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include <chronostm/core/lsa_stm.hpp>
#include <chronostm/timebase/perfect_clock.hpp>
#include <chronostm/timebase/shared_counter.hpp>
#include <chronostm/util/gbench_main.hpp>

namespace {

using namespace chronostm;

template <typename TB>
struct Rig {
    TB tbase;
    LsaStm<TB> stm{tbase};
    std::vector<std::unique_ptr<TVar<long, TB>>> vars;

    explicit Rig(std::size_t n) {
        for (std::size_t i = 0; i < n; ++i)
            vars.push_back(std::make_unique<TVar<long, TB>>(1));
    }
};

template <typename TB>
void bm_readonly_txn(benchmark::State& state) {
    const auto reads = static_cast<std::size_t>(state.range(0));
    Rig<TB> rig(reads);
    auto ctx = rig.stm.make_context();
    for (auto _ : state) {
        long sum = ctx.run([&](Transaction<TB>& tx) {
            long s = 0;
            for (auto& v : rig.vars) s += v->get(tx);
            return s;
        });
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * static_cast<long>(reads));
}

template <typename TB>
void bm_update_txn(benchmark::State& state) {
    const auto writes = static_cast<std::size_t>(state.range(0));
    Rig<TB> rig(writes);
    auto ctx = rig.stm.make_context();
    for (auto _ : state) {
        ctx.run([&](Transaction<TB>& tx) {
            for (auto& v : rig.vars) v->set(tx, v->get(tx) + 1);
        });
    }
    state.SetItemsProcessed(state.iterations() * static_cast<long>(writes));
}

template <typename TB>
void bm_read_after_write(benchmark::State& state) {
    Rig<TB> rig(1);
    auto ctx = rig.stm.make_context();
    for (auto _ : state) {
        long v = ctx.run([&](Transaction<TB>& tx) {
            rig.vars[0]->set(tx, 7);
            long s = 0;
            for (int i = 0; i < 8; ++i) s += rig.vars[0]->get(tx);
            return s;
        });
        benchmark::DoNotOptimize(v);
    }
}

using Counter = tb::SharedCounterTimeBase;
using Clock = tb::PerfectClockTimeBase;

void BM_ReadOnly_Counter(benchmark::State& s) { bm_readonly_txn<Counter>(s); }
void BM_ReadOnly_Clock(benchmark::State& s) { bm_readonly_txn<Clock>(s); }
void BM_Update_Counter(benchmark::State& s) { bm_update_txn<Counter>(s); }
void BM_Update_Clock(benchmark::State& s) { bm_update_txn<Clock>(s); }
void BM_ReadAfterWrite_Counter(benchmark::State& s) {
    bm_read_after_write<Counter>(s);
}

}  // namespace

BENCHMARK(BM_ReadOnly_Counter)->Arg(1)->Arg(10)->Arg(100);
BENCHMARK(BM_ReadOnly_Clock)->Arg(1)->Arg(10)->Arg(100);
BENCHMARK(BM_Update_Counter)->Arg(1)->Arg(10)->Arg(100);
BENCHMARK(BM_Update_Clock)->Arg(1)->Arg(10)->Arg(100);
BENCHMARK(BM_ReadAfterWrite_Counter);

int main(int argc, char** argv) {
    return chronostm::gbench_main_with_json(argc, argv);
}
