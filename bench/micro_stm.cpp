// Transaction-level microbenchmarks (google-benchmark): the per-operation
// costs that compose into every Figure-2 point -- read-only transactions of
// various footprints, update transactions, read-after-write, and the
// incremental cost of one more access. Run per time base to see where the
// time base enters the critical path (start + commit only).
//
// Time bases resolve through the runtime facade (tb::make): the static
// Counter/Clock rows cover the baseline-gated configurations, and the
// uniform --timebase=<spec[,spec...]> flag registers extra
// BM_ReadOnly_TB/... rows for any registry spec (sharded, adaptive, ...).
// --engine=orec points those dynamic rows at the orec engine instead.
//
// Engine rows (baseline-gated by scripts/check_bench.py):
//  * BM_Orec_* twins the LSA rows on the orec-table word STM under the
//    SAME workload; the gate requires each twin within --orec-tolerance
//    of its LSA row (the shift+mask lookup must not cost more than the
//    per-TVar indirection it replaces).
//  * BM_Orec_Update_Batched8 vs BM_Tl2_Update: orec LSA on the batched
//    scalable counter must beat the global-clock TL2 baseline on the
//    100-write row (what snapshot extension + a scalable base buy).
//  * BM_Update_Wide_Counter keeps the >8-byte TVar path (lazy heap
//    history ring) measured next to the word-sized TVars' embedded ring.

#include <benchmark/benchmark.h>

#include <cstdio>

#include <memory>
#include <string>
#include <vector>

#include <chronostm/core/lsa_stm.hpp>
#include <chronostm/core/orec_stm.hpp>
#include <chronostm/stm/facade.hpp>
#include <chronostm/util/gbench_main.hpp>

namespace {

using namespace chronostm;

struct Rig {
    LsaStm stm;
    std::vector<std::unique_ptr<TVar<long>>> vars;

    Rig(const std::string& spec, std::size_t n, StmConfig cfg = StmConfig{})
        : stm(tb::make(spec), std::move(cfg)) {
        for (std::size_t i = 0; i < n; ++i)
            vars.push_back(std::make_unique<TVar<long>>(1));
    }
};

void bm_readonly_txn(benchmark::State& state, const std::string& spec,
                     StmConfig cfg = StmConfig{}) {
    const auto reads = static_cast<std::size_t>(state.range(0));
    Rig rig(spec, reads, std::move(cfg));
    auto ctx = rig.stm.make_context();
    for (auto _ : state) {
        long sum = ctx.run([&](Transaction& tx) {
            long s = 0;
            for (auto& v : rig.vars) s += v->get(tx);
            return s;
        });
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * static_cast<long>(reads));
}

void bm_update_txn(benchmark::State& state, const std::string& spec,
                   StmConfig cfg = StmConfig{}) {
    const auto writes = static_cast<std::size_t>(state.range(0));
    Rig rig(spec, writes, std::move(cfg));
    auto ctx = rig.stm.make_context();
    for (auto _ : state) {
        ctx.run([&](Transaction& tx) {
            for (auto& v : rig.vars) v->set(tx, v->get(tx) + 1);
        });
    }
    state.SetItemsProcessed(state.iterations() * static_cast<long>(writes));
}

void bm_read_after_write(benchmark::State& state, const std::string& spec) {
    Rig rig(spec, 1);
    auto ctx = rig.stm.make_context();
    for (auto _ : state) {
        long v = ctx.run([&](Transaction& tx) {
            rig.vars[0]->set(tx, 7);
            long s = 0;
            for (int i = 0; i < 8; ++i) s += rig.vars[0]->get(tx);
            return s;
        });
        benchmark::DoNotOptimize(v);
    }
}

// --- orec engine twins: same workloads on raw WordVar<long>s ------------

struct OrecRig {
    OrecStm stm;
    std::vector<std::unique_ptr<WordVar<long>>> vars;

    OrecRig(const std::string& spec, std::size_t n,
            OrecConfig cfg = OrecConfig{})
        : stm(tb::make(spec), cfg) {
        for (std::size_t i = 0; i < n; ++i)
            vars.push_back(std::make_unique<WordVar<long>>(1));
    }
};

void bm_orec_readonly_txn(benchmark::State& state, const std::string& spec,
                          OrecConfig cfg = OrecConfig{}) {
    const auto reads = static_cast<std::size_t>(state.range(0));
    OrecRig rig(spec, reads, cfg);
    auto ctx = rig.stm.make_context();
    for (auto _ : state) {
        long sum = ctx.run([&](OrecTransaction& tx) {
            long s = 0;
            for (auto& v : rig.vars) s += v->get(tx);
            return s;
        });
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * static_cast<long>(reads));
}

void bm_orec_update_txn(benchmark::State& state, const std::string& spec,
                        OrecConfig cfg = OrecConfig{}) {
    const auto writes = static_cast<std::size_t>(state.range(0));
    OrecRig rig(spec, writes, cfg);
    auto ctx = rig.stm.make_context();
    for (auto _ : state) {
        ctx.run([&](OrecTransaction& tx) {
            for (auto& v : rig.vars) v->set(tx, v->get(tx) + 1);
        });
    }
    state.SetItemsProcessed(state.iterations() * static_cast<long>(writes));
}

void bm_orec_read_after_write(benchmark::State& state,
                              const std::string& spec) {
    OrecRig rig(spec, 1);
    auto ctx = rig.stm.make_context();
    for (auto _ : state) {
        long v = ctx.run([&](OrecTransaction& tx) {
            rig.vars[0]->set(tx, 7);
            long s = 0;
            for (int i = 0; i < 8; ++i) s += rig.vars[0]->get(tx);
            return s;
        });
        benchmark::DoNotOptimize(v);
    }
}

// TL2 baseline twin of the update workload (its own global version clock;
// no --timebase axis) for the orec-beats-TL2 gate.
void bm_tl2_update_txn(benchmark::State& state) {
    const auto writes = static_cast<std::size_t>(state.range(0));
    stm::Tl2Adapter adapter;
    std::vector<std::unique_ptr<stm::Tl2Adapter::Var<long>>> vars;
    for (std::size_t i = 0; i < writes; ++i)
        vars.push_back(std::make_unique<stm::Tl2Adapter::Var<long>>(1));
    auto ctx = adapter.make_context();
    for (auto _ : state) {
        adapter.run(ctx, [&](stm::Tl2Adapter::Txn& tx) {
            for (auto& v : vars) tx.write(*v, tx.read(*v) + 1);
        });
    }
    state.SetItemsProcessed(state.iterations() * static_cast<long>(writes));
}

// --- snapshot-extension cost rows (epoch-filter gate) -------------------
//
// One long-lived transaction holds R reads; each iteration draws one stamp
// on a side thread clock of the SAME time base (time moves, but no writer
// commits, so the commit epoch is unchanged) and calls try_extend_now().
// Filter on: the O(1) epoch comparison admits the new snapshot bound.
// Filter off (_NoFilter twins): the full O(R) read-set walk runs every
// time. check_bench.py --epoch-gate requires on >= 2x off at R=8192.

void bm_extend_lsa(benchmark::State& state, const std::string& spec,
                   bool filter) {
    const auto reads = static_cast<std::size_t>(state.range(0));
    StmConfig cfg;
    cfg.epoch_filter = filter;
    Rig rig(spec, reads, cfg);
    auto ctx = rig.stm.make_context();
    auto side = rig.stm.time_base().make_thread_clock();
    // Warm block-drawing bases past their deviation window: on a fresh
    // batched/sharded counter even the initial version 0 is inadmissible
    // (0 + 2*deviation <= get_time() fails) and the raw reads below
    // would throw a freshness abort.
    for (int i = 0; i < 64; ++i) side.get_new_ts();
    Transaction tx = ctx.txn_begin();
    long sum = 0;
    for (auto& v : rig.vars) sum += v->get(tx);
    benchmark::DoNotOptimize(sum);
    for (auto _ : state) {
        side.get_new_ts();
        benchmark::DoNotOptimize(tx.try_extend_now());
    }
    state.SetItemsProcessed(state.iterations());
}

void bm_extend_orec(benchmark::State& state, const std::string& spec,
                    bool filter) {
    const auto reads = static_cast<std::size_t>(state.range(0));
    OrecConfig cfg;
    cfg.epoch_filter = filter;
    OrecRig rig(spec, reads, cfg);
    auto ctx = rig.stm.make_context();
    auto side = rig.stm.time_base().make_thread_clock();
    // Same warm-up as bm_extend_lsa: clear the deviation window so the
    // anchor reads admit version 0 on block-drawing bases.
    for (int i = 0; i < 64; ++i) side.get_new_ts();
    OrecTransaction tx = ctx.txn_begin();
    long sum = 0;
    for (auto& v : rig.vars) sum += v->get(tx);
    benchmark::DoNotOptimize(sum);
    for (auto _ : state) {
        side.get_new_ts();
        benchmark::DoNotOptimize(tx.try_extend_now());
    }
    state.SetItemsProcessed(state.iterations());
}

// --- striped-filter rows: extension under a DISJOINT writer -------------
//
// The workload the stripe sharding exists for: a long-lived reader holds
// R reads while a writer commits -- every iteration -- to a var OUTSIDE
// the reader's stripes. With the single-word filter (stripes=1, the
// _Stripe1 twins) every writer bump kills the fast hit and the extension
// walks all R entries; with the default striping the bump lands outside
// the reader's signature and the extension stays O(touched stripes).
// check_bench.py --stripe-gate requires default >= 2x _Stripe1 at R=8192.
//
// The writer runs interleaved on the SAME thread (one commit per
// iteration) rather than free-running: on a single-CPU host a background
// thread would starve during the timed loop and the stripes=1 row would
// fast-hit too, collapsing the ratio. Both rows pay the identical writer
// commit, so the delta isolates the extension cost.
//
// Reader vars live in one contiguous arena of heap-history slots
// (TVar<long, false>, three words each) so the R=8192 footprint spans a
// handful of 16KiB range stripes instead of the whole heap; the writer
// var is probed into a stripe outside the reader's signature (verified
// via filter_stripe_of, not assumed from the arithmetic).

constexpr std::size_t kStripeBlock = 16 * 1024;

void bm_extend_lsa_disjoint(benchmark::State& state, unsigned stripes) {
    const auto reads = static_cast<std::size_t>(state.range(0));
    using Slot = TVar<long, false>;
    StmConfig cfg;
    cfg.filter_stripes = stripes;
    LsaStm stm(tb::make("shared"), cfg);
    std::unique_ptr<unsigned char[]> rbuf(
        new unsigned char[reads * sizeof(Slot)]);
    auto* rv = reinterpret_cast<Slot*>(rbuf.get());
    for (std::size_t i = 0; i < reads; ++i) new (rv + i) Slot(1);
    std::uint64_t rsig = 0;
    for (std::size_t i = 0; i < reads; ++i)
        rsig |= std::uint64_t{1} << stm.filter_stripe_of(rv + i);
    std::unique_ptr<unsigned char[]> wbuf(
        new unsigned char[64 * kStripeBlock]);
    Slot* wv = nullptr;
    for (unsigned c = 0; c < 64 && wv == nullptr; ++c) {
        unsigned char* cand = wbuf.get() + c * kStripeBlock;
        if (!((rsig >> stm.filter_stripe_of(cand)) & 1u))
            wv = new (cand) Slot(1);
    }
    if (wv == nullptr)  // stripes=1: no stripe is disjoint, any slot does
        wv = new (wbuf.get()) Slot(1);

    {
        auto rctx = stm.make_context();
        auto wctx = stm.make_context();
        Transaction tx = rctx.txn_begin();
        long sum = 0;
        for (std::size_t i = 0; i < reads; ++i) sum += rv[i].get(tx);
        benchmark::DoNotOptimize(sum);
        for (auto _ : state) {
            wctx.run(
                [&](Transaction& t) { wv->set(t, wv->get(t) + 1); });
            benchmark::DoNotOptimize(tx.try_extend_now());
        }
    }
    state.SetItemsProcessed(state.iterations());
    wv->~Slot();
    for (std::size_t i = 0; i < reads; ++i) rv[i].~Slot();
}

void bm_extend_orec_disjoint(benchmark::State& state, unsigned stripes) {
    const auto reads = static_cast<std::size_t>(state.range(0));
    OrecConfig cfg;
    cfg.filter_stripes = stripes;
    OrecStm stm(tb::make("shared"), cfg);
    std::unique_ptr<unsigned char[]> rbuf(
        new unsigned char[reads * sizeof(WordVar<long>)]);
    auto* rv = reinterpret_cast<WordVar<long>*>(rbuf.get());
    for (std::size_t i = 0; i < reads; ++i) new (rv + i) WordVar<long>(1);
    std::uint64_t rsig = 0;
    for (std::size_t i = 0; i < reads; ++i)
        rsig |= std::uint64_t{1} << stm.filter_stripe_of(rv + i);
    std::unique_ptr<unsigned char[]> wbuf(
        new unsigned char[64 * kStripeBlock]);
    WordVar<long>* wv = nullptr;
    for (unsigned c = 0; c < 64 && wv == nullptr; ++c) {
        unsigned char* cand = wbuf.get() + c * kStripeBlock;
        if (!((rsig >> stm.filter_stripe_of(cand)) & 1u))
            wv = new (cand) WordVar<long>(1);
    }
    if (wv == nullptr)
        wv = new (wbuf.get()) WordVar<long>(1);

    {
        auto rctx = stm.make_context();
        auto wctx = stm.make_context();
        OrecTransaction tx = rctx.txn_begin();
        long sum = 0;
        for (std::size_t i = 0; i < reads; ++i) sum += rv[i].get(tx);
        benchmark::DoNotOptimize(sum);
        for (auto _ : state) {
            wctx.run(
                [&](OrecTransaction& t) { wv->set(t, wv->get(t) + 1); });
            benchmark::DoNotOptimize(tx.try_extend_now());
        }
    }
    state.SetItemsProcessed(state.iterations());
    wv->~WordVar<long>();
    for (std::size_t i = 0; i < reads; ++i) rv[i].~WordVar<long>();
}

// --- read-only commit fast path (no stamp drawn) ------------------------
//
// Single-var transactions on the shared counter: the update twin pays the
// counter RMW at commit, the read-only row commits straight off its
// snapshot. check_bench.py requires the RO row to be cheaper.

void bm_ro_commit_lsa(benchmark::State& state) {
    Rig rig("shared", 1);
    auto ctx = rig.stm.make_context();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ctx.run([&](Transaction& tx) { return rig.vars[0]->get(tx); }));
    }
    state.SetItemsProcessed(state.iterations());
}

void bm_update_commit_lsa(benchmark::State& state) {
    Rig rig("shared", 1);
    auto ctx = rig.stm.make_context();
    for (auto _ : state) {
        ctx.run([&](Transaction& tx) {
            rig.vars[0]->set(tx, rig.vars[0]->get(tx) + 1);
        });
    }
    state.SetItemsProcessed(state.iterations());
}

void bm_ro_commit_orec(benchmark::State& state) {
    OrecRig rig("shared", 1);
    auto ctx = rig.stm.make_context();
    for (auto _ : state) {
        benchmark::DoNotOptimize(ctx.run(
            [&](OrecTransaction& tx) { return rig.vars[0]->get(tx); }));
    }
    state.SetItemsProcessed(state.iterations());
}

void bm_update_commit_orec(benchmark::State& state) {
    OrecRig rig("shared", 1);
    auto ctx = rig.stm.make_context();
    for (auto _ : state) {
        ctx.run([&](OrecTransaction& tx) {
            rig.vars[0]->set(tx, rig.vars[0]->get(tx) + 1);
        });
    }
    state.SetItemsProcessed(state.iterations());
}

// Write-back batching twin: the same 100-write orec update with the
// pre-batching publish sequence (a release store per owned orec). The
// batched default (BM_Orec_Update_Counter) must stay within
// --writeback-gate of this row.
void bm_orec_update_nobatch(benchmark::State& state) {
    const auto writes = static_cast<std::size_t>(state.range(0));
    OrecConfig cfg;
    cfg.batched_writeback = false;
    OrecRig rig("shared", writes, cfg);
    auto ctx = rig.stm.make_context();
    for (auto _ : state) {
        ctx.run([&](OrecTransaction& tx) {
            for (auto& v : rig.vars) v->set(tx, v->get(tx) + 1);
        });
    }
    state.SetItemsProcessed(state.iterations() * static_cast<long>(writes));
}

// Wider-than-a-word TVar: exercises the lazy heap history ring that
// word-sized TVars no longer use (their ring is embedded in the var).
struct Wide {
    long a;
    long b;
};

void bm_update_wide_txn(benchmark::State& state, const std::string& spec) {
    const auto writes = static_cast<std::size_t>(state.range(0));
    LsaStm stm(tb::make(spec));
    std::vector<std::unique_ptr<TVar<Wide>>> vars;
    for (std::size_t i = 0; i < writes; ++i)
        vars.push_back(std::make_unique<TVar<Wide>>(Wide{1, 2}));
    auto ctx = stm.make_context();
    for (auto _ : state) {
        ctx.run([&](Transaction& tx) {
            for (auto& v : vars) {
                Wide w = v->get(tx);
                w.a += 1;
                v->set(tx, w);
            }
        });
    }
    state.SetItemsProcessed(state.iterations() * static_cast<long>(writes));
}

void BM_ReadOnly_Counter(benchmark::State& s) { bm_readonly_txn(s, "shared"); }
void BM_ReadOnly_Clock(benchmark::State& s) { bm_readonly_txn(s, "perfect"); }
void BM_Update_Counter(benchmark::State& s) { bm_update_txn(s, "shared"); }
void BM_Update_Clock(benchmark::State& s) { bm_update_txn(s, "perfect"); }
void BM_ReadAfterWrite_Counter(benchmark::State& s) {
    bm_read_after_write(s, "shared");
}
void BM_Orec_ReadOnly_Counter(benchmark::State& s) {
    bm_orec_readonly_txn(s, "shared");
}
void BM_Orec_ReadOnly_Clock(benchmark::State& s) {
    bm_orec_readonly_txn(s, "perfect");
}
void BM_Orec_Update_Counter(benchmark::State& s) {
    bm_orec_update_txn(s, "shared");
}
void BM_Orec_Update_Clock(benchmark::State& s) {
    bm_orec_update_txn(s, "perfect");
}
void BM_Orec_ReadAfterWrite_Counter(benchmark::State& s) {
    bm_orec_read_after_write(s, "shared");
}
void BM_Orec_Update_Batched8(benchmark::State& s) {
    bm_orec_update_txn(s, "batched:B=8");
}
void BM_Tl2_Update(benchmark::State& s) { bm_tl2_update_txn(s); }
void BM_Update_Wide_Counter(benchmark::State& s) {
    bm_update_wide_txn(s, "shared");
}
void BM_Extend_Lsa(benchmark::State& s) { bm_extend_lsa(s, "shared", true); }
void BM_Extend_Lsa_NoFilter(benchmark::State& s) {
    bm_extend_lsa(s, "shared", false);
}
void BM_Extend_Orec(benchmark::State& s) { bm_extend_orec(s, "shared", true); }
void BM_Extend_Orec_NoFilter(benchmark::State& s) {
    bm_extend_orec(s, "shared", false);
}
void BM_Extend_Lsa_Batched8(benchmark::State& s) {
    bm_extend_lsa(s, "batched:B=8", true);
}
void BM_Extend_Lsa_Batched8_NoFilter(benchmark::State& s) {
    bm_extend_lsa(s, "batched:B=8", false);
}
void BM_Extend_Lsa_Sharded4(benchmark::State& s) {
    bm_extend_lsa(s, "sharded:S=4", true);
}
void BM_Extend_Lsa_Sharded4_NoFilter(benchmark::State& s) {
    bm_extend_lsa(s, "sharded:S=4", false);
}
void BM_Extend_Lsa_DisjointWriter(benchmark::State& s) {
    bm_extend_lsa_disjoint(s, 64);
}
void BM_Extend_Lsa_DisjointWriter_Stripe1(benchmark::State& s) {
    bm_extend_lsa_disjoint(s, 1);
}
void BM_Extend_Orec_DisjointWriter(benchmark::State& s) {
    bm_extend_orec_disjoint(s, 64);
}
void BM_Extend_Orec_DisjointWriter_Stripe1(benchmark::State& s) {
    bm_extend_orec_disjoint(s, 1);
}
void BM_ReadOnly_Commit_Lsa(benchmark::State& s) { bm_ro_commit_lsa(s); }
void BM_Update_Commit_Lsa(benchmark::State& s) { bm_update_commit_lsa(s); }
void BM_ReadOnly_Commit_Orec(benchmark::State& s) { bm_ro_commit_orec(s); }
void BM_Update_Commit_Orec(benchmark::State& s) { bm_update_commit_orec(s); }
void BM_Orec_Update_NoBatch(benchmark::State& s) {
    bm_orec_update_nobatch(s);
}

}  // namespace

// The /1000 read-only rows exist for the orec-vs-LSA ratio gate: at /100
// (~450ns) the begin/commit constant and loop microstructure leave the
// 1.15x same-run bound within host noise (a ~7% layout swing on either
// side flips it), while at /1000 the per-access metadata lookup the gate
// isolates dominates. check_bench's --orec-min-ns floor skips the short
// rows; their absolute cost stays covered by the cross-run gate.
BENCHMARK(BM_ReadOnly_Counter)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);
BENCHMARK(BM_ReadOnly_Clock)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);
BENCHMARK(BM_Update_Counter)->Arg(1)->Arg(10)->Arg(100);
BENCHMARK(BM_Update_Clock)->Arg(1)->Arg(10)->Arg(100);
BENCHMARK(BM_ReadAfterWrite_Counter);
BENCHMARK(BM_Orec_ReadOnly_Counter)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);
BENCHMARK(BM_Orec_ReadOnly_Clock)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);
BENCHMARK(BM_Orec_Update_Counter)->Arg(1)->Arg(10)->Arg(100);
BENCHMARK(BM_Orec_Update_Clock)->Arg(1)->Arg(10)->Arg(100);
BENCHMARK(BM_Orec_ReadAfterWrite_Counter);
BENCHMARK(BM_Orec_Update_Batched8)->Arg(100);
BENCHMARK(BM_Tl2_Update)->Arg(100);
BENCHMARK(BM_Update_Wide_Counter)->Arg(1)->Arg(100);
BENCHMARK(BM_Extend_Lsa)->Arg(1024)->Arg(8192);
BENCHMARK(BM_Extend_Lsa_NoFilter)->Arg(1024)->Arg(8192);
BENCHMARK(BM_Extend_Orec)->Arg(1024)->Arg(8192);
BENCHMARK(BM_Extend_Orec_NoFilter)->Arg(1024)->Arg(8192);
BENCHMARK(BM_Extend_Lsa_Batched8)->Arg(8192);
BENCHMARK(BM_Extend_Lsa_Batched8_NoFilter)->Arg(8192);
BENCHMARK(BM_Extend_Lsa_Sharded4)->Arg(8192);
BENCHMARK(BM_Extend_Lsa_Sharded4_NoFilter)->Arg(8192);
BENCHMARK(BM_Extend_Lsa_DisjointWriter)->Arg(8192);
BENCHMARK(BM_Extend_Lsa_DisjointWriter_Stripe1)->Arg(8192);
BENCHMARK(BM_Extend_Orec_DisjointWriter)->Arg(8192);
BENCHMARK(BM_Extend_Orec_DisjointWriter_Stripe1)->Arg(8192);
BENCHMARK(BM_ReadOnly_Commit_Lsa);
BENCHMARK(BM_Update_Commit_Lsa);
BENCHMARK(BM_ReadOnly_Commit_Orec);
BENCHMARK(BM_Update_Commit_Orec);
BENCHMARK(BM_Orec_Update_NoBatch)->Arg(100);

int main(int argc, char** argv) {
    // Uniform --timebase flag: each extra spec registers the full row set
    // under a spec-tagged name, so sweeps never shadow the gated rows.
    // --engine takes a full stm::make() registry spec and points the
    // dynamic rows at that engine; its keys flow into the rows' config
    // ("orec:bits=14,filter=off"). The dynamic rows sweep time bases, so
    // only the time-base engines (lsa, orec) are accepted -- but the spec
    // is still resolved through the registry first, so an unknown name or
    // key exits 2 with the registry's one-line message, same as a
    // --timebase typo.
    try {
        const std::string engine = chronostm::extract_engine_flag(argc, argv);
        const chronostm::stm::Engine eng = chronostm::stm::make(engine);
        chronostm::StmConfig lsa_cfg;
        chronostm::OrecConfig orec_cfg;
        bool orec = false;
        if (auto* a =
                chronostm::stm::get_if<chronostm::stm::OrecAdapter>(eng)) {
            orec = true;
            orec_cfg = a->stm().config();
        } else if (auto* a =
                       chronostm::stm::get_if<chronostm::stm::LsaAdapter>(
                           eng)) {
            lsa_cfg = a->stm().config();
        } else {
            throw std::invalid_argument(
                "--engine '" + engine +
                "': the dynamic _TB rows sweep time bases, which only the "
                "lsa and orec engines consume");
        }
        for (const auto& spec : chronostm::tb::split_specs(
                 chronostm::extract_timebase_flag(argc, argv))) {
            chronostm::tb::make(spec);
            if (orec) {
                benchmark::RegisterBenchmark(
                    ("BM_ReadOnly_TB/" + spec).c_str(), bm_orec_readonly_txn,
                    spec, orec_cfg)
                    ->Arg(10)
                    ->Arg(100);
                benchmark::RegisterBenchmark(
                    ("BM_Update_TB/" + spec).c_str(), bm_orec_update_txn,
                    spec, orec_cfg)
                    ->Arg(10)
                    ->Arg(100);
            } else {
                benchmark::RegisterBenchmark(
                    ("BM_ReadOnly_TB/" + spec).c_str(), bm_readonly_txn,
                    spec, lsa_cfg)
                    ->Arg(10)
                    ->Arg(100);
                benchmark::RegisterBenchmark(
                    ("BM_Update_TB/" + spec).c_str(), bm_update_txn, spec,
                    lsa_cfg)
                    ->Arg(10)
                    ->Arg(100);
            }
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    return chronostm::gbench_main_with_json(argc, argv);
}
