// Section 4.2 ablation: "An optimization for the counter similar to the one
// used by TL2 [timestamp sharing on failed CAS] showed no advantages on our
// hardware."
//
// We run the disjoint-update workload over the plain shared counter and the
// TL2-style sharing counter and report throughput plus how often sharing
// actually triggered. Expected shape: no meaningful win for the optimized
// counter (and none of the losses either -- it is simply not the
// bottleneck-remover that a hardware clock is).

#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include <chronostm/stm/adapter.hpp>
#include <chronostm/timebase/batched_counter.hpp>
#include <chronostm/timebase/perfect_clock.hpp>
#include <chronostm/timebase/shared_counter.hpp>
#include <chronostm/timebase/tl2_shared_counter.hpp>
#include <chronostm/util/affinity.hpp>
#include <chronostm/util/cli.hpp>
#include <chronostm/util/json_out.hpp>
#include <chronostm/util/table.hpp>
#include <chronostm/workload/disjoint.hpp>
#include <chronostm/workload/runner.hpp>

using namespace chronostm;

namespace {

template <typename A>
double measure(A& adapter, unsigned threads, unsigned accesses,
               double duration_ms) {
    wl::DisjointWorkload<A> work(threads, 256);
    wl::RunSpec spec;
    spec.threads = threads;
    spec.warmup_ms = duration_ms / 5;
    spec.duration_ms = duration_ms;
    const auto res = wl::run_throughput(spec, [&](unsigned tid) {
        auto ctx = std::make_shared<typename A::Context>(adapter.make_context());
        auto rng = std::make_shared<Rng>(tid + 3);
        return [&adapter, &work, tid, accesses, ctx, rng] {
            work.run_txn(adapter, *ctx, tid, accesses, *rng);
        };
    });
    return res.mops_per_sec;
}

}  // namespace

int main(int argc, char** argv) {
    Cli cli("Section 4.2 ablation: TL2-style counter optimization");
    cli.flag_i64("duration-ms", 300, "measured window per point")
        .flag_i64("accesses", 10, "accesses per transaction")
        .flag_i64("batch", 8, "batched-counter block size B")
        .flag_str("json", "", "write machine-readable results to this path");
    try {
        if (!cli.parse(argc, argv)) return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    const double duration = static_cast<double>(cli.i64("duration-ms"));
    const auto accesses = static_cast<unsigned>(cli.i64("accesses"));
    const auto batch = static_cast<std::uint64_t>(cli.i64("batch"));

    std::printf("== Section 4.2 counter-optimization ablation (SPAA'07) ==\n\n");

    Table t("disjoint updates, " + std::to_string(accesses) +
            " accesses (Mtx/s)");
    t.set_header({"threads", "SharedCounter", "TL2SharedCounter",
                  "BatchedCounter", "HardwareClock", "oversub"});
    const auto sweep = wl::figure2_thread_sweep(2 * hardware_threads());
    Json json;
    json.obj_begin()
        .kv("driver", "tab_counter_opt")
        .kv("host_threads", hardware_threads())
        .kv("duration_ms", duration)
        .kv("accesses", accesses)
        .kv("batch", batch)
        .key("rows")
        .arr_begin();
    std::vector<double> plain_s, opt_s, batched_s, clock_s;
    for (const unsigned n : sweep) {
        double plain, opt, bat, clk;
        {
            tb::SharedCounterTimeBase tbase;
            stm::LsaAdapter<tb::SharedCounterTimeBase> a(tbase);
            plain = measure(a, n, accesses, duration);
        }
        {
            tb::Tl2SharedCounterTimeBase tbase;
            stm::LsaAdapter<tb::Tl2SharedCounterTimeBase> a(tbase);
            opt = measure(a, n, accesses, duration);
        }
        {
            tb::BatchedCounterTimeBase tbase(batch);
            stm::LsaAdapter<tb::BatchedCounterTimeBase> a(tbase);
            bat = measure(a, n, accesses, duration);
        }
        {
            tb::PerfectClockTimeBase tbase(tb::PerfectSource::Auto);
            stm::LsaAdapter<tb::PerfectClockTimeBase> a(tbase);
            clk = measure(a, n, accesses, duration);
        }
        plain_s.push_back(plain);
        opt_s.push_back(opt);
        batched_s.push_back(bat);
        clock_s.push_back(clk);
        t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                   Table::num(plain, 3), Table::num(opt, 3),
                   Table::num(bat, 3), Table::num(clk, 3),
                   n > hardware_threads() ? "yes" : ""});
        json.obj_begin()
            .kv("threads", n)
            .kv("shared_counter_mtxs", plain)
            .kv("tl2_shared_counter_mtxs", opt)
            .kv("batched_counter_mtxs", bat)
            .kv("hardware_clock_mtxs", clk)
            .kv("oversubscribed", n > hardware_threads())
            .obj_end();
    }
    t.add_note("BatchedCounter: 1/B the counter RMWs, but data committed "
               "within ~B stamps is unreadable (freshness aborts)");
    t.print(std::cout);

    // Paper's claim: the optimization gives no meaningful advantage. Accept
    // anything within +-25% (measurement noise on a small host); flag a
    // consistent large win as shape-breaking.
    int big_wins = 0;
    for (std::size_t i = 0; i < plain_s.size(); ++i)
        if (opt_s[i] > plain_s[i] * 1.25) ++big_wins;
    const bool pass = big_wins * 2 <= static_cast<int>(plain_s.size());
    std::printf("\nSHAPE-CHECK TL2-style counter sharing shows no decisive "
                "advantage: %s (%d/%zu points with >25%% win)\n",
                pass ? "PASS" : "FAIL", big_wins, plain_s.size());
    json.arr_end().kv("tl2_sharing_no_advantage", pass).obj_end();
    if (!write_json_flag(cli.str("json"), json)) return 2;
    return 0;
}
