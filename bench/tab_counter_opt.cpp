// Section 4.2 ablation: "An optimization for the counter similar to the one
// used by TL2 [timestamp sharing on failed CAS] showed no advantages on our
// hardware."
//
// We run the disjoint-update workload over the plain shared counter and the
// TL2-style sharing counter and report throughput plus how often sharing
// actually triggered. Expected shape: no meaningful win for the optimized
// counter (and none of the losses either -- it is simply not the
// bottleneck-remover that a hardware clock is).

#include <cstdio>
#include <iostream>
#include <string>
#include <memory>
#include <vector>

#include <chronostm/stm/facade.hpp>
#include <chronostm/util/affinity.hpp>
#include <chronostm/util/cli.hpp>
#include <chronostm/util/json_out.hpp>
#include <chronostm/util/table.hpp>
#include <chronostm/workload/disjoint.hpp>
#include <chronostm/workload/runner.hpp>

using namespace chronostm;

namespace {

struct Point {
    double mtx = 0;
    TxStats stats;
    std::uint64_t p50_ns = 0, p99_ns = 0, p999_ns = 0;
};

template <typename A>
Point measure(A& adapter, unsigned threads, unsigned accesses,
              double duration_ms) {
    wl::DisjointWorkload<A> work(threads, 256);
    wl::RunSpec spec;
    spec.threads = threads;
    spec.warmup_ms = duration_ms / 5;
    spec.duration_ms = duration_ms;
    const auto res = wl::run_throughput(spec, [&](unsigned tid) {
        auto ctx = std::make_shared<typename A::Context>(adapter.make_context());
        auto rng = std::make_shared<Rng>(tid + 3);
        return [&adapter, &work, tid, accesses, ctx, rng] {
            work.run_txn(adapter, *ctx, tid, accesses, *rng);
        };
    });
    return {res.mops_per_sec, adapter.collected_stats(), res.p50_ns,
            res.p99_ns, res.p999_ns};
}

}  // namespace

int main(int argc, char** argv) {
    Cli cli("Section 4.2 ablation: TL2-style counter optimization");
    wl::flag_timebase(cli, "shared,tl2,batched:B=8,sharded:S=4,perfect");
    wl::flag_engine(cli);
    cli.flag_i64("duration-ms", 300, "measured window per point")
        .flag_i64("accesses", 10, "accesses per transaction")
        .flag_str("json", "", "write machine-readable results to this path");
    try {
        if (!cli.parse(argc, argv)) return 0;
        wl::validate_timebase_flag(cli);
        wl::validate_engine_flag(cli);
        if (wl::engine_specs(cli).empty())
            throw std::invalid_argument("--engine resolved to no specs");
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    const std::string engine_spec = wl::engine_specs(cli).front();
    const double duration = static_cast<double>(cli.i64("duration-ms"));
    const auto accesses = static_cast<unsigned>(cli.i64("accesses"));
    const auto tb_specs = tb::split_specs(cli.str("timebase"));

    std::printf("== Section 4.2 counter-optimization ablation (SPAA'07) ==\n\n");

    Table t("disjoint updates, " + std::to_string(accesses) +
            " accesses (Mtx/s)");
    std::vector<std::string> header{"threads"};
    for (const auto& spec : tb_specs) header.push_back(spec);
    header.push_back("oversub");
    t.set_header(header);
    const auto sweep = wl::figure2_thread_sweep(2 * hardware_threads());
    Json json;
    json.obj_begin()
        .kv("driver", "tab_counter_opt")
        .kv("host_threads", hardware_threads())
        .kv("duration_ms", duration)
        .kv("accesses", accesses)
        .kv("timebase", cli.str("timebase"))
        .kv("engine", cli.str("engine"))
        .key("rows")
        .arr_begin();
    // series[i] = throughput sweep for tb_specs[i].
    std::vector<std::vector<double>> series(tb_specs.size());
    for (const unsigned n : sweep) {
        std::vector<std::string> row{Table::num(static_cast<std::uint64_t>(n))};
        json.obj_begin().kv("threads", n).key("series").arr_begin();
        for (std::size_t i = 0; i < tb_specs.size(); ++i) {
            // Fresh engine per cell (zeroed counters), engine chosen by
            // the registry spec and dispatched through the facade.
            Point p;
            stm::Engine eng = stm::make(engine_spec, tb::make(tb_specs[i]));
            stm::visit(eng, [&](auto& a) {
                p = measure(a, n, accesses, duration);
            });
            series[i].push_back(p.mtx);
            row.push_back(Table::num(p.mtx, 3));
            json.obj_begin()
                .kv("timebase", tb_specs[i])
                .kv("mtxs", p.mtx);
            wl::latency_json(json, p);
            wl::tx_stats_json(json, p.stats).obj_end();
        }
        json.arr_end()
            .kv("oversubscribed", n > hardware_threads())
            .obj_end();
        row.push_back(n > hardware_threads() ? "yes" : "");
        t.add_row(row);
    }
    t.add_note("BatchedCounter: 1/B the counter RMWs, but data committed "
               "within ~B stamps is unreadable (freshness aborts); the "
               "sharded counter trades the same freshness for per-shard "
               "lines");
    t.print(std::cout);

    // Paper's claim: the TL2-style optimization gives no meaningful
    // advantage over the plain counter. Checked when both series are in
    // the sweep (they are by default). Accept anything within +-25%
    // (measurement noise on a small host); flag a consistent large win as
    // shape-breaking.
    bool pass = true;
    const long plain_i = wl::find_timebase_spec(tb_specs, "shared");
    const long opt_i = wl::find_timebase_spec(tb_specs, "tl2");
    if (plain_i >= 0 && opt_i >= 0) {
        const auto& plain_s = series[plain_i];
        const auto& opt_s = series[opt_i];
        int big_wins = 0;
        for (std::size_t i = 0; i < plain_s.size(); ++i)
            if (opt_s[i] > plain_s[i] * 1.25) ++big_wins;
        pass = big_wins * 2 <= static_cast<int>(plain_s.size());
        std::printf("\nSHAPE-CHECK TL2-style counter sharing shows no "
                    "decisive advantage: %s (%d/%zu points with >25%% win)\n",
                    pass ? "PASS" : "FAIL", big_wins, plain_s.size());
    } else {
        std::printf("\nSHAPE-CHECK skipped: sweep lacks shared+tl2 series\n");
    }
    json.arr_end().kv("tl2_sharing_no_advantage", pass).obj_end();
    if (!write_json_flag(cli.str("json"), json)) return 2;
    return 0;
}
