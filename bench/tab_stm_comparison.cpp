// Related-work positioning (paper Sections 1.1-1.2): time-based STMs avoid
// the O(reads-so-far) per-open validation of validation-based systems and
// should be "at least as efficient". We compare LSA-RT (counter + clock
// time bases), TL2, the validation STM (with and without the commit-counter
// heuristic), and a global lock on two workloads:
//
//   * read-dominated hash-set lookups (short transactions)
//   * whole-bank audits racing transfers (long read-only transactions)
//
// Expected shape: LSA-RT and TL2 lead; VSTM/always-validate trails badly on
// long transactions (quadratic validation); the commit-counter heuristic
// recovers some of it; the global lock cannot scale.
//
// The orec-table engine (Orec-LSA) rides the same --timebase sweep as
// LSA-RT: same snapshot-extension algorithm, per-TVar metadata swapped for
// a global versioned-lock table. Its rows carry the engine's
// false_conflicts counter (distinct addresses hashing to one orec) in the
// JSON blob, so sweeps can watch aliasing pressure alongside throughput.

#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include <chronostm/stm/facade.hpp>
#include <chronostm/util/cli.hpp>
#include <chronostm/util/json_out.hpp>
#include <chronostm/util/table.hpp>
#include <chronostm/workload/bank.hpp>
#include <chronostm/workload/intset_hash.hpp>
#include <chronostm/workload/runner.hpp>

using namespace chronostm;

namespace {

// Returns the full RunResult: the caller reads throughput off it and
// forwards the per-op latency percentiles into the --json row.
template <typename A>
wl::RunResult bench_hashset(A& adapter, unsigned threads,
                            double duration_ms) {
    wl::IntsetHash<A> set(128);
    {
        auto ctx = adapter.make_context();
        for (long k = 0; k < 512; ++k) set.insert(adapter, ctx, k * 2);
    }
    wl::RunSpec spec;
    spec.threads = threads;
    spec.warmup_ms = duration_ms / 5;
    spec.duration_ms = duration_ms;
    const auto res = wl::run_throughput(spec, [&](unsigned tid) {
        auto ctx = std::make_shared<typename A::Context>(adapter.make_context());
        auto rng = std::make_shared<Rng>(tid * 3 + 1);
        return [&, ctx, rng] {
            const long key = static_cast<long>(rng->below(1024));
            if (rng->chance(0.1)) {
                if (rng->chance(0.5))
                    set.insert(adapter, *ctx, key);
                else
                    set.remove(adapter, *ctx, key);
            } else {
                set.contains(adapter, *ctx, key);
            }
        };
    });
    return res;
}

template <typename A>
double bench_audit(A& adapter, unsigned threads, double duration_ms,
                   bool& conserved) {
    wl::Bank<A> bank(128, 100);
    wl::RunSpec spec;
    spec.threads = threads;
    spec.warmup_ms = duration_ms / 5;
    spec.duration_ms = duration_ms;
    const auto res = wl::run_throughput(spec, [&](unsigned tid) {
        auto ctx = std::make_shared<typename A::Context>(adapter.make_context());
        auto rng = std::make_shared<Rng>(tid * 5 + 1);
        return [&, tid, ctx, rng] {
            if (tid == 0) {
                bank.transfer(adapter, *ctx, *rng);  // one writer thread
            } else {
                // Force the sum to be computed: an unused audit result lets
                // the compiler elide the reads for the lock-based baseline.
                if (bank.audit(adapter, *ctx) == -1) std::abort();
            }
        };
    });
    if (bank.unsafe_total() != bank.expected_total()) {
        std::fprintf(stderr, "conservation FAILED: total %ld != %ld\n",
                     bank.unsafe_total(), bank.expected_total());
        conserved = false;
    }
    // Only the auditor threads' completed audits count -- mixing in the
    // writer's (much cheaper) transfers would swamp the metric.
    std::uint64_t audits = 0;
    for (unsigned t = 1; t < res.per_thread.size(); ++t)
        audits += res.per_thread[t];
    return (static_cast<double>(audits) / res.seconds) / 1e3;  // kaudits/s
}

}  // namespace

int main(int argc, char** argv) {
    Cli cli("STM comparison: LSA-RT vs TL2 vs validation STM vs global lock");
    wl::flag_timebase(cli, "shared,perfect");
    cli.flag_i64("threads", 2, "worker threads")
        .flag_i64("duration-ms", 250, "measured window per cell")
        .flag_str("json", "", "write machine-readable results to this path");
    try {
        if (!cli.parse(argc, argv)) return 0;
        wl::validate_timebase_flag(cli);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    const auto threads = static_cast<unsigned>(cli.i64("threads"));
    const double duration = static_cast<double>(cli.i64("duration-ms"));
    const auto tb_specs = tb::split_specs(cli.str("timebase"));

    std::printf("== STM comparison (paper Sections 1.1-1.2) ==\n\n");

    Table t("throughput by system (" + std::to_string(threads) + " threads)");
    t.set_header({"system", "hash-set Mtx/s", "audits k/s"});

    double lsa_audit = 0, vstm_always_audit = 0, vstm_cc_audit = 0;
    bool conserved = true;

    Json json;
    json.obj_begin()
        .kv("driver", "tab_stm_comparison")
        .kv("timebase", cli.str("timebase"))
        .kv("threads", threads)
        .kv("duration_ms", duration)
        .key("rows")
        .arr_begin();
    // Sum the two measurement cells' counter blocks for the row's emitted
    // stats (hash-set cell + audit cell).
    const auto sum_stats = [](const TxStats& x, const TxStats& y) {
        TxStats s(x.commits() + y.commits(), x.aborts() + y.aborts(),
                  x.helped_commits + y.helped_commits,
                  x.helped_timestamps + y.helped_timestamps,
                  x.false_conflicts + y.false_conflicts);
        s.extensions = x.extensions + y.extensions;
        s.extension_fast_hits = x.extension_fast_hits + y.extension_fast_hits;
        s.validation_fast_hits =
            x.validation_fast_hits + y.validation_fast_hits;
        s.ro_commits = x.ro_commits + y.ro_commits;
        s.backoff_us = x.backoff_us + y.backoff_us;
        s.irrevocable_commits = x.irrevocable_commits + y.irrevocable_commits;
        s.escalations = x.escalations + y.escalations;
        s.stall_waits = x.stall_waits + y.stall_waits;
        s.stalled_aborts = x.stalled_aborts + y.stalled_aborts;
        s.injected_faults = x.injected_faults + y.injected_faults;
        return s;
    };
    // One row = one registry engine spec; the two measurement cells each
    // build a FRESH engine from the spec (zeroed counters) and dispatch
    // through the facade, so every system -- LSA, orec, and the three
    // baselines -- runs the identical measurement path and emits the same
    // counter block.
    const auto run_row = [&](const std::string& label,
                             const std::string& espec,
                             const std::string& tbspec) {
        const auto mk = [&] {
            return tbspec.empty() ? stm::make(espec)
                                  : stm::make(espec, tb::make(tbspec));
        };
        stm::Engine e1 = mk();
        stm::Engine e2 = mk();
        wl::RunResult hsres;
        double au = 0;
        stm::visit(e1, [&](auto& a) {
            hsres = bench_hashset(a, threads, duration);
        });
        stm::visit(e2, [&](auto& a) {
            au = bench_audit(a, threads, duration, conserved);
        });
        const double hs = hsres.mops_per_sec;
        t.add_row({label, Table::num(hs, 3), Table::num(au, 1)});
        json.obj_begin()
            .kv("system", label)
            .kv("engine_spec", espec)
            .kv("hashset_mtxs", hs)
            .kv("audits_ks", au);
        wl::latency_json(json, hsres);
        wl::tx_stats_json(
            json, sum_stats(e1.collected_stats(), e2.collected_stats()))
            .obj_end();
        return au;
    };

    // One LSA-RT row per --timebase spec; the first spec anchors the
    // "time-based beats always-validate" shape check.
    bool first_spec = true;
    for (const auto& spec : tb_specs) {
        const double au = run_row("LSA-RT/" + spec, "lsa", spec);
        if (first_spec) lsa_audit = au;
        first_spec = false;
    }
    // One Orec-LSA row per spec: same workloads, same time bases, the
    // per-TVar metadata replaced by the shared orec table.
    for (const auto& spec : tb_specs)
        run_row("Orec-LSA/" + spec, "orec", spec);
    run_row("TL2", "tl2", "");
    vstm_cc_audit = run_row("VSTM/cc-heuristic", "vstm", "");
    vstm_always_audit =
        run_row("VSTM/always-validate", "vstm:heuristic=off", "");
    run_row("GlobalLock", "glock", "");
    t.add_note("audit txns read 128 accounts: validation-based STMs pay "
               "O(reads^2) total validation work per audit");
    t.print(std::cout);

    const bool shape_lsa = lsa_audit > vstm_always_audit;
    const bool shape_cc = vstm_cc_audit >= vstm_always_audit * 0.8;
    std::printf("\nSHAPE-CHECK time-based beats always-validate on long "
                "read txns (%.1f vs %.1f kaudits/s): %s\n",
                lsa_audit, vstm_always_audit, shape_lsa ? "PASS" : "FAIL");
    std::printf("SHAPE-CHECK commit-counter heuristic helps the validation "
                "STM (%.1f vs %.1f kaudits/s): %s\n",
                vstm_cc_audit, vstm_always_audit, shape_cc ? "PASS" : "FAIL");
    std::printf("SHAPE-CHECK conservation across every engine: %s\n",
                conserved ? "PASS" : "FAIL");
    json.arr_end()
        .kv("shape_lsa_beats_always_validate", shape_lsa)
        .kv("shape_cc_heuristic_helps", shape_cc)
        .kv("conserved", conserved)
        .obj_end();
    if (!write_json_flag(cli.str("json"), json)) return 2;
    return (shape_lsa && shape_cc && conserved) ? 0 : 1;
}
