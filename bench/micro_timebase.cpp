// Microbenchmarks of the raw time-base operations (google-benchmark).
// These are the numbers everything else in the paper derives from: getTime
// and getNewTS cost per base, single-threaded and under thread contention.
// Expected: counter get_new_ts degrades with threads (fetch_add on one
// line); clock reads do not.

#include <benchmark/benchmark.h>

#include <memory>

#include <chronostm/timebase/batched_counter.hpp>
#include <chronostm/timebase/ext_sync_clock.hpp>
#include <chronostm/util/gbench_main.hpp>
#include <chronostm/timebase/mmtimer.hpp>
#include <chronostm/timebase/perfect_clock.hpp>
#include <chronostm/timebase/shared_counter.hpp>
#include <chronostm/timebase/tl2_shared_counter.hpp>

namespace {

using namespace chronostm;

tb::SharedCounterTimeBase g_counter;
tb::Tl2SharedCounterTimeBase g_tl2_counter;
tb::BatchedCounterTimeBase g_batched_counter;       // default block size 8
tb::BatchedCounterTimeBase g_batched_counter_64{64};  // throughput-tuned
tb::PerfectClockTimeBase& perfect_clock() {
    static tb::PerfectClockTimeBase tbase(tb::PerfectSource::Auto);
    return tbase;
}
tb::MMTimerSim g_mmtimer_sim;
tb::MMTimerClockTimeBase g_mmtimer{g_mmtimer_sim};

tb::ExtSyncTimeBase& ext_sync() {
    static tb::WallTimeSource src;
    static tb::PerfectDevice d0(src, 1'000'000'000), d1(src, 1'000'000'000);
    static auto tbase =
        tb::ExtSyncTimeBase::with_static_params({&d0, &d1}, 0, 100);
    return *tbase;
}

template <typename TB>
void bm_get_time(benchmark::State& state, TB& tbase) {
    auto clk = tbase.make_thread_clock();
    for (auto _ : state) benchmark::DoNotOptimize(clk.get_time());
}

template <typename TB>
void bm_get_new_ts(benchmark::State& state, TB& tbase) {
    auto clk = tbase.make_thread_clock();
    for (auto _ : state) benchmark::DoNotOptimize(clk.get_new_ts());
}

void BM_SharedCounter_GetTime(benchmark::State& s) { bm_get_time(s, g_counter); }
void BM_SharedCounter_GetNewTs(benchmark::State& s) {
    bm_get_new_ts(s, g_counter);
}
void BM_Tl2Counter_GetNewTs(benchmark::State& s) {
    bm_get_new_ts(s, g_tl2_counter);
}
void BM_BatchedCounter_GetTime(benchmark::State& s) {
    bm_get_time(s, g_batched_counter);
}
void BM_BatchedCounter_GetNewTs(benchmark::State& s) {
    bm_get_new_ts(s, g_batched_counter);
}
void BM_BatchedCounter64_GetNewTs(benchmark::State& s) {
    bm_get_new_ts(s, g_batched_counter_64);
}
void BM_PerfectClock_GetTime(benchmark::State& s) {
    bm_get_time(s, perfect_clock());
}
void BM_PerfectClock_GetNewTs(benchmark::State& s) {
    bm_get_new_ts(s, perfect_clock());
}
void BM_MMTimer_GetTime(benchmark::State& s) { bm_get_time(s, g_mmtimer); }
void BM_ExtSync_GetTime(benchmark::State& s) { bm_get_time(s, ext_sync()); }
void BM_ExtSync_GetNewTs(benchmark::State& s) { bm_get_new_ts(s, ext_sync()); }

}  // namespace

// Single-threaded costs.
BENCHMARK(BM_SharedCounter_GetTime);
BENCHMARK(BM_SharedCounter_GetNewTs);
BENCHMARK(BM_Tl2Counter_GetNewTs);
BENCHMARK(BM_BatchedCounter_GetTime);
BENCHMARK(BM_BatchedCounter_GetNewTs);
BENCHMARK(BM_BatchedCounter64_GetNewTs);
BENCHMARK(BM_PerfectClock_GetTime);
BENCHMARK(BM_PerfectClock_GetNewTs);
BENCHMARK(BM_MMTimer_GetTime);
BENCHMARK(BM_ExtSync_GetTime);
BENCHMARK(BM_ExtSync_GetNewTs);

// Contention scaling: the whole point of the paper in two benchmark lines.
// The batched counter is the in-between: still a counter, but committers
// touch the shared line once per block instead of once per stamp.
BENCHMARK(BM_SharedCounter_GetNewTs)->Threads(2)->UseRealTime();
BENCHMARK(BM_Tl2Counter_GetNewTs)->Threads(2)->UseRealTime();
BENCHMARK(BM_BatchedCounter_GetNewTs)->Threads(2)->UseRealTime();
BENCHMARK(BM_BatchedCounter64_GetNewTs)->Threads(2)->UseRealTime();
BENCHMARK(BM_PerfectClock_GetTime)->Threads(2)->UseRealTime();
BENCHMARK(BM_PerfectClock_GetNewTs)->Threads(2)->UseRealTime();

int main(int argc, char** argv) {
    return chronostm::gbench_main_with_json(argc, argv);
}
