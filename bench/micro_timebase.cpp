// Microbenchmarks of the raw time-base operations (google-benchmark).
// These are the numbers everything else in the paper derives from: getTime
// and getNewTS cost per base, single-threaded and under thread contention.
// Expected: counter get_new_ts degrades with threads (fetch_add on one
// line); clock reads do not.
//
// Facade-overhead rows: every BM_Facade_<base> row runs the SAME operation
// through the type-erased tb::ThreadClock that the matching direct row
// runs through the concrete template call -- the dispatch cost of the
// runtime-pluggable facade is measured here, not assumed, and
// scripts/check_bench.py --facade-tolerance gates the ratio in CI. The
// direct rows double as the "thin templated shim" the comparison needs:
// nothing else in the tree calls concrete clocks directly anymore.
//
// The uniform --timebase=<spec[,spec...]> flag adds facade rows for any
// registry spec (e.g. --timebase=sharded:S=8,K=2).

#include <benchmark/benchmark.h>

#include <cstdio>

#include <memory>
#include <string>

#include <chronostm/timebase/facade.hpp>
#include <chronostm/util/gbench_main.hpp>

namespace {

using namespace chronostm;

tb::SharedCounterTimeBase g_counter;
tb::Tl2SharedCounterTimeBase g_tl2_counter;
tb::BatchedCounterTimeBase g_batched_counter;       // default block size 8
tb::BatchedCounterTimeBase g_batched_counter_64{64};  // throughput-tuned
tb::ShardedCounterTimeBase g_sharded_counter;       // default S=4, K=4
tb::AdaptiveTimeBase g_adaptive;  // default ladder, latency-triggered
tb::PerfectClockTimeBase& perfect_clock() {
    static tb::PerfectClockTimeBase tbase(tb::PerfectSource::Auto);
    return tbase;
}
tb::MMTimerSim g_mmtimer_sim;
tb::MMTimerClockTimeBase g_mmtimer{g_mmtimer_sim};

tb::ExtSyncTimeBase& ext_sync() {
    static tb::WallTimeSource src;
    static tb::PerfectDevice d0(src, 1'000'000'000), d1(src, 1'000'000'000);
    static auto tbase =
        tb::ExtSyncTimeBase::with_static_params({&d0, &d1}, 0, 100);
    return *tbase;
}

// Direct template calls on the concrete clock type: the reference side of
// the facade comparison. Both sides reach the clock through an opaque
// pointer re-derived every iteration, so the clock is memory-resident
// exactly like a ThreadContext member in the engine. Without the barrier,
// the optimizer register-promotes the clock's fields on one side or the
// other depending on build flags and inlining luck, and the pair would
// measure residency lottery instead of the facade's actual dispatch cost.
template <typename C>
inline C* opaque(C* p) {
    asm volatile("" : "+r"(p));
    return p;
}
template <typename TB>
void bm_get_time(benchmark::State& state, TB& tbase) {
    auto clk = std::make_unique<typename TB::ThreadClock>(
        tbase.make_thread_clock());
    for (auto _ : state)
        benchmark::DoNotOptimize(opaque(clk.get())->get_time());
}

template <typename TB>
void bm_get_new_ts(benchmark::State& state, TB& tbase) {
    auto clk = std::make_unique<typename TB::ThreadClock>(
        tbase.make_thread_clock());
    for (auto _ : state)
        benchmark::DoNotOptimize(opaque(clk.get())->get_new_ts());
}

// The same operations through the type-erased facade clock.
template <typename TB>
void bm_facade_get_time(benchmark::State& state, TB& tbase) {
    tb::TimeBase erased = tb::TimeBase::wrap(tbase);
    auto clk = std::make_unique<tb::ThreadClock>(erased.make_thread_clock());
    for (auto _ : state)
        benchmark::DoNotOptimize(opaque(clk.get())->get_time());
}

template <typename TB>
void bm_facade_get_new_ts(benchmark::State& state, TB& tbase) {
    tb::TimeBase erased = tb::TimeBase::wrap(tbase);
    auto clk = std::make_unique<tb::ThreadClock>(erased.make_thread_clock());
    for (auto _ : state)
        benchmark::DoNotOptimize(opaque(clk.get())->get_new_ts());
}

void bm_spec_get_new_ts(benchmark::State& state, const std::string& spec) {
    tb::TimeBase tbase = tb::make(spec);
    auto clk = std::make_unique<tb::ThreadClock>(tbase.make_thread_clock());
    for (auto _ : state)
        benchmark::DoNotOptimize(opaque(clk.get())->get_new_ts());
}

void BM_SharedCounter_GetTime(benchmark::State& s) { bm_get_time(s, g_counter); }
void BM_SharedCounter_GetNewTs(benchmark::State& s) {
    bm_get_new_ts(s, g_counter);
}
void BM_Tl2Counter_GetNewTs(benchmark::State& s) {
    bm_get_new_ts(s, g_tl2_counter);
}
void BM_BatchedCounter_GetTime(benchmark::State& s) {
    bm_get_time(s, g_batched_counter);
}
void BM_BatchedCounter_GetNewTs(benchmark::State& s) {
    bm_get_new_ts(s, g_batched_counter);
}
void BM_BatchedCounter64_GetNewTs(benchmark::State& s) {
    bm_get_new_ts(s, g_batched_counter_64);
}
void BM_ShardedCounter_GetTime(benchmark::State& s) {
    bm_get_time(s, g_sharded_counter);
}
void BM_ShardedCounter_GetNewTs(benchmark::State& s) {
    bm_get_new_ts(s, g_sharded_counter);
}
void BM_Adaptive_GetNewTs(benchmark::State& s) { bm_get_new_ts(s, g_adaptive); }
void BM_PerfectClock_GetTime(benchmark::State& s) {
    bm_get_time(s, perfect_clock());
}
void BM_PerfectClock_GetNewTs(benchmark::State& s) {
    bm_get_new_ts(s, perfect_clock());
}
void BM_MMTimer_GetTime(benchmark::State& s) { bm_get_time(s, g_mmtimer); }
void BM_ExtSync_GetTime(benchmark::State& s) { bm_get_time(s, ext_sync()); }
void BM_ExtSync_GetNewTs(benchmark::State& s) { bm_get_new_ts(s, ext_sync()); }

// Facade twins of the direct rows above (same globals, same operation).
void BM_Facade_SharedCounter_GetTime(benchmark::State& s) {
    bm_facade_get_time(s, g_counter);
}
void BM_Facade_SharedCounter_GetNewTs(benchmark::State& s) {
    bm_facade_get_new_ts(s, g_counter);
}
void BM_Facade_Tl2Counter_GetNewTs(benchmark::State& s) {
    bm_facade_get_new_ts(s, g_tl2_counter);
}
void BM_Facade_BatchedCounter_GetNewTs(benchmark::State& s) {
    bm_facade_get_new_ts(s, g_batched_counter);
}
void BM_Facade_BatchedCounter64_GetNewTs(benchmark::State& s) {
    bm_facade_get_new_ts(s, g_batched_counter_64);
}
void BM_Facade_ShardedCounter_GetNewTs(benchmark::State& s) {
    bm_facade_get_new_ts(s, g_sharded_counter);
}
void BM_Facade_Adaptive_GetNewTs(benchmark::State& s) {
    bm_facade_get_new_ts(s, g_adaptive);
}
void BM_Facade_PerfectClock_GetTime(benchmark::State& s) {
    bm_facade_get_time(s, perfect_clock());
}
void BM_Facade_PerfectClock_GetNewTs(benchmark::State& s) {
    bm_facade_get_new_ts(s, perfect_clock());
}
void BM_Facade_ExtSync_GetNewTs(benchmark::State& s) {
    bm_facade_get_new_ts(s, ext_sync());
}

}  // namespace

// Single-threaded costs.
BENCHMARK(BM_SharedCounter_GetTime);
BENCHMARK(BM_SharedCounter_GetNewTs);
BENCHMARK(BM_Tl2Counter_GetNewTs);
BENCHMARK(BM_BatchedCounter_GetTime);
BENCHMARK(BM_BatchedCounter_GetNewTs);
BENCHMARK(BM_BatchedCounter64_GetNewTs);
BENCHMARK(BM_ShardedCounter_GetTime);
BENCHMARK(BM_ShardedCounter_GetNewTs);
BENCHMARK(BM_Adaptive_GetNewTs);
BENCHMARK(BM_PerfectClock_GetTime);
BENCHMARK(BM_PerfectClock_GetNewTs);
BENCHMARK(BM_MMTimer_GetTime);
BENCHMARK(BM_ExtSync_GetTime);
BENCHMARK(BM_ExtSync_GetNewTs);

// The dispatch-cost comparison the facade's <= 15% budget is gated on.
BENCHMARK(BM_Facade_SharedCounter_GetTime);
BENCHMARK(BM_Facade_SharedCounter_GetNewTs);
BENCHMARK(BM_Facade_Tl2Counter_GetNewTs);
BENCHMARK(BM_Facade_BatchedCounter_GetNewTs);
BENCHMARK(BM_Facade_BatchedCounter64_GetNewTs);
BENCHMARK(BM_Facade_ShardedCounter_GetNewTs);
BENCHMARK(BM_Facade_Adaptive_GetNewTs);
BENCHMARK(BM_Facade_PerfectClock_GetTime);
BENCHMARK(BM_Facade_PerfectClock_GetNewTs);
BENCHMARK(BM_Facade_ExtSync_GetNewTs);

// Contention scaling: the whole point of the paper in a few benchmark
// lines. The batched counter touches the shared line once per block; the
// sharded counter gives each thread group its own line.
BENCHMARK(BM_SharedCounter_GetNewTs)->Threads(2)->UseRealTime();
BENCHMARK(BM_Tl2Counter_GetNewTs)->Threads(2)->UseRealTime();
BENCHMARK(BM_BatchedCounter_GetNewTs)->Threads(2)->UseRealTime();
BENCHMARK(BM_BatchedCounter64_GetNewTs)->Threads(2)->UseRealTime();
BENCHMARK(BM_ShardedCounter_GetNewTs)->Threads(2)->UseRealTime();
BENCHMARK(BM_Adaptive_GetNewTs)->Threads(2)->UseRealTime();
BENCHMARK(BM_PerfectClock_GetTime)->Threads(2)->UseRealTime();
BENCHMARK(BM_PerfectClock_GetNewTs)->Threads(2)->UseRealTime();

int main(int argc, char** argv) {
    // Specs are resolved once up front so a typo exits 2 with the
    // registry's message instead of aborting mid-benchmark.
    try {
        for (const auto& spec : chronostm::tb::split_specs(
                 chronostm::extract_timebase_flag(argc, argv))) {
            chronostm::tb::make(spec);
            benchmark::RegisterBenchmark(("BM_Spec_GetNewTs/" + spec).c_str(),
                                         bm_spec_get_new_ts, spec);
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    return chronostm::gbench_main_with_json(argc, argv);
}
