// Multi-version ablation: how many old versions does a long reader need?
// (Design choice called out in DESIGN.md; the paper's LSA-STM keeps a
// configurable number of old versions per object.)
//
// Workload: one thread runs whole-array read-only sums while the remaining
// threads update random elements. We sweep max_versions in {1,2,4,8,16} and
// report reader commit rate and abort ratio. Expected shape: monotone
// improvement with K, saturating once the history covers the reader's
// traversal window; K=1 (TL2-like) is the worst case.

#include <cstdio>
#include <iostream>
#include <string>
#include <memory>
#include <thread>
#include <vector>

#include <chronostm/core/lsa_stm.hpp>
#include <chronostm/workload/runner.hpp>
#include <chronostm/util/cli.hpp>
#include <chronostm/util/json_out.hpp>
#include <chronostm/util/rng.hpp>
#include <chronostm/util/table.hpp>

using namespace chronostm;

namespace {

using Tx = Transaction;

struct Point {
    double reader_sums_per_sec = 0;
    double reader_abort_ratio = 0;
    TxStats reader_stats;
};

Point run_point(const std::string& tb_spec, unsigned k, unsigned array_size,
                int reader_rounds, unsigned writer_threads) {
    StmConfig cfg;
    cfg.max_versions = k;
    // Isolate the version-history mechanism: without the optional read-time
    // extension, a long reader lives or dies by the old versions alone.
    cfg.read_extension = false;
    LsaStm stm(tb::make(tb_spec), cfg);
    std::vector<std::unique_ptr<TVar<long>>> arr;
    for (unsigned i = 0; i < array_size; ++i)
        arr.push_back(std::make_unique<TVar<long>>(1));

    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (unsigned w = 0; w < writer_threads; ++w) {
        writers.emplace_back([&, w] {
            auto ctx = stm.make_context();
            Rng rng(w + 1);
            while (!stop.load(std::memory_order_acquire)) {
                const auto i = rng.below(array_size);
                ctx.run([&](Tx& tx) { arr[i]->set(tx, arr[i]->get(tx)); });
            }
        });
    }

    Point p;
    {
        auto ctx = stm.make_context();
        const auto t0 = std::chrono::steady_clock::now();
        for (int r = 0; r < reader_rounds; ++r) {
            ctx.run([&](Tx& tx) {
                long s = 0;
                for (auto& v : arr) s += v->get(tx);
                return s;
            });
        }
        const auto dt = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
        p.reader_sums_per_sec = reader_rounds / dt;
        p.reader_stats = ctx.stats();
        const auto& st = p.reader_stats;
        p.reader_abort_ratio =
            st.commits() + st.aborts() == 0
                ? 0
                : static_cast<double>(st.aborts()) /
                      static_cast<double>(st.commits() + st.aborts());
    }
    stop.store(true);
    for (auto& t : writers) t.join();
    return p;
}

}  // namespace

int main(int argc, char** argv) {
    Cli cli("multi-version ablation: long readers vs version history depth");
    cli.flag_str("timebase", "perfect", tb::spec_help())
        .flag_i64("array", 256, "array length the reader sums")
        .flag_i64("rounds", 150, "reader transactions per point")
        .flag_i64("writers", 1, "updater threads")
        .flag_str("json", "", "write machine-readable results to this path");
    try {
        if (!cli.parse(argc, argv)) return 0;
        tb::make(cli.str("timebase"));  // typo -> clean exit 2
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    const auto array_size = static_cast<unsigned>(cli.i64("array"));
    const auto rounds = static_cast<int>(cli.i64("rounds"));
    const auto writers = static_cast<unsigned>(cli.i64("writers"));
    const std::string& tb_spec = cli.str("timebase");

    std::printf("== Multi-version ablation (LSA-STM design choice) ==\n"
                "reader sums %u vars while %u writer(s) update randomly\n\n",
                array_size, writers);

    Table t("reader throughput by version-history depth");
    t.set_header({"max_versions", "sums/s", "reader abort ratio"});
    Json json;
    json.obj_begin()
        .kv("driver", "tab_multiversion")
        .kv("timebase", tb_spec)
        .kv("array", array_size)
        .kv("rounds", static_cast<std::uint64_t>(rounds))
        .kv("writers", writers)
        .key("rows")
        .arr_begin();
    std::vector<Point> points;
    for (const unsigned k : {1u, 2u, 4u, 8u, 16u}) {
        points.push_back(run_point(tb_spec, k, array_size, rounds, writers));
        t.add_row({Table::num(static_cast<std::uint64_t>(k)),
                   Table::num(points.back().reader_sums_per_sec, 1),
                   Table::num(points.back().reader_abort_ratio, 4)});
        json.obj_begin()
            .kv("max_versions", k)
            .kv("sums_per_sec", points.back().reader_sums_per_sec)
            .kv("reader_abort_ratio", points.back().reader_abort_ratio);
        wl::tx_stats_json(json, points.back().reader_stats).obj_end();
    }
    t.print(std::cout);

    const bool improves =
        points.back().reader_abort_ratio <= points.front().reader_abort_ratio;
    std::printf("\nSHAPE-CHECK deeper history lowers reader aborts "
                "(K=1: %.4f -> K=16: %.4f): %s\n",
                points.front().reader_abort_ratio,
                points.back().reader_abort_ratio, improves ? "PASS" : "FAIL");
    json.arr_end().kv("deeper_history_improves", improves).obj_end();
    if (!write_json_flag(cli.str("json"), json)) return 2;
    return improves ? 0 : 1;
}
