// Contention-manager comparison (paper Section 2.3 delegates conflict
// resolution to a pluggable contention manager). High-conflict bank with
// Zipf-skewed hot accounts; we report throughput and abort ratio per
// policy. There is no single winner in the literature -- the check is that
// every policy makes progress and the knob actually changes behaviour.

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <memory>
#include <type_traits>
#include <vector>

#include <chronostm/stm/facade.hpp>
#include <chronostm/util/cli.hpp>
#include <chronostm/util/json_out.hpp>
#include <chronostm/util/table.hpp>
#include <chronostm/workload/bank.hpp>
#include <chronostm/workload/runner.hpp>

using namespace chronostm;

int main(int argc, char** argv) {
    Cli cli("contention-manager comparison on a hot-spot bank");
    wl::flag_timebase(cli, "perfect");
    wl::flag_engine(cli);
    wl::flag_irrevocable_threshold(cli);
    wl::flag_chaos_seed(cli);
    cli.flag_i64("threads", 4, "worker threads")
        .flag_i64("accounts", 16, "accounts (small = hot)")
        .flag_f64("zipf", 0.9, "access skew")
        .flag_i64("duration-ms", 250, "measured window per policy")
        .flag_str("json", "", "write machine-readable results to this path");
    try {
        if (!cli.parse(argc, argv)) return 0;
        wl::validate_timebase_flag(cli);
        wl::validate_engine_flag(cli);
        wl::irrevocable_threshold_flag(cli);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    const unsigned irrev_threshold = wl::irrevocable_threshold_flag(cli);
#ifdef CHRONOSTM_FAILPOINTS
    if (cli.i64("chaos-seed") != 0)
        fp::set_seed(static_cast<std::uint64_t>(cli.i64("chaos-seed")));
#endif
    const auto threads = static_cast<unsigned>(cli.i64("threads"));
    const auto accounts = static_cast<unsigned>(cli.i64("accounts"));
    const double zipf = cli.f64("zipf");
    const double duration = static_cast<double>(cli.i64("duration-ms"));

    const std::string& tb_spec = cli.str("timebase");
    std::printf("== Contention managers under hot-spot transfers ==\n"
                "%u threads, %u accounts, zipf %.2f, time base %s\n\n",
                threads, accounts, zipf, tb_spec.c_str());

    Table t("policy comparison");
    t.set_header({"policy", "Mtx/s", "abort ratio", "conserved"});
    bool all_progress = true, all_conserved = true;
    Json json;
    json.obj_begin()
        .kv("driver", "tab_contention")
        .kv("timebase", tb_spec)
        .kv("threads", threads)
        .kv("accounts", accounts)
        .kv("zipf", zipf)
        .kv("duration_ms", duration)
        .key("rows")
        .arr_begin();

    // One row = one registry engine spec run through the facade, so the
    // LSA policy rows and the --engine reference rows share the same
    // measurement path.
    const auto run_row = [&](const std::string& label,
                             const std::string& engine_spec) {
        stm::Engine eng = stm::make(engine_spec, tb::make(tb_spec));
        double mtx = 0;
        std::uint64_t total_ops = 0;
        bool conserved = true;
        wl::RunResult rr;
        stm::visit(eng, [&](auto& adapter) {
            using A = std::decay_t<decltype(adapter)>;
            wl::Bank<A> bank(accounts, 1000, zipf);
            wl::RunSpec spec;
            spec.threads = threads;
            spec.warmup_ms = duration / 5;
            spec.duration_ms = duration;
            const auto res = wl::run_throughput(spec, [&](unsigned tid) {
                auto ctx = std::make_shared<typename A::Context>(
                    adapter.make_context());
                auto rng = std::make_shared<Rng>(tid * 101 + 9);
                return [&, ctx, rng] { bank.transfer(adapter, *ctx, *rng); };
            });
            mtx = res.mops_per_sec;
            total_ops = res.total_ops;
            conserved = bank.unsafe_total() == bank.expected_total();
            rr = res;
        });

        const auto stats = eng.collected_stats();
        const double ratio =
            stats.commits() + stats.aborts() == 0
                ? 0
                : static_cast<double>(stats.aborts()) /
                      static_cast<double>(stats.commits() + stats.aborts());
        t.add_row({label, Table::num(mtx, 3), Table::num(ratio, 4),
                   conserved ? "yes" : "NO"});
        json.obj_begin()
            .kv("policy", label)
            .kv("engine_spec", engine_spec)
            .kv("mtxs", mtx)
            .kv("abort_ratio", ratio)
            .kv("conserved", conserved);
        wl::latency_json(json, rr);
        wl::tx_stats_json(json, stats).obj_end();
        all_progress = all_progress && total_ops > 0;
        all_conserved = all_conserved && conserved;
    };

    const std::string irrev_key = "irrev=" + std::to_string(irrev_threshold);
    for (const char* policy :
         {"suicide", "aggressive", "polite", "karma", "timestamp"})
        run_row(policy, wl::engine_spec_with(std::string("lsa:cm=") + policy,
                                             irrev_key));

    // Non-LSA engines delegate nothing to a contention manager: conflicts
    // abort and back off. Each non-default --engine spec adds a reference
    // row against the LSA policies, same workload (comma-separated lists
    // add one row per spec; the default "lsa" is the policy sweep above).
    for (const auto& espec : wl::engine_specs(cli)) {
        if (stm::parse_engine_spec(espec).name == "lsa") continue;
        run_row(stm::parse_engine_spec(espec).name + "-backoff",
                wl::engine_spec_with(espec, irrev_key));
    }
    t.print(std::cout);

    std::printf("\nSHAPE-CHECK every policy makes progress: %s\n",
                all_progress ? "PASS" : "FAIL");
    std::printf("SHAPE-CHECK conservation under every policy: %s\n",
                all_conserved ? "PASS" : "FAIL");
    json.arr_end()
        .kv("all_progress", all_progress)
        .kv("all_conserved", all_conserved)
        .obj_end();
    if (!write_json_flag(cli.str("json"), json)) return 2;
    return (all_progress && all_conserved) ? 0 : 1;
}
