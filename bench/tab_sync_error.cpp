// Section 4.3 study: "Synchronization errors shrink the object versions'
// validity ranges." We sweep the published deviation bound of an
// externally-synchronized time base and measure abort rates and throughput
// for multi-version and single-version LSA-RT.
//
// Paper's observations to reproduce:
//   * multi-version STMs lose validity at BOTH ends of old versions ->
//     abort rate climbs once 2*dev approaches typical validity-range
//     lengths;
//   * errors below the natural cost of a commit + cache miss have no
//     effect;
//   * correctness is never affected, only performance.

#include <cstdio>
#include <iostream>
#include <string>
#include <memory>
#include <thread>
#include <vector>

#include <chronostm/stm/facade.hpp>
#include <chronostm/util/cli.hpp>
#include <chronostm/util/json_out.hpp>
#include <chronostm/util/rng.hpp>
#include <chronostm/util/table.hpp>
#include <chronostm/workload/runner.hpp>

using namespace chronostm;

namespace {

struct Result {
    double mtx = 0;
    double abort_ratio = 0;
    TxStats stats;
    bool conserved = true;
    std::uint64_t p50_ns = 0, p99_ns = 0, p999_ns = 0;
};

template <typename A>
Result run_core(A& adapter, unsigned threads, double duration_ms) {
    constexpr int kAccounts = 32;
    std::vector<std::unique_ptr<typename A::template Var<long>>> acct;
    for (int i = 0; i < kAccounts; ++i)
        acct.push_back(
            std::make_unique<typename A::template Var<long>>(100));

    wl::RunSpec spec;
    spec.threads = threads;
    spec.warmup_ms = duration_ms / 5;
    spec.duration_ms = duration_ms;
    const auto res = wl::run_throughput(spec, [&](unsigned tid) {
        auto ctx = std::make_shared<typename A::Context>(
            adapter.make_context());
        auto rng = std::make_shared<Rng>(tid * 17 + 5);
        return [&, ctx, rng] {
            const auto a = rng->below(kAccounts);
            auto b = rng->below(kAccounts);
            if (a == b) b = (b + 1) % kAccounts;
            adapter.run(*ctx, [&](typename A::Txn& tx) {
                tx.write(*acct[a], tx.read(*acct[a]) - 1);
                tx.write(*acct[b], tx.read(*acct[b]) + 1);
            });
        };
    });

    Result out;
    out.mtx = res.mops_per_sec;
    out.p50_ns = res.p50_ns;
    out.p99_ns = res.p99_ns;
    out.p999_ns = res.p999_ns;
    const auto stats = adapter.collected_stats();
    out.abort_ratio = stats.commits() + stats.aborts() == 0
                          ? 0.0
                          : static_cast<double>(stats.aborts()) /
                                static_cast<double>(stats.commits() + stats.aborts());
    out.stats = stats;
    long total = 0;
    for (auto& a : acct) total += a->unsafe_peek();
    out.conserved = total == 100L * kAccounts;
    return out;
}

// The per-point base is built from the uniform --timebase spec with the
// sweep's device count and deviation bound appended -- later keys override
// earlier ones in the registry grammar, so a custom base spec still works.
// --engine takes any stm::make() spec; only the LSA engine has a version
// history, so every other engine runs one single-version panel (validity
// shrinking hits it exactly like single-version LSA: the one live version
// loses range at both ends; the non-time-base baselines ignore the sweep
// entirely and serve as flat reference lines).
Result run_one(const std::string& engine_spec, const std::string& tb_spec,
               std::uint32_t dev_ns, unsigned max_versions, unsigned threads,
               double duration_ms) {
    const char* sep = tb_spec.find(':') == std::string::npos ? ":" : ",";
    auto tbase = tb::make(tb_spec + sep + "devices=" +
                          std::to_string(threads) + ",dev=" +
                          std::to_string(dev_ns));

    std::string spec = engine_spec;
    if (stm::parse_engine_spec(spec).name == "lsa")
        spec = wl::engine_spec_with(
            spec, "versions=" + std::to_string(max_versions));
    stm::Engine eng = stm::make(spec, std::move(tbase));
    Result r;
    stm::visit(eng, [&](auto& adapter) {
        r = run_core(adapter, threads, duration_ms);
    });
    return r;
}

}  // namespace

int main(int argc, char** argv) {
    Cli cli("Section 4.3: effect of clock synchronization error on LSA-RT");
    cli.flag_str("timebase", "extsync",
                 "time base NAME for the deviation sweep (devices/dev keys "
                 "are appended per point)");
    wl::flag_engine(cli);
    cli.flag_i64("threads", 2, "worker threads")
        .flag_i64("duration-ms", 250, "measured window per point")
        .flag_str("json", "", "write machine-readable results to this path");
    try {
        if (!cli.parse(argc, argv)) return 0;
        {
            const std::string& t = cli.str("timebase");
            const char* sep = t.find(':') == std::string::npos ? ":" : ",";
            tb::make(t + sep + "devices=2,dev=1");  // typo -> clean exit 2
        }
        wl::validate_engine_flag(cli);
        if (wl::engine_specs(cli).empty())
            throw std::invalid_argument("--engine resolved to no specs");
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    const std::string engine_spec = wl::engine_specs(cli).front();
    const std::string engine_name = stm::parse_engine_spec(engine_spec).name;
    const bool multi_version = engine_name == "lsa";
    const auto threads = static_cast<unsigned>(cli.i64("threads"));
    const double duration = static_cast<double>(cli.i64("duration-ms"));
    const std::string& tb_spec = cli.str("timebase");

    std::printf("== Section 4.3 synchronization-error study (SPAA'07) ==\n"
                "bank transfers over ExtSyncClock, deviation sweep\n\n");

    const std::uint32_t devs[] = {1,       100,      10'000,
                                  100'000, 1'000'000, 10'000'000};
    bool all_conserved = true;
    double mv_small = 0, mv_big = 0;

    Json json;
    json.obj_begin()
        .kv("driver", "tab_sync_error")
        .kv("timebase", tb_spec)
        .kv("engine", cli.str("engine"))
        .kv("threads", threads)
        .kv("duration_ms", duration)
        .key("panels")
        .arr_begin();
    // Only LSA has a version history: one single-version panel otherwise.
    const std::vector<unsigned> panels = multi_version
                                             ? std::vector<unsigned>{8u, 1u}
                                             : std::vector<unsigned>{1u};
    for (const unsigned k : panels) {
        Table t(!multi_version
                    ? "engine '" + engine_name +
                          "' (single-version by construction)"
                    : (k == 1 ? "single-version (max_versions=1)"
                              : "multi-version (max_versions=8)"));
        t.set_header({"dev (ns)", "Mtx/s", "abort ratio", "conserved"});
        json.obj_begin().kv("max_versions", k).key("rows").arr_begin();
        for (const auto dev : devs) {
            const Result r =
                run_one(engine_spec, tb_spec, dev, k, threads, duration);
            t.add_row({Table::num(static_cast<std::uint64_t>(dev)),
                       Table::num(r.mtx, 3), Table::num(r.abort_ratio, 4),
                       r.conserved ? "yes" : "NO"});
            json.obj_begin()
                .kv("dev_ns", dev)
                .kv("mtxs", r.mtx)
                .kv("abort_ratio", r.abort_ratio)
                .kv("conserved", r.conserved);
            wl::latency_json(json, r);
            wl::tx_stats_json(json, r.stats).obj_end();
            all_conserved = all_conserved && r.conserved;
            if (k == 8 && dev == 1) mv_small = r.abort_ratio;
            if (k == 8 && dev == 10'000'000) mv_big = r.abort_ratio;
        }
        json.arr_end().obj_end();
        t.add_note("dev is the published per-stamp deviation bound; validity "
                   "ranges shrink by dev at each end");
        t.print(std::cout);
        std::printf("\n");
    }

    std::printf("SHAPE-CHECK correctness unaffected by any deviation: %s\n",
                all_conserved ? "PASS" : "FAIL");
    if (multi_version)
        std::printf("SHAPE-CHECK large deviation raises multi-version abort "
                    "rate (%.4f -> %.4f): %s\n",
                    mv_small, mv_big, mv_big >= mv_small ? "PASS" : "FAIL");
    json.arr_end().kv("all_conserved", all_conserved).obj_end();
    if (!write_json_flag(cli.str("json"), json)) return 2;
    return all_conserved ? 0 : 1;
}
