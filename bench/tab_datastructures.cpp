// Transactional-datastructure throughput: skiplist set, open-addressing
// hash map, and FIFO queue (ds/*.hpp) over raw epoch-reclaimed nodes, at
// a million-key scale with varied update ratios. Engines come from the
// stm::make() registry (--engine takes a comma-separated spec list), and
// every (structure, engine) cell runs TWICE:
//
//   dispatch=facade  -- the public path: containers over EnginePolicy,
//                       one switch-on-kind per slot access;
//   dispatch=direct  -- the compile-time twin: DirectPolicy<A> over the
//                       concrete adapter, slot accesses inlined.
//
// check_bench.py --ds-blob gates the pair: facade throughput must stay
// within --ds-facade-tolerance (default 1.15, the facade's documented
// <= 15% dispatch budget) of its direct twin, and the orec-engine
// skiplist must beat the glock baseline at >= 2 threads (the whole point
// of optimistic concurrency: a global lock cannot scale even a
// read-mostly search structure).
//
// The sets/maps prepopulate keys/2 of the key range, so lookups hit ~50%
// and inserts/erases succeed ~50% -- the content level is stationary
// under the balanced update mix. A structure is built ONCE per
// (structure, engine, dispatch) and reused across the threads x ratio
// cells; churn keeps it near half-full. The queue has no read operation,
// so it runs one 50/50 enqueue/dequeue mix per engine (ratio column "-").

#include <cstdint>
#include <cstdio>
#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include <chronostm/ds/hashmap.hpp>
#include <chronostm/ds/policy.hpp>
#include <chronostm/ds/queue.hpp>
#include <chronostm/ds/skiplist.hpp>
#include <chronostm/stm/facade.hpp>
#include <chronostm/util/affinity.hpp>
#include <chronostm/util/cli.hpp>
#include <chronostm/util/json_out.hpp>
#include <chronostm/util/rng.hpp>
#include <chronostm/util/table.hpp>
#include <chronostm/workload/runner.hpp>

using namespace chronostm;

namespace {

struct Cell {
    double mops = 0;
    double abort_ratio = 0;
    TxStats stats;
    std::uint64_t p50_ns = 0, p99_ns = 0, p999_ns = 0;
};

// Parse a comma-separated list of unsigned values ("1,2,4").
std::vector<unsigned> parse_list(const std::string& s, const char* flag) {
    std::vector<unsigned> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        const std::size_t comma = s.find(',', pos);
        const std::string tok =
            s.substr(pos, comma == std::string::npos ? comma : comma - pos);
        if (!tok.empty()) {
            const long long v = std::stoll(tok);
            if (v < 0)
                throw std::invalid_argument(std::string("--") + flag +
                                            ": negative value '" + tok + "'");
            out.push_back(static_cast<unsigned>(v));
        }
        if (comma == std::string::npos) break;
        pos = comma + 1;
    }
    if (out.empty())
        throw std::invalid_argument(std::string("--") + flag +
                                    " resolved to no values");
    return out;
}

// Stats delta across a measured window (the structure outlives its cells,
// so each cell subtracts the engine counters it started from).
TxStats stats_delta(const TxStats& after, const TxStats& before) {
    TxStats s(after.commits() - before.commits(),
              after.aborts() - before.aborts(),
              after.helped_commits - before.helped_commits,
              after.helped_timestamps - before.helped_timestamps,
              after.false_conflicts - before.false_conflicts);
    s.extensions = after.extensions - before.extensions;
    s.extension_fast_hits =
        after.extension_fast_hits - before.extension_fast_hits;
    s.validation_fast_hits =
        after.validation_fast_hits - before.validation_fast_hits;
    s.ro_commits = after.ro_commits - before.ro_commits;
    s.backoff_us = after.backoff_us - before.backoff_us;
    s.irrevocable_commits =
        after.irrevocable_commits - before.irrevocable_commits;
    s.escalations = after.escalations - before.escalations;
    s.stall_waits = after.stall_waits - before.stall_waits;
    s.stalled_aborts = after.stalled_aborts - before.stalled_aborts;
    s.injected_faults = after.injected_faults - before.injected_faults;
    return s;
}

// Repetitions per cell, keeping the best window (set from --reps). The
// facade/direct halves of a pair run seconds apart in program order, so a
// one-sided noise window (scheduler, frequency ramp) lands on one half
// only and fakes a dispatch regression; max-of-reps is the throughput
// mirror of check_bench's min-of-reps on the micro rows.
int g_reps = 2;

template <typename GetStats, typename Factory>
Cell run_cell(const GetStats& stats_of, unsigned threads, double duration_ms,
              const Factory& factory) {
    Cell best;
    for (int rep = 0; rep < g_reps; ++rep) {
        const TxStats before = stats_of();
        wl::RunSpec spec;
        spec.threads = threads;
        spec.warmup_ms = duration_ms / 5;
        spec.duration_ms = duration_ms;
        const auto res = wl::run_throughput(spec, factory);
        Cell c;
        c.mops = res.mops_per_sec;
        c.p50_ns = res.p50_ns;
        c.p99_ns = res.p99_ns;
        c.p999_ns = res.p999_ns;
        c.stats = stats_delta(stats_of(), before);
        const std::uint64_t tot = c.stats.commits() + c.stats.aborts();
        c.abort_ratio =
            tot == 0 ? 0 : static_cast<double>(c.stats.aborts()) / tot;
        if (rep == 0 || c.mops > best.mops) best = c;
    }
    return best;
}

// --- per-structure workloads --------------------------------------------
//
// Key picks come from a per-thread splitmix stream; update operations
// split evenly between insert and erase so the content level stays
// stationary around keys/2.

template <typename Policy, typename GetStats, typename Emit>
void bench_skiplist(Policy pol, const GetStats& stats_of,
                    const std::vector<unsigned>& thread_list,
                    const std::vector<unsigned>& update_list,
                    std::uint64_t keys, double duration_ms,
                    const Emit& emit) {
    ds::SkiplistSet<Policy> set(std::move(pol));
    {
        auto h = set.make_handle();
        for (std::uint64_t k = 0; k < keys; k += 2) set.insert(h, k);
    }
    for (const unsigned threads : thread_list) {
        for (const unsigned pct : update_list) {
            const Cell c = run_cell(
                stats_of, threads, duration_ms, [&](unsigned tid) {
                    auto h = std::make_shared<typename ds::SkiplistSet<
                        Policy>::Handle>(set.make_handle());
                    auto rng = std::make_shared<Rng>(tid * 977 + 13);
                    return [&set, h, rng, keys, pct] {
                        const std::uint64_t key = rng->below(keys);
                        const std::uint64_t roll = rng->below(100);
                        if (roll < pct) {
                            if (roll & 1)
                                set.insert(*h, key);
                            else
                                set.erase(*h, key);
                        } else {
                            set.contains(*h, key);
                        }
                    };
                });
            emit("skiplist", threads, static_cast<long>(pct), c);
        }
    }
}

template <typename Policy, typename GetStats, typename Emit>
void bench_hashmap(Policy pol, const GetStats& stats_of,
                   const std::vector<unsigned>& thread_list,
                   const std::vector<unsigned>& update_list,
                   std::uint64_t keys, double duration_ms, const Emit& emit) {
    // 2x the key range: the probe paths stay short at the ~25% stationary
    // load factor, and the table can never fill.
    ds::TxHashMap<Policy> map(std::move(pol), 2 * keys);
    {
        auto h = map.make_handle();
        for (std::uint64_t k = 0; k < keys; k += 2) map.put(h, k, k);
    }
    for (const unsigned threads : thread_list) {
        for (const unsigned pct : update_list) {
            const Cell c = run_cell(
                stats_of, threads, duration_ms, [&](unsigned tid) {
                    auto h = std::make_shared<
                        typename ds::TxHashMap<Policy>::Handle>(
                        map.make_handle());
                    auto rng = std::make_shared<Rng>(tid * 977 + 29);
                    return [&map, h, rng, keys, pct] {
                        const std::uint64_t key = rng->below(keys);
                        const std::uint64_t roll = rng->below(100);
                        if (roll < pct) {
                            if (roll & 1)
                                map.put(*h, key, key + 1);
                            else
                                map.erase(*h, key);
                        } else {
                            std::uint64_t v;
                            map.get(*h, key, v);
                        }
                    };
                });
            emit("hashmap", threads, static_cast<long>(pct), c);
        }
    }
}

template <typename Policy, typename GetStats, typename Emit>
void bench_queue(Policy pol, const GetStats& stats_of,
                 const std::vector<unsigned>& thread_list,
                 std::uint64_t keys, double duration_ms, const Emit& emit) {
    ds::TxQueue<Policy> q(std::move(pol));
    {
        auto h = q.make_handle();
        for (std::uint64_t k = 0; k < keys / 2; ++k) q.enqueue(h, k);
    }
    for (const unsigned threads : thread_list) {
        const Cell c =
            run_cell(stats_of, threads, duration_ms, [&](unsigned tid) {
                auto h = std::make_shared<typename ds::TxQueue<Policy>::Handle>(
                    q.make_handle());
                auto rng = std::make_shared<Rng>(tid * 977 + 41);
                return [&q, h, rng] {
                    if (rng->below(2) == 0) {
                        q.enqueue(*h, 7);
                    } else {
                        std::uint64_t v;
                        q.dequeue(*h, v);
                    }
                };
            });
        emit("queue", threads, -1, c);
    }
}

template <typename Policy, typename GetStats, typename Emit>
void bench_structures(const std::vector<std::string>& structures, Policy pol,
                      const GetStats& stats_of,
                      const std::vector<unsigned>& thread_list,
                      const std::vector<unsigned>& update_list,
                      std::uint64_t keys, double duration_ms,
                      const Emit& emit) {
    for (const auto& s : structures) {
        if (s == "skiplist")
            bench_skiplist(pol, stats_of, thread_list, update_list, keys,
                           duration_ms, emit);
        else if (s == "hashmap")
            bench_hashmap(pol, stats_of, thread_list, update_list, keys,
                          duration_ms, emit);
        else if (s == "queue")
            bench_queue(pol, stats_of, thread_list, keys, duration_ms, emit);
        else
            throw std::invalid_argument(
                "--structures: unknown structure '" + s +
                "' (expected: skiplist, hashmap, queue)");
    }
}

}  // namespace

int main(int argc, char** argv) {
    Cli cli("transactional datastructures over registry engines");
    wl::flag_engine(cli, "lsa,orec,glock");
    wl::flag_timebase(cli, "shared");
    cli.flag_str("threads", "1,2", "comma-separated worker thread counts")
        .flag_str("updates", "0,10,50",
                  "comma-separated update percentages (set/map cells)")
        .flag_str("structures", "skiplist,hashmap,queue",
                  "comma-separated structures to bench")
        .flag_i64("keys", 1 << 20, "key range (sets/maps prepopulate half)")
        .flag_i64("duration-ms", 250, "measured window per cell")
        .flag_i64("reps", 2,
                  "windows per cell, best kept (facade and direct halves "
                  "run far apart in time; reps cancel one-sided noise)")
        .flag_str("json", "", "write machine-readable results to this path");
    std::vector<unsigned> thread_list, update_list;
    std::vector<std::string> structures;
    try {
        if (!cli.parse(argc, argv)) return 0;
        wl::validate_timebase_flag(cli);
        wl::validate_engine_flag(cli);
        if (wl::engine_specs(cli).empty())
            throw std::invalid_argument("--engine resolved to no specs");
        thread_list = parse_list(cli.str("threads"), "threads");
        update_list = parse_list(cli.str("updates"), "updates");
        structures = tb::split_specs(cli.str("structures"));
        if (cli.i64("keys") < 4)
            throw std::invalid_argument("--keys must be >= 4");
        if (cli.i64("reps") < 1)
            throw std::invalid_argument("--reps must be >= 1");
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    const auto keys = static_cast<std::uint64_t>(cli.i64("keys"));
    const double duration = static_cast<double>(cli.i64("duration-ms"));
    const std::string& tb_spec = cli.str("timebase");
    g_reps = static_cast<int>(cli.i64("reps"));

    // Ramp the host before the first measured cell: the facade half of
    // every pair runs first in program order, so the process cold start
    // (frequency governor, first-touch faults) would land entirely on
    // one side of the dispatch-budget ratio. Measured on the 1-CPU CI
    // class of host, the first ~300ms run up to 2x slow.
    {
        volatile std::uint64_t sink = 1;
        const auto until = std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(300);
        while (std::chrono::steady_clock::now() < until)
            for (int i = 0; i < 4096; ++i) sink = sink * 2862933555u + 1;
    }

    std::printf("== Transactional datastructures (facade vs direct) ==\n"
                "key range %llu (prepopulate half), time base %s, "
                "host hardware threads: %u\n\n",
                static_cast<unsigned long long>(keys), tb_spec.c_str(),
                hardware_threads());

    Table t("throughput by structure / engine / dispatch (Mops/s)");
    t.set_header({"structure", "engine", "dispatch", "threads", "upd%",
                  "Mops/s", "abort ratio"});
    Json json;
    json.obj_begin()
        .kv("driver", "tab_datastructures")
        .kv("host_threads", hardware_threads())
        .kv("keys", keys)
        .kv("duration_ms", duration)
        .kv("timebase", tb_spec)
        .kv("engine", cli.str("engine"))
        .key("rows")
        .arr_begin();

    for (const auto& espec : wl::engine_specs(cli)) {
        const std::string ename = stm::parse_engine_spec(espec).name;
        for (const bool facade : {true, false}) {
            // Fresh engine per dispatch mode: zeroed counters, private
            // orec table / stats registry.
            stm::Engine eng = stm::make(espec, tb::make(tb_spec));
            const auto emit = [&](const char* structure, unsigned threads,
                                  long pct, const Cell& c) {
                t.add_row({structure, ename, facade ? "facade" : "direct",
                           Table::num(static_cast<std::uint64_t>(threads)),
                           pct < 0 ? std::string("-")
                                   : Table::num(
                                         static_cast<std::uint64_t>(pct)),
                           Table::num(c.mops, 3),
                           Table::num(c.abort_ratio, 4)});
                json.obj_begin()
                    .kv("structure", structure)
                    .kv("engine", ename)
                    .kv("engine_spec", espec)
                    .kv("dispatch", facade ? "facade" : "direct")
                    .kv("threads", threads)
                    .kv("update_pct", pct)
                    .kv("mops", c.mops)
                    .kv("abort_ratio", c.abort_ratio);
                wl::latency_json(json, c);
                wl::tx_stats_json(json, c.stats).obj_end();
            };
            const auto stats_of = [&eng] { return eng.collected_stats(); };
            if (facade) {
                bench_structures(structures, ds::EnginePolicy(eng), stats_of,
                                 thread_list, update_list, keys, duration,
                                 emit);
            } else {
                stm::visit(eng, [&](auto& adapter) {
                    using A = std::decay_t<decltype(adapter)>;
                    bench_structures(structures, ds::DirectPolicy<A>(adapter),
                                     stats_of, thread_list, update_list, keys,
                                     duration, emit);
                });
            }
        }
    }
    json.arr_end().obj_end();
    t.add_note("facade = type-erased stm::Engine (switch per slot access); "
               "direct = DirectPolicy<A> compile-time twin, same container "
               "code. check_bench.py --ds-blob gates facade within 15% of "
               "direct and orec skiplist above glock at >= 2 threads");
    t.print(std::cout);
    if (!write_json_flag(cli.str("json"), json)) return 2;
    return 0;
}
