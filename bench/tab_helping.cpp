// Helping ablation (DESIGN.md design-choice index): LSA-RT lets any thread
// finish a Committing transaction from its published commit set. The
// alternative -- spin until the committer finishes -- is simpler but makes
// every thread behind a preempted committer wait out the preemption.
//
// On an unloaded machine the two modes should be close (committers rarely
// stall); under oversubscription (more threads than CPUs, forced
// preemption) helping should degrade more gracefully. Both must be correct.

#include <cstdio>
#include <iostream>
#include <string>
#include <memory>
#include <vector>

#include <chronostm/stm/adapter.hpp>
#include <chronostm/util/affinity.hpp>
#include <chronostm/util/cli.hpp>
#include <chronostm/util/json_out.hpp>
#include <chronostm/util/rng.hpp>
#include <chronostm/util/table.hpp>
#include <chronostm/workload/bank.hpp>
#include <chronostm/workload/runner.hpp>

using namespace chronostm;

namespace {

struct Cell {
    double mtx = 0;
    std::uint64_t helped = 0;
    bool conserved = true;
    TxStats stats;
    std::uint64_t p50_ns = 0, p99_ns = 0, p999_ns = 0;
};

Cell run_cell(const std::string& tb_spec, bool help, unsigned threads,
              double duration_ms) {
    using A = stm::LsaAdapter;
    StmConfig cfg;
    cfg.help_committers = help;
    A adapter(tb::make(tb_spec), cfg);
    wl::Bank<A> bank(24, 1000, 0.6);  // skewed: plenty of claim encounters

    wl::RunSpec spec;
    spec.threads = threads;
    spec.warmup_ms = duration_ms / 5;
    spec.duration_ms = duration_ms;
    const auto res = wl::run_throughput(spec, [&](unsigned tid) {
        auto ctx = std::make_shared<typename A::Context>(adapter.make_context());
        auto rng = std::make_shared<Rng>(tid * 77 + 5);
        return [&, ctx, rng] { bank.transfer(adapter, *ctx, *rng); };
    });

    Cell c;
    c.mtx = res.mops_per_sec;
    c.p50_ns = res.p50_ns;
    c.p99_ns = res.p99_ns;
    c.p999_ns = res.p999_ns;
    c.stats = adapter.stm().collected_stats();
    c.helped = c.stats.helped_commits + c.stats.helped_timestamps;
    c.conserved = bank.unsafe_total() == bank.expected_total();
    return c;
}

}  // namespace

int main(int argc, char** argv) {
    Cli cli("helping ablation: finish committers vs spin-wait them out");
    wl::flag_timebase(cli, "perfect");
    cli.flag_i64("duration-ms", 200, "measured window per cell")
        .flag_str("json", "", "write machine-readable results to this path");
    try {
        if (!cli.parse(argc, argv)) return 0;
        wl::validate_timebase_flag(cli);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    const double duration = static_cast<double>(cli.i64("duration-ms"));
    const std::string& tb_spec = cli.str("timebase");

    std::printf("== Helping ablation (LSA-RT commit protocol) ==\n"
                "time base %s\n\n", tb_spec.c_str());
    Table t("hot-spot bank transfers");
    t.set_header({"threads", "help Mtx/s", "helped ops", "spin Mtx/s",
                  "conserved", "oversub"});

    const unsigned hw = hardware_threads();
    bool all_ok = true;
    Json json;
    json.obj_begin()
        .kv("driver", "tab_helping")
        .kv("timebase", tb_spec)
        .kv("host_threads", hw)
        .kv("duration_ms", duration)
        .key("rows")
        .arr_begin();
    for (const unsigned n : {2u, hw, 2 * hw}) {
        const Cell with_help = run_cell(tb_spec, true, n, duration);
        const Cell spin = run_cell(tb_spec, false, n, duration);
        all_ok = all_ok && with_help.conserved && spin.conserved;
        t.add_row({Table::num(static_cast<std::uint64_t>(n)),
                   Table::num(with_help.mtx, 3), Table::num(with_help.helped),
                   Table::num(spin.mtx, 3),
                   (with_help.conserved && spin.conserved) ? "yes" : "NO",
                   n > hw ? "yes" : ""});
        json.obj_begin()
            .kv("threads", n)
            .kv("help_mtxs", with_help.mtx)
            .kv("helped_ops", with_help.helped)
            .kv("spin_mtxs", spin.mtx)
            .kv("conserved", with_help.conserved && spin.conserved)
            .kv("oversubscribed", n > hw);
        wl::latency_json(json, with_help);
        wl::tx_stats_json(json, with_help.stats).obj_end();
    }
    t.add_note("oversubscribed rows force committer preemption: the regime "
               "where helping matters");
    t.print(std::cout);

    std::printf("\nSHAPE-CHECK both modes conserve money everywhere: %s\n",
                all_ok ? "PASS" : "FAIL");
    json.arr_end().kv("all_conserved", all_ok).obj_end();
    if (!write_json_flag(cli.str("json"), json)) return 2;
    return all_ok ? 0 : 1;
}
