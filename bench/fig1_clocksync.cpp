// Figure 1 reproduction: "MMTimer synchronization errors and offsets."
//
// The paper ran the shared-memory clock-comparison experiment for four
// hours (one round per 100 ms) against the Altix's MMTimer and found: no
// drift, error always >= offset, and a bound of roughly 90 ticks -- while
// the hardware synchronization itself is good to ~8 ticks (masked by the
// read latency). We run the same algorithm against MMTimerSim with injected
// node offsets (ground truth known!) and report the same three series.
//
// Expected shape: max error >= max|offset| every round; both bounded; the
// estimated bound covers the true injected offsets.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <stdexcept>
#include <functional>
#include <vector>

#include <chronostm/clocksync/sync_probe.hpp>
#include <chronostm/timebase/facade.hpp>
#include <chronostm/util/affinity.hpp>
#include <chronostm/util/cli.hpp>
#include <chronostm/util/json_out.hpp>
#include <chronostm/util/stats.hpp>
#include <chronostm/util/table.hpp>

using namespace chronostm;

int main(int argc, char** argv) {
    Cli cli("Figure 1: MMTimer synchronization errors and offsets");
    cli.flag_str("timebase", "mmtimer",
                 "probed time base, facade spec grammar (mmtimer[:freq-hz=.."
                 ",latency=..,nodes=..,offset=..]); --nodes/--inject "
                 "override the spec's keys");
    cli.flag_i64("rounds", 40, "measurement rounds (paper: 4h at 10/s)")
        .flag_i64("interval-us", 5000, "pause between rounds")
        .flag_i64("exchanges", 16, "probe exchanges per round (best kept)")
        .flag_i64("nodes", 0, "MMTimer nodes, 0 = spec's (probes = nodes-1)")
        .flag_i64("inject", -1,
                  "max injected per-node offset in ticks, -1 = spec's "
                  "(default 4). The default models "
                  "the hardware-synchronized device of the paper (offsets "
                  "below the read latency); raise it to study a badly "
                  "synchronized clock -- error>=offset is then expected to "
                  "fail, exactly as the paper's reasoning predicts")
        .flag_str("json", "", "write machine-readable results to this path");
    // The probed device is configured through the facade's spec grammar
    // (the uniform --timebase spelling every driver shares); the legacy
    // --nodes/--inject flags override the spec's keys. Parsed inside the
    // try so a typoed name, key, or value exits 2 with a one-line error.
    tb::MMTimerSim::Params mcfg;
    try {
        if (!cli.parse(argc, argv)) return 0;
        const tb::TimeBaseSpec tspec = tb::parse_spec(cli.str("timebase"));
        if (tspec.name != "mmtimer")
            throw std::invalid_argument(
                "fig1_clocksync probes the simulated MMTimer; --timebase "
                "must be an mmtimer spec (got '" + tspec.name + "')");
        tspec.require_keys({"freq-hz", "latency", "nodes", "offset"});
        mcfg.freq_hz = tspec.num("freq-hz", mcfg.freq_hz);
        mcfg.read_latency_ticks = static_cast<unsigned>(
            tspec.u64("latency", mcfg.read_latency_ticks));
        mcfg.nodes = static_cast<unsigned>(tspec.u64("nodes", 2));
        mcfg.max_node_offset_ticks =
            static_cast<std::int64_t>(tspec.num("offset", 4.0));
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    if (cli.i64("nodes") > 0)
        mcfg.nodes = static_cast<unsigned>(cli.i64("nodes"));
    if (cli.i64("inject") >= 0) mcfg.max_node_offset_ticks = cli.i64("inject");

    std::printf("== Reproduction of Figure 1 (SPAA'07, Riegel/Fetzer/Felber) ==\n"
                "Workload: shared-memory clock comparison, reference node 0\n\n");

    tb::MMTimerSim sim(mcfg);

    csync::SyncProbeConfig pcfg;
    pcfg.rounds = static_cast<int>(cli.i64("rounds"));
    pcfg.exchanges_per_round = static_cast<int>(cli.i64("exchanges"));
    pcfg.round_interval_us = cli.i64("interval-us");
    // Pinning reference+probes onto fewer CPUs than threads only adds
    // scheduler noise; pin only when each participant can own a CPU.
    pcfg.pin_threads = hardware_threads() > mcfg.nodes;

    std::vector<std::function<std::int64_t()>> clocks;
    for (unsigned n = 0; n < sim.nodes(); ++n)
        clocks.emplace_back([&sim, n]() -> std::int64_t {
            return static_cast<std::int64_t>(sim.read(n));
        });

    const auto rounds = csync::run_sync_probe(clocks, pcfg);

    Table t("Figure 1 series (MMTimer ticks, 20 MHz)");
    t.set_header({"round", "max|offset|", "max error", "max(error+|offset|)"});
    std::vector<double> offsets, errors, bounds;
    for (std::size_t r = 0; r < rounds.size(); ++r) {
        const auto& row = rounds[r];
        t.add_row({Table::num(static_cast<std::uint64_t>(r)),
                   Table::num(row.max_abs_offset, 1), Table::num(row.max_error, 1),
                   Table::num(row.max_error_plus_offset, 1)});
        offsets.push_back(row.max_abs_offset);
        errors.push_back(row.max_error);
        bounds.push_back(row.max_error_plus_offset);
    }
    // Medians are robust against scheduler-preemption spikes (a descheduled
    // probe mid-exchange produces a huge, honest-but-useless window). The
    // paper ran on dedicated CPUs; CI hosts are noisy.
    const double med_off = median(offsets);
    const double med_err = median(errors);
    const double med_bound = median(bounds);

    std::int64_t true_span = 0;
    for (unsigned n = 0; n < sim.nodes(); ++n)
        true_span = std::max(true_span, std::abs(sim.node_offset(n)));
    t.add_note("true injected offset span: " + std::to_string(true_span) +
               " ticks");
    t.add_note("median bound (err+|off|): " + Table::num(med_bound, 1) +
               " ticks (paper estimated ~90 for the real device)");
    t.print(std::cout);

    // With the hardware-synchronized default, measured offsets stay below
    // the measurement error -- the paper's "errors are always larger than
    // offsets". With large injected offsets this deliberately fails.
    const bool error_dominates = med_err + 1e-9 >= med_off;
    const bool bound_sound = med_bound + 1.0 >= static_cast<double>(true_span);
    const double first_med = median(std::vector<double>(
        offsets.begin(), offsets.begin() + static_cast<long>(offsets.size() / 2)));
    const double second_med = median(std::vector<double>(
        offsets.begin() + static_cast<long>(offsets.size() / 2), offsets.end()));
    const bool no_drift = second_med <= first_med + med_err + 1.0;
    std::printf("\nSHAPE-CHECK error>=offset (medians): %s\n",
                error_dominates ? "PASS" : "FAIL");
    std::printf("SHAPE-CHECK estimated bound covers true offsets: %s\n",
                bound_sound ? "PASS" : "FAIL");
    std::printf("SHAPE-CHECK no drift across the run: %s\n",
                no_drift ? "PASS" : "FAIL");

    Json json;
    json.obj_begin()
        .kv("driver", "fig1_clocksync")
        .kv("nodes", mcfg.nodes)
        .kv("injected_offset_ticks", mcfg.max_node_offset_ticks)
        .kv("exchanges_per_round", cli.i64("exchanges"))
        .key("rounds")
        .arr_begin();
    for (std::size_t r = 0; r < rounds.size(); ++r) {
        json.obj_begin()
            .kv("round", static_cast<std::uint64_t>(r))
            .kv("max_abs_offset", offsets[r])
            .kv("max_error", errors[r])
            .kv("max_error_plus_offset", bounds[r])
            .obj_end();
    }
    json.arr_end()
        .kv("median_max_abs_offset", med_off)
        .kv("median_max_error", med_err)
        .kv("median_bound", med_bound)
        .kv("true_offset_span_ticks", true_span)
        .key("checks")
        .obj_begin()
        .kv("error_dominates_offset", error_dominates)
        .kv("bound_covers_true_offsets", bound_sound)
        .kv("no_drift", no_drift)
        .obj_end()
        .obj_end();
    if (!write_json_flag(cli.str("json"), json)) return 2;
    return (error_dominates && bound_sound && no_drift) ? 0 : 1;
}
