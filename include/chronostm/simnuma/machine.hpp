// Discrete-event ccNUMA machine model for the paper-scale Figure 2 sweep
// (fig2_sim): this host and the CI runners have too few CPUs to exhibit
// the 16-way contention curve natively, so we simulate the *cost
// structure* the paper measures instead -- the substitution argument in
// DESIGN.md.
//
// The model: P processors run the disjoint update workload (the only
// Figure-2 workload) as a sequence of deterministic segments. The sole
// shared resource is the cache line holding the shared-counter time base,
// modeled as an exclusively-owned line with FIFO arbitration: a request
// (BEGIN's counter load or COMMIT's fetch&inc -- both must reach the
// current owner's cache through the directory) is granted in arrival
// order and occupies the line for one transfer. A transfer costs
// `counter_local_ns` when the requester already owns the line (P=1, or
// back-to-back ops without an interleaver) and
// `counter_remote_base_ns + counter_remote_hop_ns * log2(P)` otherwise:
// the base is the directory round trip, the log2(P) term is the extra
// router hops an Altix-class fat-tree interconnect adds as the machine
// grows. The local MMTimer read is a fixed `timer_read_ns` with no shared
// state. Everything else (object accesses, commit bookkeeping) is
// processor-local compute.
//
// That asymmetry alone reproduces the paper's three-panel shape: the
// counter's throughput is capped at one line transfer per time-base op
// regardless of P (saturation), the cap itself *falls* as log2(P) grows
// (decline), and the MMTimer curve is embarrassingly parallel (linear).
//
// Determinism: the simulation is pure arithmetic over event clocks --
// same MachineConfig (including seed) => bit-identical MachineResult.
// Per-access work jitter comes from a SplitMix64 stream seeded per
// processor, so the event interleavings are varied but reproducible.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <chronostm/util/rng.hpp>

namespace chronostm {
namespace sim {

enum class SimTimeBase {
    SharedCounter,   // fetch&inc on one exclusively-owned cache line
    LocalTimer,      // fixed-latency local MMTimer read
    ShardedCounter,  // per-clock-domain counter lines + lazy watermark line
};

struct MachineConfig {
    unsigned processors = 1;
    unsigned txn_accesses = 10;   // disjoint workload: accesses per update txn
    double duration_ms = 40.0;    // simulated measurement window
    std::uint64_t seed = 1;
    SimTimeBase time_base = SimTimeBase::SharedCounter;

    // NUMA clock domains (ShardedCounter only): processors are assigned
    // round-robin to `clock_domains` counter lines, so a commit's
    // fetch&inc contends only within its domain and a remote transfer
    // crosses only the domain's diameter (log2(P/D) hops instead of
    // log2(P)). BEGIN reads the mostly-shared watermark line at local
    // cost, and every `watermark_period`-th commit per processor pays one
    // globally-arbitrated watermark publish (full-diameter transfer) --
    // the simulator's analogue of sharded_counter.hpp's band K, scaled up
    // because simulated transactions are ~2us against ~10ns draws on a
    // real host.
    unsigned clock_domains = 1;
    unsigned watermark_period = 32;

    // Calibration knobs (see DESIGN.md). Defaults model an Altix-class
    // 16-way ccNUMA machine at the paper's constants: 20 MHz MMTimer with
    // a 7-tick (350 ns) read, STM object accesses in the low hundreds of
    // ns, remote exclusive-line transfers growing with machine diameter.
    double access_ns = 150.0;             // STM work per object access
    double commit_fixed_ns = 250.0;       // commit bookkeeping, local
    double timer_read_ns = 350.0;         // MMTimer read latency
    double counter_local_ns = 25.0;       // counter op while owning the line
    double counter_remote_base_ns = 450.0;  // line transfer: directory trip
    double counter_remote_hop_ns = 240.0;   // line transfer: per log2(P) hop
    double work_jitter = 0.02;            // relative jitter on the work segment
};

struct MachineResult {
    std::uint64_t committed_txns = 0;  // commits completing within the window
    double sim_ns = 0;                 // window length, simulated ns
    double mtx_per_sec = 0;            // committed_txns over the window

    // Shared-counter line telemetry (zero for LocalTimer runs).
    std::uint64_t line_remote_transfers = 0;
    std::uint64_t line_local_hits = 0;
    // Time the line spent servicing transfers *within the window*, so
    // line_busy_ns / sim_ns is a utilization in [0, 1] (post-horizon
    // drain grants are excluded).
    double line_busy_ns = 0;

    // Engine invariants, checked while simulating: per-processor event
    // clocks never run backwards and no grant precedes its request.
    bool clocks_monotone = true;
    std::vector<double> proc_clock_ns;           // final event clock per proc
    std::vector<std::uint64_t> per_proc_commits;
};

inline double counter_remote_transfer_ns(const MachineConfig& cfg) {
    const double p = cfg.processors == 0 ? 1.0 : cfg.processors;
    return cfg.counter_remote_base_ns +
           cfg.counter_remote_hop_ns * std::log2(std::max(1.0, p));
}

// Remote transfer cost for a line whose sharers span `span` processors:
// directory round trip plus the hops of that sub-machine's diameter.
inline double span_remote_transfer_ns(const MachineConfig& cfg,
                                      unsigned span) {
    return cfg.counter_remote_base_ns +
           cfg.counter_remote_hop_ns *
               std::log2(std::max(1.0, static_cast<double>(span)));
}

inline MachineResult simulate_machine(const MachineConfig& cfg) {
    const unsigned n = cfg.processors == 0 ? 1 : cfg.processors;
    const double horizon_ns = cfg.duration_ms * 1e6;

    MachineResult res;
    res.sim_ns = horizon_ns;
    res.proc_clock_ns.assign(n, 0.0);
    res.per_proc_commits.assign(n, 0);

    std::vector<Rng> rng;
    rng.reserve(n);
    for (unsigned p = 0; p < n; ++p)
        rng.emplace_back(cfg.seed * 0x9e3779b97f4a7c15ULL + p + 1);

    // One transaction's work segment: txn_accesses object accesses with a
    // small multiplicative jitter so the event interleaving is not
    // lockstep (and distinct seeds produce distinct sweeps).
    const auto work_ns = [&](unsigned p) {
        const double base = cfg.access_ns * cfg.txn_accesses;
        const double j = 1.0 + cfg.work_jitter * (2.0 * rng[p].real01() - 1.0);
        return base * j;
    };

    if (cfg.time_base == SimTimeBase::ShardedCounter) {
        // Per-domain counter lines + one watermark line, each an
        // exclusively-owned FIFO-arbitrated line like the shared counter's.
        // Serving the globally earliest outstanding request preserves
        // per-line FIFO order (any other request to the same line arrived
        // later), so the one event loop drives every line.
        const unsigned d =
            cfg.clock_domains == 0 ? 1 : std::min(cfg.clock_domains, n);
        const unsigned wm_period =
            cfg.watermark_period == 0 ? 1 : cfg.watermark_period;
        const unsigned wm_line = d;  // lines [0, d): domains; [d]: watermark
        struct Line {
            double free_at = 0.0;
            int owner = -1;
        };
        std::vector<Line> lines(d + 1);
        // Domain population: round-robin assignment puts ceil(n/d)
        // processors on the widest domain.
        const unsigned span = (n + d - 1) / d;
        const double domain_remote_ns = span_remote_transfer_ns(cfg, span);
        const double wm_remote_ns = span_remote_transfer_ns(cfg, n);

        enum class Op { Commit, WMark };
        std::vector<double> req_at(n);
        std::vector<Op> req_op(n, Op::Commit);
        std::vector<unsigned> since_wm(n, 0);
        std::vector<bool> done(n, false);
        unsigned running = n;
        for (unsigned p = 0; p < n; ++p) {
            // BEGIN reads the read-shared watermark at local cost, then the
            // transaction body runs; the first line request is the commit's
            // fetch&inc on the processor's domain line.
            req_at[p] = cfg.counter_local_ns + work_ns(p);
        }

        const auto finish_commit = [&](unsigned p, double end) {
            const double commit_end = end + cfg.commit_fixed_ns;
            if (commit_end <= horizon_ns) ++res.per_proc_commits[p];
            res.proc_clock_ns[p] = commit_end;
            if (commit_end > horizon_ns) {
                done[p] = true;
                --running;
            } else {
                req_at[p] = commit_end + cfg.counter_local_ns + work_ns(p);
                req_op[p] = Op::Commit;
            }
        };

        while (running > 0) {
            unsigned p = n;
            for (unsigned i = 0; i < n; ++i) {
                if (done[i]) continue;
                if (p == n || req_at[i] < req_at[p]) p = i;
            }
            const double arrival = req_at[p];
            const unsigned l = req_op[p] == Op::WMark ? wm_line : p % d;
            const bool local = lines[l].owner == static_cast<int>(p);
            const double cost =
                local ? cfg.counter_local_ns
                      : (l == wm_line ? wm_remote_ns : domain_remote_ns);
            const double start = std::max(arrival, lines[l].free_at);
            const double end = start + cost;
            if (start < arrival || end < start || end < lines[l].free_at)
                res.clocks_monotone = false;
            lines[l].free_at = end;
            lines[l].owner = static_cast<int>(p);
            res.line_busy_ns +=
                std::max(0.0, std::min(end, horizon_ns) - start);
            if (local)
                ++res.line_local_hits;
            else
                ++res.line_remote_transfers;

            if (req_op[p] == Op::Commit && ++since_wm[p] >= wm_period) {
                since_wm[p] = 0;
                req_at[p] = end;
                req_op[p] = Op::WMark;
            } else {
                finish_commit(p, end);
            }
            if (res.proc_clock_ns[p] < 0) res.clocks_monotone = false;
        }
    } else if (cfg.time_base == SimTimeBase::LocalTimer) {
        // No shared state: processors simulate independently.
        for (unsigned p = 0; p < n; ++p) {
            double t = 0;
            while (t <= horizon_ns) {
                double next = t + cfg.timer_read_ns;  // BEGIN: timer read
                next += work_ns(p);                   // object accesses
                next += cfg.timer_read_ns;            // COMMIT: stamp read
                next += cfg.commit_fixed_ns;          // commit bookkeeping
                if (next < t) res.clocks_monotone = false;
                t = next;
                if (t <= horizon_ns) ++res.per_proc_commits[p];
            }
            res.proc_clock_ns[p] = t;
        }
    } else {
        // Shared counter: the line is the one shared resource. Each txn
        // issues two line requests (BEGIN load, COMMIT fetch&inc); grants
        // are FIFO in request-arrival order (ties: lowest processor id).
        enum class Op { Begin, Commit };
        std::vector<double> req_at(n, 0.0);   // next line-request arrival
        std::vector<Op> req_op(n, Op::Begin);
        std::vector<bool> done(n, false);
        const double remote_ns = counter_remote_transfer_ns(cfg);

        double line_free_at = 0.0;
        int line_owner = -1;
        unsigned running = n;

        while (running > 0) {
            // FIFO arbitration: serve the earliest outstanding request.
            unsigned p = n;
            for (unsigned i = 0; i < n; ++i) {
                if (done[i]) continue;
                if (p == n || req_at[i] < req_at[p]) p = i;
            }
            const double arrival = req_at[p];
            const bool local = line_owner == static_cast<int>(p);
            const double cost = local ? cfg.counter_local_ns : remote_ns;
            const double start = std::max(arrival, line_free_at);
            const double end = start + cost;
            if (start < arrival || end < start || end < line_free_at)
                res.clocks_monotone = false;
            line_free_at = end;
            line_owner = static_cast<int>(p);
            res.line_busy_ns +=
                std::max(0.0, std::min(end, horizon_ns) - start);
            if (local)
                ++res.line_local_hits;
            else
                ++res.line_remote_transfers;

            if (req_op[p] == Op::Begin) {
                // Snapshot taken; run the transaction body, then request
                // the commit stamp.
                req_at[p] = end + work_ns(p);
                req_op[p] = Op::Commit;
            } else {
                const double commit_end = end + cfg.commit_fixed_ns;
                if (commit_end <= horizon_ns) ++res.per_proc_commits[p];
                res.proc_clock_ns[p] = commit_end;
                if (commit_end > horizon_ns) {
                    done[p] = true;
                    --running;
                } else {
                    req_at[p] = commit_end;  // next txn begins immediately
                    req_op[p] = Op::Begin;
                }
            }
            if (res.proc_clock_ns[p] < 0) res.clocks_monotone = false;
        }
    }

    for (unsigned p = 0; p < n; ++p)
        res.committed_txns += res.per_proc_commits[p];
    if (horizon_ns > 0)
        res.mtx_per_sec =
            static_cast<double>(res.committed_txns) * 1e3 / horizon_ns;
    return res;
}

}  // namespace sim
}  // namespace chronostm
