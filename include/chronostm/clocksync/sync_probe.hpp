// Round-based clock-comparison probe for the Figure 1 experiment: estimate
// the offset between every node's clock and reference node 0, together
// with a sound per-estimate error bound, using only clock reads (the
// paper's shared-memory variant of remote clock reading).
//
// One exchange (probe node i, reference node 0, all through shared
// memory):
//
//     t1 = read(i)            // probe's clock, before
//     request -> reference thread
//     c0 = read(0)            // served by the reference thread
//     reply   -> probe thread
//     t2 = read(i)            // probe's clock, after
//
// The reference reading happened somewhere inside [t1, t2] on node i's
// clock, so `offset_i = (t1 + t2)/2 - c0` estimates node i's offset with
// error at most `(t2 - t1)/2`. The window necessarily contains two full
// read latencies (the reference's read and one of the probe's), which is
// why the paper's measured errors sit at the read-latency scale and why
// "errors are always larger than offsets" holds exactly until the true
// offsets exceed that scale -- and provably breaks after (test_clocksync
// checks both directions).
//
// A round performs N exchanges per probe and keeps the one with the
// smallest window (best-bound kept): scheduler preemption can only widen
// a window, never shrink it, so min-window is the honest pick. Rounds are
// separated by a configurable interval; each probe node gets its own
// thread, plus one thread servicing requests for the reference clock.
// Spin-waits yield periodically so the probe stays live on hosts with
// fewer CPUs than participants (the bounds just get honestly wider).

#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include <chronostm/util/affinity.hpp>
#include <chronostm/util/pause.hpp>

namespace chronostm {
namespace csync {

struct SyncProbeConfig {
    int rounds = 40;
    int exchanges_per_round = 16;   // best (smallest-window) exchange kept
    long long round_interval_us = 5000;
    bool pin_threads = false;       // reference -> CPU 0, probe i -> CPU i
};

// One row of Figure 1: per-round maxima across the probe nodes, in clock
// ticks. max_error_plus_offset is the round's upper bound on any node's
// true offset (|true_i| <= |offset_i| + error_i always holds).
struct SyncRound {
    double max_abs_offset = 0;
    double max_error = 0;
    double max_error_plus_offset = 0;
    int valid_probes = 0;  // probes that completed >= 1 exchange this round
};

namespace detail {

// Spin that stays live when participants outnumber CPUs.
template <typename Pred>
void spin_until(Pred&& pred) {
    int spins = 0;
    while (!pred()) {
        cpu_relax();
        if (++spins >= 128) {
            std::this_thread::yield();
            spins = 0;
        }
    }
}

struct alignas(64) Mailbox {
    std::atomic<std::uint64_t> req{0};
    std::atomic<std::uint64_t> ack{0};
    std::int64_t ref_value = 0;  // written before the ack release-store
};

struct alignas(64) ProbeSlot {
    std::atomic<int> done_round{-1};
    double abs_offset = 0;
    double error = 0;
    bool valid = false;
};

}  // namespace detail

// clocks[0] is the reference node; clocks[1..] are probed against it.
// Every closure must be callable from a foreign thread.
inline std::vector<SyncRound> run_sync_probe(
    const std::vector<std::function<std::int64_t()>>& clocks,
    const SyncProbeConfig& cfg) {
    const int rounds = cfg.rounds < 0 ? 0 : cfg.rounds;
    std::vector<SyncRound> out(static_cast<std::size_t>(rounds));
    if (clocks.size() < 2 || rounds == 0) return out;
    const unsigned probes = static_cast<unsigned>(clocks.size()) - 1;
    const int exchanges =
        cfg.exchanges_per_round < 1 ? 1 : cfg.exchanges_per_round;

    auto boxes = std::make_unique<detail::Mailbox[]>(probes);
    auto slots = std::make_unique<detail::ProbeSlot[]>(probes);
    std::atomic<int> round{-1};
    std::atomic<bool> stop{false};

    std::thread ref([&] {
        if (cfg.pin_threads) pin_to_cpu(0);
        int spins = 0;
        while (!stop.load(std::memory_order_acquire)) {
            bool served = false;
            for (unsigned i = 0; i < probes; ++i) {
                auto& mb = boxes[i];
                const auto r = mb.req.load(std::memory_order_acquire);
                if (r != mb.ack.load(std::memory_order_relaxed)) {
                    mb.ref_value = clocks[0]();
                    mb.ack.store(r, std::memory_order_release);
                    served = true;
                }
            }
            if (served) {
                spins = 0;
            } else {
                cpu_relax();
                if (++spins >= 128) {
                    std::this_thread::yield();
                    spins = 0;
                }
            }
        }
    });

    std::vector<std::thread> workers;
    workers.reserve(probes);
    for (unsigned i = 0; i < probes; ++i) {
        workers.emplace_back([&, i] {
            if (cfg.pin_threads) pin_to_cpu(i + 1);
            auto& mb = boxes[i];
            auto& slot = slots[i];
            const auto& clock = clocks[i + 1];
            std::uint64_t seq = 0;
            for (int r = 0; r < rounds; ++r) {
                detail::spin_until([&] {
                    return round.load(std::memory_order_acquire) >= r ||
                           stop.load(std::memory_order_acquire);
                });
                if (stop.load(std::memory_order_acquire)) return;

                double best_window = -1, best_offset = 0;
                for (int e = 0; e < exchanges; ++e) {
                    const std::int64_t t1 = clock();
                    ++seq;
                    mb.req.store(seq, std::memory_order_release);
                    detail::spin_until([&] {
                        return mb.ack.load(std::memory_order_acquire) == seq;
                    });
                    const std::int64_t c0 = mb.ref_value;
                    const std::int64_t t2 = clock();
                    if (t2 < t1) continue;  // non-monotone clock: discard
                    const double window = static_cast<double>(t2 - t1);
                    if (best_window < 0 || window < best_window) {
                        best_window = window;
                        best_offset = 0.5 * (static_cast<double>(t1) +
                                             static_cast<double>(t2)) -
                                      static_cast<double>(c0);
                    }
                }
                slot.valid = best_window >= 0;
                slot.abs_offset = best_offset < 0 ? -best_offset : best_offset;
                slot.error = best_window >= 0 ? best_window / 2.0 : 0.0;
                slot.done_round.store(r, std::memory_order_release);
            }
        });
    }

    for (int r = 0; r < rounds; ++r) {
        round.store(r, std::memory_order_release);
        SyncRound row;
        for (unsigned i = 0; i < probes; ++i) {
            auto& slot = slots[i];
            detail::spin_until([&] {
                return slot.done_round.load(std::memory_order_acquire) >= r;
            });
            if (!slot.valid) continue;
            ++row.valid_probes;
            row.max_abs_offset = std::max(row.max_abs_offset, slot.abs_offset);
            row.max_error = std::max(row.max_error, slot.error);
            row.max_error_plus_offset = std::max(
                row.max_error_plus_offset, slot.error + slot.abs_offset);
        }
        out[static_cast<std::size_t>(r)] = row;
        if (cfg.round_interval_us > 0 && r + 1 < rounds)
            std::this_thread::sleep_for(
                std::chrono::microseconds(cfg.round_interval_us));
    }

    stop.store(true, std::memory_order_release);
    for (auto& w : workers) w.join();
    ref.join();
    return out;
}

}  // namespace csync
}  // namespace chronostm
