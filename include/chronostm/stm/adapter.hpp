// The uniform Stm facade the workload layer and every comparison driver
// program against. An adapter provides:
//
//   template <typename T> using Var;   // shared transactional variable,
//                                      //   constructed with an initial
//                                      //   value; Var::unsafe_peek() for
//                                      //   quiesced post-run checks
//   using Txn;                         // per-attempt handle:
//                                      //   tx.read(var), tx.write(var, v),
//                                      //   tx.abort()
//   using Context;                     // per-thread handle (make one per
//                                      //   worker thread); Context::stats()
//                                      //   exposes per-thread commit/abort
//                                      //   counters plus the fast-path
//                                      //   block (extensions, epoch-filter
//                                      //   fast hits, ro_commits,
//                                      //   backoff_us)
//   Context make_context();
//   adapter.run(ctx, f);               // runs f(Txn&) until it commits and
//                                      //   passes f's return value through
//   adapter.txn_begin(ctx);            // explicit one-attempt control for
//   adapter.txn_commit(ctx, tx);       //   staged tests (reads/writes may
//                                      //   throw on conflict; commit
//                                      //   reports success)
//   adapter.collected_stats();         // aggregate TxStats over contexts
//
// Engines behind the facade:
//   * LsaAdapter       -- the paper's LSA-RT over any tb::TimeBase (the
//                         runtime-pluggable time-base facade: pass a
//                         wrapped object or a registry handle from
//                         tb::make("batched:B=16")), with multi-version
//                         history, commit helping, pluggable contention
//                         managers, and the commit-epoch validation
//                         filter (StmConfig::epoch_filter).
//   * OrecAdapter      -- LSA over a global orec table (core/orec_stm.hpp):
//                         raw-memory words hashed to versioned locks by
//                         (addr >> 4) & mask, same time-base facade,
//                         snapshot extension, and commit-epoch filter
//                         (OrecConfig::epoch_filter), single-version, no
//                         helping, commit-time write-back batching
//                         (OrecConfig::batched_writeback). Var<T> is the
//                         metadata-free WordVar<T>.
//   * Tl2Adapter       -- single-version, global-version-clock TL2.
//   * VstmAdapter      -- validation-based STM, +- commit-counter
//                         heuristic (VstmConfig).
//   * GlobalLockAdapter-- one mutex around everything.

#pragma once

#include <type_traits>
#include <utility>

#include <chronostm/core/lsa_stm.hpp>
#include <chronostm/core/orec_stm.hpp>
#include <chronostm/stm/baselines/global_lock.hpp>
#include <chronostm/stm/baselines/tl2.hpp>
#include <chronostm/stm/baselines/vstm.hpp>

namespace chronostm {
namespace stm {

// LSA-RT behind the facade: thin shims over core/lsa_stm.hpp. The Txn
// handle adapts the facade's tx.read(var) spelling to the core's
// var.get(tx) one; everything else forwards. The time base arrives as a
// tb::TimeBase handle, so one adapter type serves every base.
class LsaAdapter {
 public:
    template <typename T>
    using Var = TVar<T>;

    class Txn {
     public:
        explicit Txn(Transaction& tx) : tx_(tx) {}

        template <typename T>
        T read(Var<T>& var) {
            return var.get(tx_);
        }

        template <typename T>
        void write(Var<T>& var, T v) {
            var.set(tx_, std::move(v));
        }

        [[noreturn]] void abort() { tx_.abort(); }

        // Escalate to irrevocable serial mode right now (see
        // Transaction::become_irrevocable): claim the engine-global token,
        // drain in-flight commits, revalidate once; from then on nothing
        // can abort this transaction. May throw detail::AbortTx (the token
        // survives into the retry, which reruns irrevocably).
        void become_irrevocable() { tx_.become_irrevocable(); }
        bool irrevocable() const { return tx_.irrevocable(); }

        Transaction& inner() { return tx_; }

     private:
        Transaction& tx_;
    };

    class Context {
     public:
        TxStats stats() const { return inner_.stats(); }
        ThreadContext& inner() { return inner_; }

     private:
        friend class LsaAdapter;
        explicit Context(ThreadContext inner)
            : inner_(std::move(inner)) {}
        ThreadContext inner_;
    };

    explicit LsaAdapter(tb::TimeBase tbase, StmConfig cfg = StmConfig{})
        : stm_(std::move(tbase), std::move(cfg)) {}
    LsaAdapter(const LsaAdapter&) = delete;
    LsaAdapter& operator=(const LsaAdapter&) = delete;

    Context make_context() { return Context(stm_.make_context()); }

    Transaction txn_begin(Context& ctx) {
        return ctx.inner_.txn_begin();
    }

    bool txn_commit(Context& ctx, Transaction& tx) {
        return ctx.inner_.txn_commit(tx);
    }

    template <typename F>
    auto run(Context& ctx, F&& f) {
        return ctx.inner_.run([&](Transaction& tx) {
            Txn handle(tx);
            return f(handle);
        });
    }

    LsaStm& stm() { return stm_; }
    TxStats collected_stats() const { return stm_.collected_stats(); }

 private:
    LsaStm stm_;
};

// The orec-table engine behind the same facade: Var<T> resolves to the
// metadata-free WordVar<T> (any word the engine can hash, wrapped for the
// workloads' var-based spelling; drivers that want raw structs or arrays
// use tx_read/tx_write on the Txn's inner() transaction directly).
class OrecAdapter {
 public:
    static constexpr const char* kEngineName = "orec";

    template <typename T>
    using Var = WordVar<T>;

    class Txn {
     public:
        explicit Txn(OrecTransaction& tx) : tx_(tx) {}

        template <typename T>
        T read(Var<T>& var) {
            return var.get(tx_);
        }

        template <typename T>
        void write(Var<T>& var, T v) {
            var.set(tx_, std::move(v));
        }

        [[noreturn]] void abort() { tx_.abort(); }

        // Escalate to irrevocable serial mode right now (see
        // OrecTransaction::become_irrevocable); same contract as the LSA
        // adapter's spelling.
        void become_irrevocable() { tx_.become_irrevocable(); }
        bool irrevocable() const { return tx_.irrevocable(); }

        OrecTransaction& inner() { return tx_; }

     private:
        OrecTransaction& tx_;
    };

    class Context {
     public:
        TxStats stats() const { return inner_.stats(); }
        OrecThreadContext& inner() { return inner_; }

     private:
        friend class OrecAdapter;
        explicit Context(OrecThreadContext inner)
            : inner_(std::move(inner)) {}
        OrecThreadContext inner_;
    };

    explicit OrecAdapter(tb::TimeBase tbase, OrecConfig cfg = OrecConfig{})
        : stm_(std::move(tbase), cfg) {}
    OrecAdapter(const OrecAdapter&) = delete;
    OrecAdapter& operator=(const OrecAdapter&) = delete;

    Context make_context() { return Context(stm_.make_context()); }

    OrecTransaction txn_begin(Context& ctx) {
        return ctx.inner_.txn_begin();
    }

    bool txn_commit(Context& ctx, OrecTransaction& tx) {
        return ctx.inner_.txn_commit(tx);
    }

    template <typename F>
    auto run(Context& ctx, F&& f) {
        return ctx.inner_.run([&](OrecTransaction& tx) {
            Txn handle(tx);
            return f(handle);
        });
    }

    OrecStm& stm() { return stm_; }
    TxStats collected_stats() const { return stm_.collected_stats(); }

 private:
    OrecStm stm_;
};

}  // namespace stm
}  // namespace chronostm
