// Runtime-pluggable STM engines: the same API move timebase/facade.hpp
// made for time bases, applied to the engine concept itself. A type-erased
// stm::Engine / stm::Context / stm::Txn triple wraps the five concrete
// adapters (LsaAdapter, OrecAdapter, Tl2Adapter, VstmAdapter,
// GlobalLockAdapter) behind one runtime-selected interface, constructed
// from a spec string by the string-keyed registry:
//
//   stm::Engine eng = stm::make("orec:bits=14,irrev=32", tb::make("shared"));
//   stm::Context ctx = eng.make_context();
//   eng.run(ctx, [&](stm::Txn& tx) {
//       std::uint64_t v = tx.load(slot);
//       tx.store(slot, v + 1);
//   });
//
// Same grammar rules as tb::make: name before ':', case-insensitive
// lowercased keys, later key wins, unknown names/keys throw loudly.
// Common knobs (stm::CommonConfig) parse uniformly across engines --
// spin=, retries=, irrev=, filter=, ext=, stallspin=, stallts= -- plus
// each engine's private keys (orec: bits=, writeback=; lsa: versions=,
// cm=, help=; vstm: heuristic=).
//
// The data plane is a SLOT, not a Var<T>: each engine stores a
// transactional 64-bit word differently (LSA: a compact heap-history
// TVar<u64, false>; orec: a bare word its global orec table hashes;
// TL2/VSTM: a versioned-lock wstm::Var<u64>; glock: a bare word), so the
// engine reports slot_size()/slot_align() and containers lay raw nodes
// out at runtime: [node header | slot | slot ...]. Dispatch is a switch
// on the kind tag -- no virtual calls, the same branch-ladder shape whose
// time-base twin measured low-single-digit percent; the datastructure
// driver gates the engine facade at <= 15% vs the DirectPolicy twin.
//
// Escape hatches mirror the time-base facade: get_if<LsaAdapter>(eng) for
// telemetry that needs the concrete type, and stm::visit(eng, f) to hand
// the concrete adapter to code templated over the adapter concept (the
// legacy workloads).

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <chronostm/stm/adapter.hpp>
#include <chronostm/stm/config.hpp>

namespace chronostm {
namespace stm {

enum class EngineKind : unsigned {
    kLsa = 0,
    kOrec,
    kTl2,
    kVstm,
    kGlock,
};

// The LSA slot: heap-lazy history keeps it at three words (vlock, value,
// history pointer) instead of the embedded-ring ~400 bytes of the default
// TVar<u64> -- a million-key structure cannot afford an inline ring per
// field, and node workloads rarely revisit old versions of one field.
using LsaSlot = TVar<std::uint64_t, false>;
using WordSlot = wstm::Var<std::uint64_t>;

namespace detail_facade {

inline std::uint64_t raw_load(const void* p) noexcept {
    return __atomic_load_n(static_cast<const std::uint64_t*>(
                               const_cast<void*>(p)),
                           __ATOMIC_RELAXED);
}
inline void raw_store(void* p, std::uint64_t v) noexcept {
    __atomic_store_n(static_cast<std::uint64_t*>(p), v, __ATOMIC_RELAXED);
}

}  // namespace detail_facade

// Per-attempt transaction handle: a kind tag plus a pointer to the
// concrete engine transaction living on the run() stack frame. Valid only
// inside the user functor invocation that received it.
class Txn {
 public:
    std::uint64_t load(void* slot) {
        switch (kind_) {
            case EngineKind::kLsa:
                return static_cast<LsaSlot*>(slot)->get(
                    static_cast<LsaAdapter::Txn*>(p_)->inner());
            case EngineKind::kOrec:
                return static_cast<OrecAdapter::Txn*>(p_)->inner().read(
                    static_cast<const std::uint64_t*>(slot));
            case EngineKind::kTl2:
                return static_cast<tl2::Txn*>(p_)->read(
                    *static_cast<WordSlot*>(slot));
            case EngineKind::kVstm:
                return static_cast<vstm::Txn*>(p_)->read(
                    *static_cast<WordSlot*>(slot));
            case EngineKind::kGlock:
                // The glock Txn holds the big lock; plain word access
                // (relaxed atomic so quiesced peeks race nothing).
                return detail_facade::raw_load(slot);
        }
        __builtin_unreachable();
    }

    void store(void* slot, std::uint64_t v) {
        switch (kind_) {
            case EngineKind::kLsa:
                static_cast<LsaSlot*>(slot)->set(
                    static_cast<LsaAdapter::Txn*>(p_)->inner(), v);
                return;
            case EngineKind::kOrec:
                static_cast<OrecAdapter::Txn*>(p_)->inner().write(
                    static_cast<std::uint64_t*>(slot), v);
                return;
            case EngineKind::kTl2:
                static_cast<tl2::Txn*>(p_)->write(
                    *static_cast<WordSlot*>(slot), v);
                return;
            case EngineKind::kVstm:
                static_cast<vstm::Txn*>(p_)->write(
                    *static_cast<WordSlot*>(slot), v);
                return;
            case EngineKind::kGlock:
                detail_facade::raw_store(slot, v);
                return;
        }
        __builtin_unreachable();
    }

    [[noreturn]] void abort() {
        switch (kind_) {
            case EngineKind::kLsa:
                static_cast<LsaAdapter::Txn*>(p_)->abort();
            case EngineKind::kOrec:
                static_cast<OrecAdapter::Txn*>(p_)->abort();
            case EngineKind::kTl2:
                static_cast<tl2::Txn*>(p_)->abort();
            case EngineKind::kVstm:
                static_cast<vstm::Txn*>(p_)->abort();
            case EngineKind::kGlock:
                static_cast<glock::Txn*>(p_)->abort();
        }
        __builtin_unreachable();
    }

    EngineKind kind() const noexcept { return kind_; }
    // Concrete-transaction escape hatch (pair with Engine::kind()).
    void* raw() noexcept { return p_; }

 private:
    friend class Engine;
    Txn(EngineKind k, void* p) noexcept : kind_(k), p_(p) {}
    EngineKind kind_;
    void* p_;
};

// Per-thread handle: owns the concrete engine context on the heap.
class Context {
 public:
    Context() = default;

    TxStats stats() const {
        switch (kind_) {
            case EngineKind::kLsa:
                return static_cast<LsaAdapter::Context*>(p_.get())->stats();
            case EngineKind::kOrec:
                return static_cast<OrecAdapter::Context*>(p_.get())->stats();
            case EngineKind::kTl2:
            case EngineKind::kVstm:
            case EngineKind::kGlock:
                return static_cast<StatsRegistry::Context*>(p_.get())->stats();
        }
        __builtin_unreachable();
    }

    EngineKind kind() const noexcept { return kind_; }
    void* raw() noexcept { return p_.get(); }

 private:
    friend class Engine;
    Context(EngineKind k, std::shared_ptr<void> p)
        : kind_(k), p_(std::move(p)) {}
    EngineKind kind_ = EngineKind::kLsa;
    std::shared_ptr<void> p_;
};

// Owning, copyable engine handle (copies share the engine, like
// tb::TimeBase).
class Engine {
 public:
    Engine() = default;

    EngineKind kind() const noexcept { return kind_; }
    // Registry name ("lsa", "orec", ...) for row labels.
    const std::string& name() const noexcept { return name_; }
    // The full spec string the engine was made from.
    const std::string& spec() const noexcept { return spec_; }
    bool valid() const noexcept { return ptr_ != nullptr; }

    // ---- data plane: slot layout -------------------------------------
    std::size_t slot_size() const noexcept {
        switch (kind_) {
            case EngineKind::kLsa: return sizeof(LsaSlot);
            case EngineKind::kOrec: return sizeof(std::uint64_t);
            case EngineKind::kTl2:
            case EngineKind::kVstm: return sizeof(WordSlot);
            case EngineKind::kGlock: return sizeof(std::uint64_t);
        }
        __builtin_unreachable();
    }

    std::size_t slot_align() const noexcept {
        switch (kind_) {
            case EngineKind::kLsa: return alignof(LsaSlot);
            case EngineKind::kOrec: return alignof(std::uint64_t);
            case EngineKind::kTl2:
            case EngineKind::kVstm: return alignof(WordSlot);
            case EngineKind::kGlock: return alignof(std::uint64_t);
        }
        __builtin_unreachable();
    }

    void slot_init(void* p, std::uint64_t v) const {
        switch (kind_) {
            case EngineKind::kLsa: new (p) LsaSlot(v); return;
            case EngineKind::kTl2:
            case EngineKind::kVstm: new (p) WordSlot(v); return;
            case EngineKind::kOrec:
            case EngineKind::kGlock:
                detail_facade::raw_store(p, v);
                return;
        }
        __builtin_unreachable();
    }

    void slot_destroy(void* p) const noexcept {
        switch (kind_) {
            case EngineKind::kLsa:
                static_cast<LsaSlot*>(p)->~LsaSlot();
                return;
            case EngineKind::kTl2:
            case EngineKind::kVstm:
                static_cast<WordSlot*>(p)->~WordSlot();
                return;
            case EngineKind::kOrec:
            case EngineKind::kGlock:
                return;  // bare words
        }
        __builtin_unreachable();
    }

    // Plain-function slot destructor, for reclamation-time deleters that
    // outlive any particular call frame (epoch limbo entries).
    using SlotDtor = void (*)(void*);
    SlotDtor slot_dtor() const noexcept {
        switch (kind_) {
            case EngineKind::kLsa:
                return [](void* p) { static_cast<LsaSlot*>(p)->~LsaSlot(); };
            case EngineKind::kTl2:
            case EngineKind::kVstm:
                return
                    [](void* p) { static_cast<WordSlot*>(p)->~WordSlot(); };
            case EngineKind::kOrec:
            case EngineKind::kGlock:
                return [](void*) {};
        }
        __builtin_unreachable();
    }

    // Quiesced-state check only (TVar::unsafe_peek contract).
    std::uint64_t slot_peek(const void* p) const noexcept {
        switch (kind_) {
            case EngineKind::kLsa:
                return static_cast<const LsaSlot*>(p)->unsafe_peek();
            case EngineKind::kTl2:
            case EngineKind::kVstm:
                return static_cast<const WordSlot*>(p)->unsafe_peek();
            case EngineKind::kOrec:
            case EngineKind::kGlock:
                return detail_facade::raw_load(p);
        }
        __builtin_unreachable();
    }

    // ---- control plane -----------------------------------------------
    Context make_context() const {
        switch (kind_) {
            case EngineKind::kLsa: {
                auto* a = static_cast<LsaAdapter*>(ptr_);
                return Context(kind_, std::make_shared<LsaAdapter::Context>(
                                          a->make_context()));
            }
            case EngineKind::kOrec: {
                auto* a = static_cast<OrecAdapter*>(ptr_);
                return Context(kind_, std::make_shared<OrecAdapter::Context>(
                                          a->make_context()));
            }
            case EngineKind::kTl2: {
                auto* a = static_cast<Tl2Adapter*>(ptr_);
                return Context(kind_,
                               std::make_shared<StatsRegistry::Context>(
                                   a->make_context()));
            }
            case EngineKind::kVstm: {
                auto* a = static_cast<VstmAdapter*>(ptr_);
                return Context(kind_,
                               std::make_shared<StatsRegistry::Context>(
                                   a->make_context()));
            }
            case EngineKind::kGlock: {
                auto* a = static_cast<GlobalLockAdapter*>(ptr_);
                return Context(kind_,
                               std::make_shared<StatsRegistry::Context>(
                                   a->make_context()));
            }
        }
        __builtin_unreachable();
    }

    // Run `f(stm::Txn&)` until it commits; passes f's return value through.
    // The concrete transaction lives on this call's stack via the
    // adapter's own run loop; the facade Txn is a borrowed view of it.
    template <typename F>
    auto run(Context& ctx, F&& f) const {
        switch (kind_) {
            case EngineKind::kLsa: {
                auto* a = static_cast<LsaAdapter*>(ptr_);
                auto& c = *static_cast<LsaAdapter::Context*>(ctx.raw());
                return a->run(c, [&](LsaAdapter::Txn& t) {
                    Txn tx(EngineKind::kLsa, &t);
                    return f(tx);
                });
            }
            case EngineKind::kOrec: {
                auto* a = static_cast<OrecAdapter*>(ptr_);
                auto& c = *static_cast<OrecAdapter::Context*>(ctx.raw());
                return a->run(c, [&](OrecAdapter::Txn& t) {
                    Txn tx(EngineKind::kOrec, &t);
                    return f(tx);
                });
            }
            case EngineKind::kTl2: {
                auto* a = static_cast<Tl2Adapter*>(ptr_);
                auto& c = *static_cast<StatsRegistry::Context*>(ctx.raw());
                return a->run(c, [&](tl2::Txn& t) {
                    Txn tx(EngineKind::kTl2, &t);
                    return f(tx);
                });
            }
            case EngineKind::kVstm: {
                auto* a = static_cast<VstmAdapter*>(ptr_);
                auto& c = *static_cast<StatsRegistry::Context*>(ctx.raw());
                return a->run(c, [&](vstm::Txn& t) {
                    Txn tx(EngineKind::kVstm, &t);
                    return f(tx);
                });
            }
            case EngineKind::kGlock: {
                auto* a = static_cast<GlobalLockAdapter*>(ptr_);
                auto& c = *static_cast<StatsRegistry::Context*>(ctx.raw());
                return a->run(c, [&](glock::Txn& t) {
                    Txn tx(EngineKind::kGlock, &t);
                    return f(tx);
                });
            }
        }
        __builtin_unreachable();
    }

    TxStats collected_stats() const {
        switch (kind_) {
            case EngineKind::kLsa:
                return static_cast<LsaAdapter*>(ptr_)->collected_stats();
            case EngineKind::kOrec:
                return static_cast<OrecAdapter*>(ptr_)->collected_stats();
            case EngineKind::kTl2:
                return static_cast<Tl2Adapter*>(ptr_)->collected_stats();
            case EngineKind::kVstm:
                return static_cast<VstmAdapter*>(ptr_)->collected_stats();
            case EngineKind::kGlock:
                return static_cast<GlobalLockAdapter*>(ptr_)
                    ->collected_stats();
        }
        __builtin_unreachable();
    }

    // Concrete-adapter escape hatch; see get_if<>() below.
    void* raw() const noexcept { return ptr_; }

    template <typename A>
    static Engine make_owning(EngineKind k, std::string name,
                              std::string spec, std::shared_ptr<A> obj) {
        Engine e;
        e.kind_ = k;
        e.name_ = std::move(name);
        e.spec_ = std::move(spec);
        e.ptr_ = obj.get();
        e.owner_ = std::move(obj);
        return e;
    }

 private:
    EngineKind kind_ = EngineKind::kLsa;
    std::string name_;
    std::string spec_;
    std::shared_ptr<void> owner_;
    void* ptr_ = nullptr;
};

namespace detail_facade {

template <typename A>
struct KindOf;
template <>
struct KindOf<LsaAdapter> {
    static constexpr EngineKind value = EngineKind::kLsa;
};
template <>
struct KindOf<OrecAdapter> {
    static constexpr EngineKind value = EngineKind::kOrec;
};
template <>
struct KindOf<Tl2Adapter> {
    static constexpr EngineKind value = EngineKind::kTl2;
};
template <>
struct KindOf<VstmAdapter> {
    static constexpr EngineKind value = EngineKind::kVstm;
};
template <>
struct KindOf<GlobalLockAdapter> {
    static constexpr EngineKind value = EngineKind::kGlock;
};

}  // namespace detail_facade

// Telemetry escape hatch: the concrete adapter if (and only if) the
// engine wraps that type.
template <typename A>
A* get_if(const Engine& e) {
    return e.kind() == detail_facade::KindOf<A>::value
               ? static_cast<A*>(e.raw())
               : nullptr;
}

// Bridge to code templated over the adapter concept: calls f with the
// CONCRETE adapter reference. Every branch must yield the same type (use
// a generic lambda that normalizes its result).
template <typename F>
decltype(auto) visit(const Engine& e, F&& f) {
    switch (e.kind()) {
        case EngineKind::kLsa:
            return f(*static_cast<LsaAdapter*>(e.raw()));
        case EngineKind::kOrec:
            return f(*static_cast<OrecAdapter*>(e.raw()));
        case EngineKind::kTl2:
            return f(*static_cast<Tl2Adapter*>(e.raw()));
        case EngineKind::kVstm:
            return f(*static_cast<VstmAdapter*>(e.raw()));
        case EngineKind::kGlock:
            return f(*static_cast<GlobalLockAdapter*>(e.raw()));
    }
    __builtin_unreachable();
}

// ---- the string-keyed registry ---------------------------------------

struct KnownEngine {
    const char* name;
    const char* example;
    const char* description;
};

inline const std::vector<KnownEngine>& known_engines() {
    static const std::vector<KnownEngine> k = {
        {"lsa", "lsa:versions=8,cm=polite,irrev=64",
         "the paper's LSA-RT: multi-version, commit helping, pluggable CM"},
        {"orec", "orec:bits=16,writeback=batched,irrev=64",
         "LSA over a global orec table; raw-memory words, single-version"},
        {"tl2", "tl2:spin=256", "global-version-clock TL2 baseline"},
        {"vstm", "vstm:heuristic=on",
         "validation-based STM baseline (no time base)"},
        {"glock", "glock", "single global lock baseline"},
    };
    return k;
}

// One-line help text for --engine flags.
inline std::string engine_spec_help() {
    std::string s = "engine spec(s): ";
    for (const auto& k : known_engines()) {
        s += k.example;
        s += "; ";
    }
    s += "common keys spin=,retries=,irrev=,filter=,stripes=,ext=,";
    s += "stallspin=,stallts=; comma-separated for multi-series drivers";
    return s;
}

namespace detail_facade {

inline bool parse_onoff(const std::string& raw, const std::string& key,
                        const std::string& engine) {
    const std::string v = tb::to_lower(raw);
    if (v == "on" || v == "true" || v == "1" || v == "yes") return true;
    if (v == "off" || v == "false" || v == "0" || v == "no") return false;
    throw std::invalid_argument("chronostm: engine '" + engine + "' key '" +
                                key + "' wants on/off, got '" + raw + "'");
}

inline bool flag(const tb::TimeBaseSpec& s, const char* key, bool def) {
    if (!s.has(key)) return def;
    return parse_onoff(s.str(key, ""), key, s.name);
}

inline void apply_common(const tb::TimeBaseSpec& s, CommonConfig& c) {
    c.read_extension = flag(s, "ext", c.read_extension);
    c.lock_spin = static_cast<unsigned>(s.u64("spin", c.lock_spin));
    c.stall_spin_factor =
        static_cast<unsigned>(s.u64("stallspin", c.stall_spin_factor));
    c.stall_ts_budget = s.u64("stallts", c.stall_ts_budget);
    c.max_retries = static_cast<unsigned>(s.u64("retries", c.max_retries));
    c.irrevocable_threshold =
        static_cast<unsigned>(s.u64("irrev", c.irrevocable_threshold));
    c.epoch_filter = flag(s, "filter", c.epoch_filter);
    c.filter_stripes =
        static_cast<unsigned>(s.u64("stripes", c.filter_stripes));
}

constexpr const char* kCommonKeys[] = {"ext",     "spin",  "stallspin",
                                       "stallts", "retries", "irrev",
                                       "filter",  "stripes"};

inline void require_engine_keys(const tb::TimeBaseSpec& s,
                                std::initializer_list<const char*> extra) {
    for (const auto& kv : s.params) {
        bool ok = false;
        for (const char* k : kCommonKeys) ok = ok || kv.first == k;
        for (const char* k : extra) ok = ok || kv.first == k;
        if (!ok)
            throw std::invalid_argument("chronostm: unknown key '" +
                                        kv.first + "' for engine '" + s.name +
                                        "'");
    }
}

}  // namespace detail_facade

// Same shape as tb::parse_spec / tb::split_specs; re-exported so engine
// flag plumbing does not reach into the tb namespace.
inline tb::TimeBaseSpec parse_engine_spec(const std::string& spec) {
    return tb::parse_spec(spec);
}
inline std::vector<std::string> split_engine_specs(const std::string& csv) {
    return tb::split_specs(csv);
}

// Constructs an OWNING Engine from a spec string. The time base feeds the
// lsa/orec engines; baselines ignore it. Throws std::invalid_argument on
// unknown names/keys so drivers fail loudly.
inline Engine make(const std::string& spec_str, tb::TimeBase tbase) {
    const tb::TimeBaseSpec spec = parse_engine_spec(spec_str);

    if (spec.name == "lsa") {
        detail_facade::require_engine_keys(spec, {"versions", "cm", "help"});
        StmConfig cfg;
        detail_facade::apply_common(spec, cfg);
        cfg.max_versions = static_cast<unsigned>(
            spec.u64("versions", cfg.max_versions));
        cfg.contention_manager = tb::to_lower(
            spec.str("cm", cfg.contention_manager));
        cfg.help_committers =
            detail_facade::flag(spec, "help", cfg.help_committers);
        return Engine::make_owning(
            EngineKind::kLsa, "lsa", spec_str,
            std::make_shared<LsaAdapter>(std::move(tbase), std::move(cfg)));
    }
    if (spec.name == "orec") {
        detail_facade::require_engine_keys(spec, {"bits", "writeback"});
        OrecConfig cfg;
        detail_facade::apply_common(spec, cfg);
        cfg.table_bits =
            static_cast<unsigned>(spec.u64("bits", cfg.table_bits));
        if (spec.has("writeback")) {
            const std::string wb = tb::to_lower(spec.str("writeback", ""));
            if (wb == "batched")
                cfg.batched_writeback = true;
            else if (wb == "eager")
                cfg.batched_writeback = false;
            else
                cfg.batched_writeback = detail_facade::parse_onoff(
                    wb, "writeback", spec.name);
        }
        return Engine::make_owning(
            EngineKind::kOrec, "orec", spec_str,
            std::make_shared<OrecAdapter>(std::move(tbase), cfg));
    }
    if (spec.name == "tl2") {
        detail_facade::require_engine_keys(spec, {});
        Tl2Config cfg;
        cfg.lock_spin = static_cast<unsigned>(spec.u64("spin", cfg.lock_spin));
        cfg.max_retries =
            static_cast<unsigned>(spec.u64("retries", cfg.max_retries));
        return Engine::make_owning(EngineKind::kTl2, "tl2", spec_str,
                                   std::make_shared<Tl2Adapter>(cfg));
    }
    if (spec.name == "vstm") {
        detail_facade::require_engine_keys(spec, {"heuristic"});
        VstmConfig cfg;
        cfg.lock_spin = static_cast<unsigned>(spec.u64("spin", cfg.lock_spin));
        cfg.max_retries =
            static_cast<unsigned>(spec.u64("retries", cfg.max_retries));
        cfg.commit_counter_heuristic = detail_facade::flag(
            spec, "heuristic", cfg.commit_counter_heuristic);
        return Engine::make_owning(EngineKind::kVstm, "vstm", spec_str,
                                   std::make_shared<VstmAdapter>(cfg));
    }
    if (spec.name == "glock" || spec.name == "globallock" ||
        spec.name == "lock") {
        detail_facade::require_engine_keys(spec, {});
        return Engine::make_owning(EngineKind::kGlock, "glock", spec_str,
                                   std::make_shared<GlobalLockAdapter>());
    }

    std::string msg = "chronostm: unknown engine '" + spec.name +
                      "' (spec '" + spec_str + "'); known engines:";
    for (const auto& k : known_engines()) {
        msg += ' ';
        msg += k.name;
    }
    throw std::invalid_argument(msg);
}

// Baselines need no time base; lsa/orec default to the exact shared
// counter when the caller does not provide one.
inline Engine make(const std::string& spec_str) {
    const tb::TimeBaseSpec spec = parse_engine_spec(spec_str);
    if (spec.name == "lsa" || spec.name == "orec")
        return make(spec_str, tb::make("shared"));
    return make(spec_str, tb::TimeBase{});
}

}  // namespace stm
}  // namespace chronostm
