#pragma once
// Transactional allocation: tx_alloc / tx_free with commit/abort-deferred
// effects, backed by epoch-based reclamation (util/epochs.hpp).
//
// Semantics (the tl2 tmalloc shape):
//   tx_alloc -- memory is usable immediately (the transaction initializes
//               it through buffered writes), but ownership transfers to
//               the structure only at commit. An aborted attempt frees its
//               allocations right away: nothing was published, so no other
//               thread can hold the pointer.
//   tx_free  -- deferred entirely to commit. On abort it is forgotten. On
//               commit the node is NOT freed but *retired* into the epoch
//               domain: concurrent doomed readers and multi-version
//               history entries may still reach it until every pin from
//               its epoch has drained.
//
// Attempt boundaries: the engines re-invoke the transaction functor on
// every retry, so HeapCtx::begin_attempt() -- called at the top of each
// functor invocation by the container run wrapper -- rolls the *previous*
// attempt's allocations back before the new attempt starts logging.
// commit()/abort() settle the final attempt.
//
// One HeapCtx per thread, one TxHeap per container (or shared). The pin
// window (PinGuard from pin()) must cover the whole run() call so doomed
// attempts stay protected.

#include <chronostm/util/epochs.hpp>

#include <cstddef>
#include <memory>
#include <new>
#include <vector>

namespace chronostm {
namespace stm {

class TxHeap;

class HeapCtx {
 public:
    HeapCtx() = default;

    // Usable immediately; reverted if this attempt aborts.
    void* tx_alloc(std::size_t bytes) {
        void* p = ::operator new(bytes);
        allocs_.push_back(p);
        return p;
    }

    // Takes effect (as an epoch retire) only if this attempt commits. The
    // optional deleter runs at reclamation time (slot destructors over
    // node layouts only the container understands); its ctx must outlive
    // the epoch domain's limbo, i.e. the container itself.
    void tx_free(void* p, eb::Deleter del = nullptr, void* ctx = nullptr) {
        if (p != nullptr) frees_.push_back(Pending{p, del, ctx});
    }

    // Top of every transaction-functor invocation: a pending log here
    // means the previous attempt aborted inside the engine's retry loop --
    // undo its allocations (never published: engines buffer writes, so an
    // aborted attempt leaked no pointer into shared memory) and forget its
    // frees.
    void begin_attempt() noexcept {
        rollback();
    }

    // After the engine's run() returned: the last attempt committed. Its
    // allocations now belong to the data structure; its frees retire.
    void commit() noexcept {
        allocs_.clear();
        for (const Pending& f : frees_)
            part_->retire(f.ptr, f.del != nullptr ? f.del : &default_reap,
                          f.ctx);
        frees_.clear();
    }

    // run() threw (retry exhaustion, user exception): settle like an
    // abort. Aborted allocations are released raw -- slots on a private
    // node own nothing (LSA history rings allocate only on committed
    // writes, and no write targeting a private node can have committed).
    void rollback() noexcept {
        for (void* p : allocs_) ::operator delete(p);
        allocs_.clear();
        frees_.clear();
    }

    // Pin for the duration of one run() call (all attempts). Readers that
    // never allocate still need this: the pin is what keeps nodes freed
    // under them alive.
    eb::PinGuard pin() noexcept { return eb::PinGuard(*part_); }

    eb::Participant& participant() noexcept { return *part_; }
    bool attached() const noexcept { return part_ != nullptr; }

 private:
    friend class TxHeap;

    struct Pending {
        void* ptr;
        eb::Deleter del;
        void* ctx;
    };

    static void default_reap(void* p, void*) noexcept { ::operator delete(p); }

    std::shared_ptr<eb::Participant> part_;
    std::vector<void*> allocs_;
    std::vector<Pending> frees_;
};

// Owns the epoch domain. Must outlive every HeapCtx it attached.
class TxHeap {
 public:
    HeapCtx make_ctx() {
        HeapCtx c;
        c.part_ = domain_.register_participant();
        return c;
    }

    void attach(HeapCtx& c) { c.part_ = domain_.register_participant(); }

    eb::EpochDomain& domain() noexcept { return domain_; }
    eb::DomainStats stats() const { return domain_.stats(); }

    // Test/teardown helper: push the epoch until limbo drains (no thread
    // may be pinned). Bounded so a stuck pin fails loudly via the caller's
    // assertion on stats().limbo rather than hanging.
    void drain(unsigned rounds = 8) {
        for (unsigned i = 0; i < rounds; ++i) domain_.try_advance();
    }

 private:
    eb::EpochDomain domain_;
};

}  // namespace stm
}  // namespace chronostm
