// Shared word-STM machinery for the optimistic baselines (TL2 and the
// validation STM): the versioned-lock variable types, the seqlock value
// read, the buffered write set, and the address-ordered lock /
// validate / unlock commit building blocks. Each engine keeps only its
// version-management logic (TL2's global version clock, VSTM's
// validation) and its publish word computation.

#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include <chronostm/core/lsa_stm.hpp>

namespace chronostm {
namespace stm {
namespace wstm {

template <typename Derived>
class TxnBase;

// Versioned lock word: (version << 1) | lock_bit. Unlike the LSA core the
// locked word keeps the version (these engines have no descriptors).
class VarBase {
 public:
    VarBase() = default;
    VarBase(const VarBase&) = delete;
    VarBase& operator=(const VarBase&) = delete;
    virtual ~VarBase() = default;

 protected:
    template <typename D>
    friend class TxnBase;
    std::atomic<std::uint64_t> vlock_{0};
};

template <typename T>
class Var : public VarBase {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Var<T> requires a trivially copyable T (seqlock reads)");

 public:
    explicit Var(T initial) : value_(initial) {}

    T unsafe_peek() const { return value_.load(std::memory_order_acquire); }

 private:
    template <typename D>
    friend class TxnBase;
    std::atomic<T> value_;
};

// CRTP base owning the read/write sets; derived transactions compose
// read() and commit() from the protected helpers below.
template <typename Derived>
class TxnBase {
 public:
    template <typename T>
    void write(Var<T>& var, T v) {
        if (auto* rec = find_write(&var)) {
            static_cast<WriteRec<T>*>(rec)->value = std::move(v);
            return;
        }
        writes_.push_back(std::make_unique<WriteRec<T>>(&var, std::move(v)));
    }

    [[noreturn]] void abort() { throw detail::AbortTx{}; }

 protected:
    struct ReadEntry {
        VarBase* var;
        std::uint64_t word;
    };

    struct WriteRecBase {
        VarBase* var;
        std::uint64_t locked_word = 0;
        explicit WriteRecBase(VarBase* v) : var(v) {}
        virtual ~WriteRecBase() = default;
        virtual void publish(std::uint64_t new_word) = 0;
    };

    template <typename T>
    struct WriteRec : WriteRecBase {
        Var<T>* tvar;
        T value;
        WriteRec(Var<T>* v, T val)
            : WriteRecBase(v), tvar(v), value(std::move(val)) {}
        // Store the buffered value and swing the lock word to `new_word`
        // (which both sets the new version and releases the lock). The
        // release fence keeps the earlier lock store visible before the
        // data store -- the writer half of the seqlock.
        void publish(std::uint64_t new_word) override {
            std::atomic_thread_fence(std::memory_order_release);
            tvar->value_.store(value, std::memory_order_relaxed);
            tvar->vlock_.store(new_word, std::memory_order_release);
        }
    };

    std::uint64_t load_word(VarBase* var) const {
        return var->vlock_.load(std::memory_order_acquire);
    }

    // Reader half of the seqlock: value read under unlocked word `w1`;
    // false = raced with a commit, caller retries.
    template <typename T>
    bool read_value(Var<T>& var, std::uint64_t w1, T& out) {
        out = var.value_.load(std::memory_order_acquire);
        std::atomic_thread_fence(std::memory_order_acquire);
        return var.vlock_.load(std::memory_order_acquire) == w1;
    }

    WriteRecBase* find_write(VarBase* var) {
        for (auto& rec : writes_)
            if (rec->var == var) return rec.get();
        return nullptr;
    }

    // Lock the write set in address order with a bounded spin per var;
    // false = budget exceeded (acquired prefix already released).
    bool lock_write_set(unsigned lock_spin) {
        std::sort(writes_.begin(), writes_.end(),
                  [](const auto& a, const auto& b) { return a->var < b->var; });
        for (std::size_t locked = 0; locked < writes_.size(); ++locked) {
            auto& rec = writes_[locked];
            std::uint64_t w = rec->var->vlock_.load(std::memory_order_relaxed);
            unsigned spins = 0;
            for (;;) {
                if (!(w & 1u) &&
                    rec->var->vlock_.compare_exchange_weak(
                        w, w | 1u, std::memory_order_acq_rel,
                        std::memory_order_relaxed)) {
                    rec->locked_word = w;
                    break;
                }
                if (++spins > lock_spin) {
                    unlock_prefix(locked);
                    return false;
                }
                cpu_relax();
                w = rec->var->vlock_.load(std::memory_order_relaxed);
            }
        }
        return true;
    }

    // Every read must be unchanged, or changed only by our own lock.
    bool validate_reads() {
        for (const auto& e : reads_) {
            const std::uint64_t cur =
                e.var->vlock_.load(std::memory_order_acquire);
            if (cur == e.word) continue;
            if (cur == (e.word | 1u) && find_write(e.var) != nullptr)
                continue;
            return false;
        }
        return true;
    }

    void unlock_all() { unlock_prefix(writes_.size()); }

    std::vector<ReadEntry> reads_;
    std::vector<std::unique_ptr<WriteRecBase>> writes_;

 private:
    void unlock_prefix(std::size_t n) {
        for (std::size_t i = 0; i < n; ++i)
            writes_[i]->var->vlock_.store(writes_[i]->locked_word,
                                          std::memory_order_release);
    }
};

}  // namespace wstm
}  // namespace stm
}  // namespace chronostm
