// TL2 baseline (paper Section 1.2): single-version, word-based STM with
// one global version clock. Reads validate "version <= rv and unlocked";
// commit locks the write set in address order, increments the global clock
// (the shared cache line every committer serializes on -- exactly the
// bottleneck the paper's scalable time bases remove), validates the read
// set, and publishes. No version history: a reader whose snapshot predates
// a concurrent commit aborts and restarts with a fresh read version.

#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

#include <chronostm/core/lsa_stm.hpp>
#include <chronostm/stm/baselines/adapter_base.hpp>
#include <chronostm/stm/baselines/word_stm.hpp>

namespace chronostm {
namespace stm {

class Tl2Adapter;

struct Tl2Config {
    unsigned lock_spin = 256;
    unsigned max_retries = 1'000'000;
};

namespace tl2 {

class Txn : public wstm::TxnBase<Txn> {
 public:
    template <typename T>
    T read(wstm::Var<T>& var) {
        if (auto* rec = find_write(&var))
            return static_cast<WriteRec<T>*>(rec)->value;
        unsigned spins = 0;
        for (;;) {
            const std::uint64_t w1 = load_word(&var);
            if (w1 & 1u) {
                if (++spins > cfg_->lock_spin) abort();
                cpu_relax();
                continue;
            }
            if ((w1 >> 1) > rv_) abort();  // too new for our read version
            T v;
            if (!read_value(var, w1, v)) continue;
            reads_.push_back(ReadEntry{&var, w1});
            return v;
        }
    }

 private:
    friend class chronostm::stm::Tl2Adapter;
    template <typename D>
    friend class chronostm::stm::BaselineAdapter;

    Txn(std::atomic<std::uint64_t>* clock, const Tl2Config* cfg)
        : clock_(clock), cfg_(cfg) {
        rv_ = clock_->load(std::memory_order_acquire);
    }

    bool commit() {
        if (writes_.empty()) return true;  // reads validated against rv
        if (!lock_write_set(cfg_->lock_spin)) return false;

        // The single shared fetch_add every TL2 commit pays.
        const std::uint64_t wv =
            clock_->fetch_add(1, std::memory_order_acq_rel) + 1;

        // TL2 optimization: wv == rv+1 means nothing committed since we
        // started, so the read set cannot have changed.
        if (wv != rv_ + 1 && !validate_reads()) {
            unlock_all();
            return false;
        }
        for (auto& rec : writes_) rec->publish(wv << 1);
        return true;
    }

    std::atomic<std::uint64_t>* clock_;
    const Tl2Config* cfg_;
    std::uint64_t rv_ = 0;
};

}  // namespace tl2

class Tl2Adapter : public BaselineAdapter<Tl2Adapter> {
 public:
    template <typename T>
    using Var = wstm::Var<T>;
    using Txn = tl2::Txn;

    static constexpr const char* kEngineName = "TL2";

    explicit Tl2Adapter(Tl2Config cfg = Tl2Config{}) : cfg_(cfg) {}
    Tl2Adapter(const Tl2Adapter&) = delete;
    Tl2Adapter& operator=(const Tl2Adapter&) = delete;

    Txn txn_begin(Context&) { return Txn(&clock_, &cfg_); }
    unsigned max_retries() const { return cfg_.max_retries; }

 private:
    Tl2Config cfg_;
    alignas(64) std::atomic<std::uint64_t> clock_{0};
};

}  // namespace stm
}  // namespace chronostm
