// Validation-based STM baseline (paper Sections 1.1-1.2): no time base at
// all. Consistency comes from revalidating the entire read set every time
// a new object is opened -- O(reads-so-far) per open, O(n^2) per
// transaction, the cost time-based STMs exist to avoid. The optional
// commit-counter heuristic (VstmConfig::commit_counter_heuristic) skips
// the per-open validation when no commit has been in flight since the
// last validation, recovering most of the cost in read-dominated phases
// while keeping the quadratic worst case under concurrent updates.

#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

#include <chronostm/core/lsa_stm.hpp>
#include <chronostm/stm/baselines/adapter_base.hpp>
#include <chronostm/stm/baselines/word_stm.hpp>

namespace chronostm {
namespace stm {

class VstmAdapter;

struct VstmConfig {
    // Skip per-open revalidation while no commit has started or finished
    // since the last validation (nothing can have invalidated the read
    // set).
    bool commit_counter_heuristic = true;
    unsigned lock_spin = 256;
    unsigned max_retries = 1'000'000;
};

namespace vstm {

// The heuristic needs seqlock-style announce/complete semantics: a single
// counter bumped either before or after write-back has a TOCTOU hole (a
// reader can absorb a pre-publish bump, then skip validation against that
// very commit's writes once they land). With a counter pair --
// `started` bumped before any lock is taken, `finished` bumped when the
// attempt is over -- a reader may skip only when both counters are
// unchanged since its last validation AND equal. The three conditions
// are jointly unsatisfiable whenever some commit published between the
// reader's last validation and its current check, so skipping is safe:
//  * commit announced after the last validation: observing any of its
//    writes (through the read seqlock's acquire) makes `started` visibly
//    larger than the remembered value;
//  * commit in flight at the last validation: the remembered values
//    satisfy started > finished, so "unchanged" and "equal" contradict.
struct CommitEpoch {
    alignas(64) std::atomic<std::uint64_t> started{0};
    alignas(64) std::atomic<std::uint64_t> finished{0};
};

class Txn : public wstm::TxnBase<Txn> {
 public:
    template <typename T>
    T read(wstm::Var<T>& var) {
        if (auto* rec = find_write(&var))
            return static_cast<WriteRec<T>*>(rec)->value;
        unsigned spins = 0;
        for (;;) {
            const std::uint64_t w1 = load_word(&var);
            if (w1 & 1u) {
                if (++spins > cfg_->lock_spin) abort();
                cpu_relax();
                continue;
            }
            T v;
            if (!read_value(var, w1, v)) continue;
            reads_.push_back(ReadEntry{&var, w1});
            // The defining cost of a validation-based STM: opening the
            // n-th object revalidates the n-1 already open.
            validate_on_open();
            return v;
        }
    }

    std::uint64_t validated_reads() const { return validated_reads_; }

 private:
    friend class chronostm::stm::VstmAdapter;
    template <typename D>
    friend class chronostm::stm::BaselineAdapter;

    Txn(CommitEpoch* epoch, const VstmConfig* cfg)
        : epoch_(epoch), cfg_(cfg) {
        last_started_ = epoch_->started.load(std::memory_order_acquire);
        last_finished_ = epoch_->finished.load(std::memory_order_acquire);
    }

    // Full read-set validation, O(reads); skipped per the CommitEpoch
    // contract above when the heuristic is on.
    void validate_on_open() {
        const std::uint64_t s =
            epoch_->started.load(std::memory_order_acquire);
        const std::uint64_t f =
            epoch_->finished.load(std::memory_order_acquire);
        if (cfg_->commit_counter_heuristic && s == last_started_ &&
            f == last_finished_ && f == s)
            return;
        for (const auto& e : reads_) {
            if (load_word(e.var) != e.word) abort();
        }
        validated_reads_ += reads_.size();
        last_started_ = s;
        last_finished_ = f;
    }

    bool commit() {
        if (writes_.empty()) {
            // The read set was revalidated at every open; the snapshot is
            // consistent as of the last validation.
            return true;
        }

        // Announce before taking any lock; complete on every exit path so
        // the counters re-converge and readers can skip again.
        epoch_->started.fetch_add(1, std::memory_order_acq_rel);
        bool ok = lock_write_set(cfg_->lock_spin);
        if (ok) {
            ok = validate_reads();
            if (ok) {
                for (auto& rec : writes_)
                    // Bump the write serial; the store also releases the
                    // lock.
                    rec->publish(((rec->locked_word >> 1) + 1) << 1);
            } else {
                unlock_all();
            }
        }
        epoch_->finished.fetch_add(1, std::memory_order_release);
        return ok;
    }

    CommitEpoch* epoch_;
    const VstmConfig* cfg_;
    std::uint64_t last_started_ = 0;
    std::uint64_t last_finished_ = 0;
    std::uint64_t validated_reads_ = 0;
};

}  // namespace vstm

class VstmAdapter : public BaselineAdapter<VstmAdapter> {
 public:
    template <typename T>
    using Var = wstm::Var<T>;
    using Txn = vstm::Txn;

    static constexpr const char* kEngineName = "VSTM";

    explicit VstmAdapter(VstmConfig cfg = VstmConfig{}) : cfg_(cfg) {}
    VstmAdapter(const VstmAdapter&) = delete;
    VstmAdapter& operator=(const VstmAdapter&) = delete;

    Txn txn_begin(Context&) { return Txn(&epoch_, &cfg_); }
    unsigned max_retries() const { return cfg_.max_retries; }

    const VstmConfig& config() const { return cfg_; }

 private:
    VstmConfig cfg_;
    vstm::CommitEpoch epoch_;
};

}  // namespace stm
}  // namespace chronostm
