// Single-global-lock baseline: every "transaction" runs under one mutex.
// Zero instrumentation cost per access, zero aborts, zero scalability --
// the lower bound every STM must beat once there is more than one thread,
// and an upper bound on single-thread throughput.

#pragma once

#include <mutex>
#include <thread>
#include <type_traits>

#include <chronostm/core/lsa_stm.hpp>
#include <chronostm/stm/baselines/adapter_base.hpp>

namespace chronostm {
namespace stm {

class GlobalLockAdapter;

namespace glock {

class Txn;

template <typename T>
class Var {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Var<T> mirrors the transactional-var contract");

 public:
    explicit Var(T initial) : value_(initial) {}
    Var(const Var&) = delete;
    Var& operator=(const Var&) = delete;

    // Quiesced-state check only, like TVar::unsafe_peek.
    T unsafe_peek() const { return value_; }

 private:
    friend class Txn;
    T value_;
};

// Accesses run under the adapter's mutex (held by the Txn); reads and
// writes are direct.
class Txn {
 public:
    template <typename T>
    T read(Var<T>& var) {
        return var.value_;
    }

    template <typename T>
    void write(Var<T>& var, T v) {
        var.value_ = std::move(v);
    }

    [[noreturn]] void abort() { throw detail::AbortTx{}; }

 private:
    friend class chronostm::stm::GlobalLockAdapter;
    explicit Txn(std::mutex& big_lock) : lock_(big_lock) {}
    std::unique_lock<std::mutex> lock_;
};

}  // namespace glock

// Not a BaselineAdapter: there is no optimistic attempt/commit cycle to
// retry, the mutex is held around the whole user function. Only the stats
// registry is shared.
class GlobalLockAdapter : public StatsRegistry {
 public:
    template <typename T>
    using Var = glock::Var<T>;
    using Txn = glock::Txn;

    GlobalLockAdapter() = default;
    GlobalLockAdapter(const GlobalLockAdapter&) = delete;
    GlobalLockAdapter& operator=(const GlobalLockAdapter&) = delete;

    // "Begin" is taking the lock, "commit" is releasing it: the explicit
    // facade path works like every other engine's.
    Txn txn_begin(Context&) { return Txn(big_lock_); }

    bool txn_commit(Context& ctx, Txn& tx) {
        tx.lock_.unlock();
        count_commit(ctx);
        return true;
    }

    template <typename F>
    auto run(Context& ctx, F&& f) {
        using R = std::invoke_result_t<F&, Txn&>;
        for (unsigned attempt = 0;; ++attempt) {
            try {
                Txn tx(big_lock_);
                if constexpr (std::is_void_v<R>) {
                    f(tx);
                    count_commit(ctx);
                    return;
                } else {
                    R r = f(tx);
                    count_commit(ctx);
                    return r;
                }
            } catch (const detail::AbortTx&) {
                // Only user-directed aborts can land here; retry outside
                // the lock so other threads can make progress meanwhile.
                count_abort(ctx);
            }
            // Same loud failure as the optimistic engines instead of
            // wedging on a condition that never comes true.
            if (attempt + 1 >= kMaxRetries)
                throw std::runtime_error(
                    "chronostm: GlobalLock transaction exceeded retry bound");
            std::this_thread::yield();
        }
    }

 private:
    static constexpr unsigned kMaxRetries = 1'000'000;
    std::mutex big_lock_;
};

}  // namespace stm
}  // namespace chronostm
