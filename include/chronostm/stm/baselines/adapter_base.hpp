// Shared facade plumbing for the optimistic comparison baselines (TL2 and
// the validation STM): the per-context stats registry, commit/abort
// accounting, the bounded retry loop with backoff, and stats aggregation
// live here once. A derived adapter provides
//
//   using Txn = ...;                       // with a private bool commit()
//   Txn txn_begin(Context&);               // fresh attempt
//   unsigned max_retries() const;
//   static constexpr const char* kEngineName;
//
// and befriends BaselineAdapter so the base can drive Txn::commit.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include <chronostm/core/lsa_stm.hpp>

namespace chronostm {
namespace stm {

// Per-context stats blocks, their registry, and aggregation -- shared by
// every baseline adapter, optimistic or not.
class StatsRegistry {
 public:
    class Context {
     public:
        TxStats stats() const {
            return TxStats(block_->commits.load(std::memory_order_relaxed),
                           block_->aborts.load(std::memory_order_relaxed));
        }

     private:
        friend class StatsRegistry;
        explicit Context(std::shared_ptr<detail::StatsBlock> block)
            : block_(std::move(block)) {}
        std::shared_ptr<detail::StatsBlock> block_;
    };

    Context make_context() {
        auto block = std::make_shared<detail::StatsBlock>();
        std::lock_guard<std::mutex> g(mu_);
        blocks_.push_back(block);
        return Context(std::move(block));
    }

    TxStats collected_stats() const {
        std::uint64_t c = 0, a = 0;
        std::lock_guard<std::mutex> g(mu_);
        for (const auto& b : blocks_) {
            c += b->commits.load(std::memory_order_relaxed);
            a += b->aborts.load(std::memory_order_relaxed);
        }
        return TxStats(c, a);
    }

 protected:
    StatsRegistry() = default;
    ~StatsRegistry() = default;

    static detail::StatsBlock* block(Context& ctx) {
        return ctx.block_.get();
    }
    static void count_commit(Context& ctx) {
        block(ctx)->commits.fetch_add(1, std::memory_order_relaxed);
    }
    static void count_abort(Context& ctx) {
        block(ctx)->aborts.fetch_add(1, std::memory_order_relaxed);
    }

 private:
    mutable std::mutex mu_;
    std::vector<std::shared_ptr<detail::StatsBlock>> blocks_;
};

template <typename Derived>
class BaselineAdapter : public StatsRegistry {
 public:
    template <typename TxnT>
    bool txn_commit(Context& ctx, TxnT& tx) {
        if (tx.commit()) {
            count_commit(ctx);
            return true;
        }
        count_abort(ctx);
        return false;
    }

    template <typename F>
    auto run(Context& ctx, F&& f) {
        using TxnT = typename Derived::Txn;
        using R = std::invoke_result_t<F&, TxnT&>;
        for (unsigned attempt = 0;; ++attempt) {
            TxnT tx = self().txn_begin(ctx);
            try {
                if constexpr (std::is_void_v<R>) {
                    f(tx);
                    if (txn_commit(ctx, tx)) return;
                } else {
                    R r = f(tx);
                    if (txn_commit(ctx, tx)) return r;
                }
            } catch (const detail::AbortTx&) {
                count_abort(ctx);
            }
            if (attempt + 1 >= self().max_retries())
                throw std::runtime_error(
                    std::string("chronostm: ") + Derived::kEngineName +
                    " transaction exceeded retry bound");
            chronostm::backoff(attempt,
                               reinterpret_cast<std::uintptr_t>(block(ctx)));
        }
    }

 protected:
    BaselineAdapter() = default;
    ~BaselineAdapter() = default;

 private:
    Derived& self() { return static_cast<Derived&>(*this); }
    const Derived& self() const {
        return static_cast<const Derived&>(*this);
    }
};

}  // namespace stm
}  // namespace chronostm
