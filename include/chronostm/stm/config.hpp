// Shared engine knobs, hoisted out of StmConfig/OrecConfig (which both
// inherit from CommonConfig, so the old field spellings -- cfg.epoch_filter,
// cfg.irrevocable_threshold, ... -- keep compiling everywhere). The engine
// registry (stm/facade.hpp) parses these from the engine spec string:
//
//   stm::make("orec:bits=14,irrev=32,spin=128,filter=off")
//
// Keys map one-to-one onto fields below (plus each engine's private keys);
// the grammar is the time-base facade's: case-insensitive, later key wins,
// unknown keys rejected loudly.
//
// No core include may depend on anything heavier than this header: both
// core engines include it, so it stays dependency-free.

#pragma once

#include <cstdint>

namespace chronostm {
namespace stm {

struct CommonConfig {
    // Lazy snapshot extension on reads that find a too-new version.
    bool read_extension = true;
    // Spins on a foreign lock before the contention machinery gives up
    // (LSA: hands the conflict to the contention manager; orec: starts
    // stall detection).
    unsigned lock_spin = 256;
    // Stalled-committer tolerance (orec engine; the LSA engine derives its
    // wait budget from lock_spin and the contention manager): once
    // lock_spin polite spins are burnt the waiter keeps spinning until
    // EITHER the attempt budget (stall_spin_factor * lock_spin total
    // spins) runs out OR the time base advances past an anchor by
    // stall_ts_budget stamps while the lock never moves.
    unsigned stall_spin_factor = 64;
    std::uint64_t stall_ts_budget = 64;
    // Bounded retry: run() throws after this many consecutive aborts.
    unsigned max_retries = 1'000'000;
    // Graceful-degradation ladder, final rung: consecutive-abort count at
    // which run() escalates the transaction to irrevocable serial mode.
    // 0 disables escalation (retry exhaustion then throws RetryExhausted).
    unsigned irrevocable_threshold = 64;
    // Commit-epoch validation filter: writers bump epoch words while
    // holding their write locks; readers whose epoch snapshot is unchanged
    // skip the O(R) read-set walk in try_extend() and at commit. Off
    // forces the full walk every time (bench twin/debugging).
    bool epoch_filter = true;
    // Number of cache-line-padded epoch stripes the filter is sharded
    // over. Writers bump only the stripes their write set hashes into and
    // readers compare only the stripes their read set touched, so a
    // writer in an unrelated address range no longer kills the fast hit.
    // Rounded up to a power of two, clamped to [1, 64] (the per-txn
    // signature is one 64-bit bitmap); 1 reproduces the single-word
    // filter of the pre-striping engines.
    unsigned filter_stripes = 64;
};

}  // namespace stm
}  // namespace chronostm
