// Tiny statistics helpers shared by drivers and tests. Medians are the
// robust summary of choice for timing series: a descheduled thread
// mid-measurement produces a huge, honest-but-useless sample that a mean
// would absorb and a median ignores.

#pragma once

#include <algorithm>
#include <vector>

namespace chronostm {

// Median by middle element (upper middle for even sizes); 0 when empty.
// Takes a copy: callers keep their series in order.
inline double median(std::vector<double> v) {
    if (v.empty()) return 0.0;
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

}  // namespace chronostm
