// Shared main() for the google-benchmark drivers so they speak the same
// --json=<path>, --timebase=<spec>, and --engine=<name> dialect as the
// table drivers: --json is rewritten into google-benchmark's
// --benchmark_out=<path> --benchmark_out_format=json, while --timebase
// and --engine (consumed separately via extract_timebase_flag /
// extract_engine_flag, before RegisterBenchmark) are dropped before
// Initialize sees the command line. Everything else passes through
// untouched.

#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

namespace chronostm {

// Reads the uniform --timebase flag without mutating argv; the driver
// resolves the value through the tb registry when registering dynamic
// rows. gbench_main_with_json drops the flag before google-benchmark
// parses the rest.
inline std::string extract_timebase_flag(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a.rfind("--timebase=", 0) == 0) return a.substr(11);
        if (a == "--timebase" && i + 1 < argc) return argv[i + 1];
    }
    return std::string();
}

// Reads the uniform --engine flag the same way ("lsa" when absent); the
// value is a full stm::make() registry spec ("orec:bits=14,irrev=32",
// comma-separated for sweeps) the driver resolves when registering
// dynamic rows. Dropped before google-benchmark parses the rest, like
// --timebase.
inline std::string extract_engine_flag(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a.rfind("--engine=", 0) == 0) return a.substr(9);
        if (a == "--engine" && i + 1 < argc) return argv[i + 1];
    }
    return "lsa";
}

inline int gbench_main_with_json(int argc, char** argv) {
    std::vector<std::string> args;
    args.reserve(static_cast<std::size_t>(argc) + 2);
    args.emplace_back(argc > 0 ? argv[0] : "bench");
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a.rfind("--json=", 0) == 0) {
            json_path = a.substr(7);
        } else if (a == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (a.rfind("--timebase=", 0) == 0) {
            // consumed by extract_timebase_flag
        } else if (a == "--timebase" && i + 1 < argc) {
            ++i;
        } else if (a.rfind("--engine=", 0) == 0) {
            // consumed by extract_engine_flag
        } else if (a == "--engine" && i + 1 < argc) {
            ++i;
        } else {
            args.push_back(a);
        }
    }
    if (!json_path.empty()) {
        args.push_back("--benchmark_out=" + json_path);
        args.push_back("--benchmark_out_format=json");
    }

    std::vector<char*> cargv;
    cargv.reserve(args.size());
    for (auto& a : args) cargv.push_back(a.data());
    int cargc = static_cast<int>(cargv.size());
    benchmark::Initialize(&cargc, cargv.data());
    if (benchmark::ReportUnrecognizedArguments(cargc, cargv.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

}  // namespace chronostm
