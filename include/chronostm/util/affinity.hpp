// CPU topology helpers: hardware thread count, best-effort pinning (the
// paper's scaling curves assume one thread per processor; pinning removes
// migration noise on Linux, and is a no-op elsewhere), and NUMA topology
// discovery from sysfs so NUMA-aware components (the sharded counter's
// shard assignment) can keep their cache lines inside one memory domain.
// Everything degrades gracefully: unknown topology reads as one node.

#pragma once

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace chronostm {

inline unsigned hardware_threads() {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

// Pin the calling thread to `cpu` (mod the hardware thread count).
// Returns true on success, false where unsupported.
inline bool pin_to_cpu(unsigned cpu) {
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu % hardware_threads(), &set);
    return pthread_setaffinity_np(pthread_self(), sizeof set, &set) == 0;
#else
    (void)cpu;
    return false;
#endif
}

// CPU the calling thread is running on right now, or -1 where unknown.
inline int current_cpu() {
#if defined(__linux__)
    return sched_getcpu();
#else
    return -1;
#endif
}

namespace detail {

// cpu -> dense NUMA node index, parsed once from
// /sys/devices/system/node/node*/cpulist ("0-3,8-11" range lists). Node
// directories need not be contiguous; found nodes are renumbered densely
// so callers can use the node index directly as an array index.
struct NumaTopology {
    int nodes = 1;
    std::vector<int> cpu_node;  // cpu -> dense node index; -1 = unknown
};

inline NumaTopology load_numa_topology() {
    NumaTopology t;
#if defined(__linux__)
    int dense = 0;
    int misses = 0;
    for (int node = 0; node < 1024 && misses < 64; ++node) {
        char path[128];
        std::snprintf(path, sizeof path,
                      "/sys/devices/system/node/node%d/cpulist", node);
        std::FILE* f = std::fopen(path, "re");
        if (f == nullptr) {
            ++misses;
            continue;
        }
        misses = 0;
        char buf[4096];
        const bool got = std::fgets(buf, sizeof buf, f) != nullptr;
        std::fclose(f);
        if (!got) continue;
        const char* p = buf;
        while (*p != '\0' && *p != '\n') {
            char* end = nullptr;
            const long lo = std::strtol(p, &end, 10);
            if (end == p) break;
            long hi = lo;
            p = end;
            if (*p == '-') {
                hi = std::strtol(p + 1, &end, 10);
                if (end == p + 1) break;
                p = end;
            }
            for (long cpu = lo; cpu >= 0 && cpu <= hi && cpu < 4096; ++cpu) {
                if (static_cast<std::size_t>(cpu) >= t.cpu_node.size())
                    t.cpu_node.resize(static_cast<std::size_t>(cpu) + 1, -1);
                t.cpu_node[static_cast<std::size_t>(cpu)] = dense;
            }
            if (*p == ',') ++p;
        }
        ++dense;
    }
    if (dense > 0) t.nodes = dense;
#endif
    return t;
}

inline const NumaTopology& numa_topology() {
    static const NumaTopology t = load_numa_topology();
    return t;
}

}  // namespace detail

// Number of NUMA nodes (1 where topology is unavailable).
inline int numa_node_count() { return detail::numa_topology().nodes; }

// Dense NUMA node index of `cpu`, or -1 where unknown.
inline int numa_node_of_cpu(int cpu) {
    const auto& t = detail::numa_topology();
    if (cpu < 0 || static_cast<std::size_t>(cpu) >= t.cpu_node.size())
        return -1;
    return t.cpu_node[static_cast<std::size_t>(cpu)];
}

}  // namespace chronostm
