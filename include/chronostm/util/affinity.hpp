// CPU topology helpers for the bench drivers: hardware thread count and
// best-effort pinning (the paper's scaling curves assume one thread per
// processor; pinning removes migration noise on Linux, and is a no-op
// elsewhere).

#pragma once

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace chronostm {

inline unsigned hardware_threads() {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

// Pin the calling thread to `cpu` (mod the hardware thread count).
// Returns true on success, false where unsupported.
inline bool pin_to_cpu(unsigned cpu) {
#if defined(__linux__)
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(cpu % hardware_threads(), &set);
    return pthread_setaffinity_np(pthread_self(), sizeof set, &set) == 0;
#else
    (void)cpu;
    return false;
#endif
}

}  // namespace chronostm
