#pragma once
// Quiescence-based (epoch) reclamation for transactionally freed nodes.
//
// The transactional allocator (stm/alloc.hpp) cannot hand a committed
// tx_free straight to operator delete: a doomed-but-still-running reader
// may sit on a pointer to the node (it read the pointer before the
// unlinking transaction committed and has not yet validated), and the LSA
// engine's multi-version history rings can serve *old* pointer values to
// any transaction whose snapshot predates the unlink. Both hazards are
// bounded by transaction lifetime, which makes epochs the right shape:
//
//   - Every thread that may touch transactional nodes registers a
//     Participant and pins it for the full duration of each run() call
//     (every attempt, including doomed ones, happens inside the pin).
//   - A committed tx_free retires the node into the freeing participant's
//     limbo list stamped with the current global epoch.
//   - The global epoch only advances when every pinned participant has
//     caught up to it, and a limbo entry is freed only once the minimum
//     pinned epoch has moved PAST its stamp. Together: everyone who could
//     have seen the node unlinked-but-unreclaimed has finished.
//
// Why this also covers the history rings ("Reclamation vs. multi-version
// histories" in DESIGN.md): a transaction that begins after the unlinking
// commit has snapshot lower >= that commit's stamp, and read_old_version
// skips any history entry whose validity range ends before lower -- so the
// stale pointer version is unreachable to it. Only transactions concurrent
// with the unlink can reach the node through a history entry, and those
// are pinned in an epoch <= the retire stamp, which blocks reclamation
// until they exit. The ring itself stores pointer *values*, never owns the
// pointee, so no separate pinning pass over rings is needed.
//
// Concurrency contract: pin/unpin/retire/collect on one Participant are
// called by its owning thread only; registration and epoch advance take a
// mutex but sit off the per-transaction fast path (pin and unpin are two
// atomic ops). The domain must outlive every participant it issued.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace chronostm {
namespace eb {

// Deleters take a caller-supplied context so containers can run slot
// destructors over node layouts only they understand; the context must
// stay valid until the owning domain is destroyed.
using Deleter = void (*)(void*, void*) noexcept;

struct Retired {
    void* ptr;
    Deleter del;
    void* ctx;
    std::uint64_t epoch;
};

struct DomainStats {
    std::uint64_t retired = 0;
    std::uint64_t freed = 0;
    std::uint64_t advances = 0;
    std::uint64_t limbo = 0;  // retired - freed at sample time
};

class EpochDomain;

class Participant {
 public:
    // Enter a read-side critical section. The loop pairs the local-epoch
    // store with a recheck of the global epoch so a collector scanning the
    // participant table either sees our pin or we observe its advance --
    // never neither. One iteration in the common case.
    void pin() noexcept {
        std::uint64_t e = global_->load(std::memory_order_acquire);
        for (;;) {
            local_.store(e, std::memory_order_seq_cst);
            const std::uint64_t now = global_->load(std::memory_order_seq_cst);
            if (now == e) break;
            e = now;
        }
    }

    bool pinned() const noexcept {
        return local_.load(std::memory_order_relaxed) != kQuiescent;
    }

    // unpin() and retire()/collect() are declared below EpochDomain (they
    // poke the domain for amortized advance/collection).
    inline void unpin() noexcept;
    inline void retire(void* p, Deleter d, void* ctx) noexcept;
    // Free every limbo entry whose epoch the domain has proven safe.
    inline void collect() noexcept;
    std::size_t limbo_size() const noexcept { return limbo_.size(); }

 private:
    friend class EpochDomain;
    static constexpr std::uint64_t kQuiescent = 0;

    explicit Participant(EpochDomain* d, const std::atomic<std::uint64_t>* g)
        : domain_(d), global_(g) {}

    EpochDomain* domain_;
    const std::atomic<std::uint64_t>* global_;
    alignas(64) std::atomic<std::uint64_t> local_{kQuiescent};
    std::vector<Retired> limbo_;   // owner-thread only
    unsigned ops_since_collect_ = 0;
};

class EpochDomain {
 public:
    EpochDomain() = default;
    EpochDomain(const EpochDomain&) = delete;
    EpochDomain& operator=(const EpochDomain&) = delete;

    ~EpochDomain() {
        // No participant may be pinned at domain teardown; everything
        // still in limbo (including orphans from dead participants) is
        // unreachable and freed unconditionally.
        std::lock_guard<std::mutex> lk(mu_);
        for (auto& r : orphans_) r.del(r.ptr, r.ctx);
        freed_.fetch_add(orphans_.size(), std::memory_order_relaxed);
        orphans_.clear();
    }

    // Threads register once and keep the handle for their lifetime. The
    // custom deleter drains any un-reclaimed limbo into the domain's
    // orphan list, so a thread exiting with deferred frees pending leaks
    // nothing.
    std::shared_ptr<Participant> register_participant() {
        auto* raw = new Participant(this, &global_);
        std::shared_ptr<Participant> p(raw, [this](Participant* q) {
            this->adopt_orphans(q);
            delete q;
        });
        std::lock_guard<std::mutex> lk(mu_);
        parts_.push_back(p);
        return p;
    }

    std::uint64_t epoch() const noexcept {
        return global_.load(std::memory_order_acquire);
    }

    // Advance the global epoch if every pinned participant has caught up,
    // then recompute the reclamation horizon: entries stamped strictly
    // below min(pinned locals) -- or below the global epoch when nobody is
    // pinned -- are safe to free.
    std::uint64_t try_advance() noexcept {
        std::lock_guard<std::mutex> lk(mu_);
        return advance_locked();
    }

    // Latest horizon computed by try_advance(); entries with
    // epoch < safe_epoch may be freed by their owning participant.
    std::uint64_t safe_epoch() const noexcept {
        return safe_.load(std::memory_order_acquire);
    }

    DomainStats stats() const {
        DomainStats s;
        s.retired = retired_.load(std::memory_order_relaxed);
        s.freed = freed_.load(std::memory_order_relaxed);
        s.advances = advances_.load(std::memory_order_relaxed);
        s.limbo = s.retired - s.freed;
        return s;
    }

 private:
    friend class Participant;

    std::uint64_t advance_locked() noexcept {
        const std::uint64_t g = global_.load(std::memory_order_acquire);
        std::uint64_t min_pinned = ~std::uint64_t{0};
        bool all_current = true;
        for (auto it = parts_.begin(); it != parts_.end();) {
            auto p = it->lock();
            if (!p) {
                it = parts_.erase(it);
                continue;
            }
            const std::uint64_t l = p->local_.load(std::memory_order_seq_cst);
            if (l != Participant::kQuiescent) {
                if (l < min_pinned) min_pinned = l;
                if (l != g) all_current = false;
            }
            ++it;
        }
        if (all_current) {
            global_.store(g + 1, std::memory_order_release);
            advances_.fetch_add(1, std::memory_order_relaxed);
        }
        // Horizon: nobody pinned -> everything stamped before the (old)
        // global epoch is unreachable; otherwise the oldest pin bounds it.
        const std::uint64_t horizon =
            (min_pinned == ~std::uint64_t{0}) ? g : min_pinned;
        safe_.store(horizon, std::memory_order_release);
        // Opportunistically drain orphans that fell below the horizon.
        std::size_t w = 0;
        for (std::size_t r = 0; r < orphans_.size(); ++r) {
            if (orphans_[r].epoch < horizon) {
                orphans_[r].del(orphans_[r].ptr, orphans_[r].ctx);
                freed_.fetch_add(1, std::memory_order_relaxed);
            } else {
                orphans_[w++] = orphans_[r];
            }
        }
        orphans_.resize(w);
        return horizon;
    }

    void adopt_orphans(Participant* p) {
        if (p->limbo_.empty()) return;
        std::lock_guard<std::mutex> lk(mu_);
        orphans_.insert(orphans_.end(), p->limbo_.begin(), p->limbo_.end());
        p->limbo_.clear();
    }

    // Epoch 0 is reserved as the quiescent marker, so the clock starts at 1.
    std::atomic<std::uint64_t> global_{1};
    std::atomic<std::uint64_t> safe_{0};
    std::atomic<std::uint64_t> retired_{0};
    std::atomic<std::uint64_t> freed_{0};
    std::atomic<std::uint64_t> advances_{0};
    std::mutex mu_;
    std::vector<std::weak_ptr<Participant>> parts_;
    std::vector<Retired> orphans_;
};

inline void Participant::unpin() noexcept {
    local_.store(kQuiescent, std::memory_order_release);
    // Amortized housekeeping: every few unpins, or whenever limbo has
    // piled up, push the epoch forward and sweep.
    if (!limbo_.empty() &&
        (++ops_since_collect_ >= 16 || limbo_.size() >= 128)) {
        ops_since_collect_ = 0;
        domain_->try_advance();
        collect();
    }
}

inline void Participant::retire(void* p, Deleter d, void* ctx) noexcept {
    limbo_.push_back(
        Retired{p, d, ctx, global_->load(std::memory_order_acquire)});
    domain_->retired_.fetch_add(1, std::memory_order_relaxed);
}

inline void Participant::collect() noexcept {
    if (limbo_.empty()) return;
    const std::uint64_t horizon = domain_->safe_epoch();
    std::size_t w = 0;
    for (std::size_t r = 0; r < limbo_.size(); ++r) {
        if (limbo_[r].epoch < horizon) {
            limbo_[r].del(limbo_[r].ptr, limbo_[r].ctx);
            domain_->freed_.fetch_add(1, std::memory_order_relaxed);
        } else {
            limbo_[w++] = limbo_[r];
        }
    }
    limbo_.resize(w);
}

// RAII pin covering one transactional run() window (all attempts).
class PinGuard {
 public:
    explicit PinGuard(Participant& p) noexcept : p_(&p) { p_->pin(); }
    ~PinGuard() {
        if (p_ != nullptr) p_->unpin();
    }
    PinGuard(PinGuard&& o) noexcept : p_(o.p_) { o.p_ = nullptr; }
    PinGuard(const PinGuard&) = delete;
    PinGuard& operator=(const PinGuard&) = delete;
    PinGuard& operator=(PinGuard&&) = delete;

 private:
    Participant* p_;
};

}  // namespace eb
}  // namespace chronostm
