// Spin-wait hint shared by the timebase and core layers.

#pragma once

#include <atomic>

namespace chronostm {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

}  // namespace chronostm
