// Spin-wait hint and retry backoff shared by the timebase and core layers.

#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

// ThreadSanitizer does not model std::atomic_thread_fence: a relaxed store
// published behind a release fence is correct per [atomics.fences] but
// invisible to the tool, which then reports the data stores ahead of the
// fence as racing with readers admitted by the publish. Under TSan only,
// such publishes are strengthened to release -- a pure strengthening that
// restores the synchronizes-with edge in the tool's model without changing
// the non-instrumented build.
#if defined(__SANITIZE_THREAD__)
#define CHRONOSTM_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CHRONOSTM_TSAN 1
#endif
#endif

namespace chronostm {

#ifdef CHRONOSTM_TSAN
inline constexpr std::memory_order kFencedPublishOrder =
    std::memory_order_release;
#else
inline constexpr std::memory_order kFencedPublishOrder =
    std::memory_order_relaxed;
#endif

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

// Bounded exponential backoff with multiplicative-hash jitter, used by both
// engines' retry loops between aborted attempts. The jitter decorrelates
// threads that aborted on the same conflict; the spin budget is capped and
// yields once large so oversubscribed hosts make progress.
inline void backoff(unsigned attempt, std::uint64_t seed) {
    const unsigned shift = attempt < 10 ? attempt : 10;
    std::uint64_t spins = (8ull << shift);
    seed = (seed + attempt + 1) * 0x9E3779B97F4A7C15ull;
    spins = spins / 2 + (seed % (spins + 1)) / 2;
    if (spins > 4096) {
        std::this_thread::yield();
        spins = 4096;
    }
    for (std::uint64_t i = 0; i < spins; ++i) cpu_relax();
}

}  // namespace chronostm
