// Minimal flag parser shared by all bench drivers: typed flags with
// defaults and help text, parsed from --name=value or --name value.
// parse() returns false after printing help (drivers then exit 0); unknown
// flags and malformed values throw std::runtime_error.

#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

namespace chronostm {

class Cli {
 public:
    explicit Cli(std::string description)
        : description_(std::move(description)) {}

    Cli& flag_i64(std::string name, long long def, std::string help) {
        flags_.push_back(Flag{std::move(name), std::move(help), Flag::kI64,
                              def, 0.0, std::string()});
        return *this;
    }

    Cli& flag_f64(std::string name, double def, std::string help) {
        flags_.push_back(Flag{std::move(name), std::move(help), Flag::kF64, 0,
                              def, std::string()});
        return *this;
    }

    Cli& flag_str(std::string name, std::string def, std::string help) {
        flags_.push_back(Flag{std::move(name), std::move(help), Flag::kStr, 0,
                              0.0, std::move(def)});
        return *this;
    }

    // Returns false when --help/-h was requested (help already printed).
    bool parse(int argc, char** argv) {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--help" || arg == "-h") {
                print_help(argv[0]);
                return false;
            }
            if (arg.rfind("--", 0) != 0)
                throw std::runtime_error("unexpected argument: " + arg);
            std::string name = arg.substr(2);
            std::string value;
            const auto eq = name.find('=');
            if (eq != std::string::npos) {
                value = name.substr(eq + 1);
                name = name.substr(0, eq);
            } else {
                if (!declared(name))
                    throw std::runtime_error("unknown flag: --" + name);
                if (i + 1 >= argc)
                    throw std::runtime_error("missing value for --" + name);
                value = argv[++i];
            }
            set(name, value);
        }
        return true;
    }

    long long i64(const std::string& name) const {
        return find(name, Flag::kI64).i64;
    }
    double f64(const std::string& name) const {
        return find(name, Flag::kF64).f64;
    }
    const std::string& str(const std::string& name) const {
        return find(name, Flag::kStr).str;
    }

 private:
    struct Flag {
        std::string name;
        std::string help;
        enum Kind { kI64, kF64, kStr } kind;
        long long i64;
        double f64;
        std::string str;
    };

    bool declared(const std::string& name) const {
        for (const auto& f : flags_)
            if (f.name == name) return true;
        return false;
    }

    void set(const std::string& name, const std::string& value) {
        for (auto& f : flags_) {
            if (f.name != name) continue;
            try {
                switch (f.kind) {
                    case Flag::kI64: f.i64 = std::stoll(value); break;
                    case Flag::kF64: f.f64 = std::stod(value); break;
                    case Flag::kStr: f.str = value; break;
                }
            } catch (const std::exception&) {
                throw std::runtime_error("bad value for --" + name + ": " +
                                         value);
            }
            return;
        }
        throw std::runtime_error("unknown flag: --" + name);
    }

    const Flag& find(const std::string& name, int kind) const {
        for (const auto& f : flags_)
            if (f.name == name && f.kind == kind) return f;
        throw std::logic_error("flag not declared: --" + name);
    }

    void print_help(const char* prog) const {
        std::printf("%s\n\nusage: %s [--flag value | --flag=value]...\n\n",
                    description_.c_str(), prog);
        for (const auto& f : flags_) {
            std::string def;
            switch (f.kind) {
                case Flag::kI64: def = std::to_string(f.i64); break;
                case Flag::kF64: {
                    char buf[64];
                    std::snprintf(buf, sizeof buf, "%g", f.f64);
                    def = buf;
                    break;
                }
                case Flag::kStr: def = f.str; break;
            }
            std::printf("  --%-16s %s (default: %s)\n", f.name.c_str(),
                        f.help.c_str(), def.c_str());
        }
    }

    std::string description_;
    std::vector<Flag> flags_;
};

}  // namespace chronostm
