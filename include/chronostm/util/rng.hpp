// Small fast PRNG for workload drivers (xorshift64*): deterministic per
// seed, no <random> template bloat on hot paths.

#pragma once

#include <cstdint>

namespace chronostm {

class Rng {
 public:
    explicit Rng(std::uint64_t seed) : state_(seed ? seed : 0x9E3779B9ull) {}

    std::uint64_t next() {
        std::uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545F4914F6CDD1Dull;
    }

    // Uniform in [0, n); n must be nonzero.
    std::uint64_t below(std::uint64_t n) { return next() % n; }

    // Uniform in [0, 1).
    double real01() {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    // True with probability p (clamped to [0, 1]).
    bool chance(double p) { return real01() < p; }

 private:
    std::uint64_t state_;
};

}  // namespace chronostm
