// Fixed-width ASCII tables for bench output: a title, a header row, data
// rows, and optional footnotes. Cells are preformatted strings; Table::num
// formats the numbers consistently across drivers.

#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

namespace chronostm {

class Table {
 public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    void set_header(std::vector<std::string> header) {
        header_ = std::move(header);
    }

    void add_row(std::vector<std::string> row) {
        rows_.push_back(std::move(row));
    }

    void add_note(std::string note) { notes_.push_back(std::move(note)); }

    static std::string num(double v, int precision) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.*f", precision, v);
        return buf;
    }

    static std::string num(std::uint64_t v) { return std::to_string(v); }

    void print(std::ostream& os) const {
        std::vector<std::size_t> widths(header_.size(), 0);
        for (std::size_t c = 0; c < header_.size(); ++c)
            widths[c] = header_[c].size();
        for (const auto& row : rows_)
            for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
                widths[c] = std::max(widths[c], row[c].size());

        os << title_ << '\n';
        print_rule(os, widths);
        print_row(os, header_, widths);
        print_rule(os, widths);
        for (const auto& row : rows_) print_row(os, row, widths);
        print_rule(os, widths);
        for (const auto& note : notes_) os << "  note: " << note << '\n';
    }

 private:
    static void print_rule(std::ostream& os,
                           const std::vector<std::size_t>& widths) {
        os << '+';
        for (const auto w : widths) {
            for (std::size_t i = 0; i < w + 2; ++i) os << '-';
            os << '+';
        }
        os << '\n';
    }

    static void print_row(std::ostream& os, const std::vector<std::string>& row,
                          const std::vector<std::size_t>& widths) {
        os << '|';
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string& cell = c < row.size() ? row[c] : empty_;
            os << ' ';
            for (std::size_t i = cell.size(); i < widths[c]; ++i) os << ' ';
            os << cell << " |";
        }
        os << '\n';
    }

    static inline const std::string empty_{};

    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::string> notes_;
};

}  // namespace chronostm
