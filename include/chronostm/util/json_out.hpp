// Minimal JSON emitter for the bench drivers' --json=<path> output: every
// driver dumps a machine-readable result blob next to its ASCII table so
// perf trajectories can be tracked across commits (BENCH_baseline.json) and
// CI can upload the numbers as artifacts. Emission-only, streaming, no DOM:
// begin/end pairs with automatic comma placement and two-space indentation.

#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <type_traits>
#include <vector>

namespace chronostm {

class Json {
 public:
    Json& obj_begin() { return open('{'); }
    Json& obj_end() { return close('}'); }
    Json& arr_begin() { return open('['); }
    Json& arr_end() { return close(']'); }

    Json& key(const std::string& k) {
        comma_and_indent();
        append_quoted(k);
        buf_ += ": ";
        pending_value_ = true;
        return *this;
    }

    Json& str(const std::string& v) {
        value_slot();
        append_quoted(v);
        return *this;
    }

    Json& num(double v) {
        char tmp[64];
        std::snprintf(tmp, sizeof tmp, "%.6g", v);
        value_slot();
        buf_ += tmp;
        return *this;
    }

    Json& num(std::uint64_t v) {
        value_slot();
        buf_ += std::to_string(v);
        return *this;
    }

    Json& num(long long v) {
        value_slot();
        buf_ += std::to_string(v);
        return *this;
    }

    Json& boolean(bool v) {
        value_slot();
        buf_ += v ? "true" : "false";
        return *this;
    }

    // Shorthand for the common key-then-scalar pattern.
    template <typename V>
    Json& kv(const std::string& k, V v) {
        key(k);
        if constexpr (std::is_same_v<V, bool>) return boolean(v);
        else if constexpr (std::is_floating_point_v<V>) return num(double(v));
        else if constexpr (std::is_integral_v<V> && std::is_signed_v<V>)
            return num(static_cast<long long>(v));
        else if constexpr (std::is_integral_v<V>)
            return num(static_cast<std::uint64_t>(v));
        else return str(v);
    }
    Json& kv(const std::string& k, const std::string& v) {
        return key(k).str(v);
    }
    Json& kv(const std::string& k, const char* v) {
        return key(k).str(v);
    }

    const std::string& text() const { return buf_; }

    // Writes the document (plus trailing newline) to `path`; returns
    // success. Drivers treat failure as a fatal CLI error.
    bool write_file(const std::string& path) const {
        std::FILE* f = std::fopen(path.c_str(), "w");
        if (f == nullptr) return false;
        const bool ok =
            std::fwrite(buf_.data(), 1, buf_.size(), f) == buf_.size() &&
            std::fputc('\n', f) != EOF;
        return std::fclose(f) == 0 && ok;
    }

 private:
    Json& open(char c) {
        value_slot();
        buf_ += c;
        depth_.push_back(false);
        return *this;
    }

    Json& close(char c) {
        const bool had_items = !depth_.empty() && depth_.back();
        if (!depth_.empty()) depth_.pop_back();
        if (had_items) {
            buf_ += '\n';
            indent();
        }
        buf_ += c;
        return *this;
    }

    // A value lands either right after its key or as an array element
    // (comma + newline separated).
    void value_slot() {
        if (pending_value_) {
            pending_value_ = false;
            return;
        }
        comma_and_indent();
    }

    void comma_and_indent() {
        if (!depth_.empty()) {
            if (depth_.back()) buf_ += ',';
            depth_.back() = true;
            buf_ += '\n';
            indent();
        }
    }

    void indent() {
        buf_.append(2 * depth_.size(), ' ');
    }

    void append_quoted(const std::string& s) {
        buf_ += '"';
        for (const char c : s) {
            switch (c) {
                case '"': buf_ += "\\\""; break;
                case '\\': buf_ += "\\\\"; break;
                case '\n': buf_ += "\\n"; break;
                case '\t': buf_ += "\\t"; break;
                default:
                    if (static_cast<unsigned char>(c) < 0x20) {
                        char tmp[8];
                        std::snprintf(tmp, sizeof tmp, "\\u%04x", c);
                        buf_ += tmp;
                    } else {
                        buf_ += c;
                    }
            }
        }
        buf_ += '"';
    }

    std::string buf_;
    std::vector<bool> depth_;  // per level: "has at least one item"
    bool pending_value_ = false;
};

// Shared --json epilogue for the table drivers: no-op when the flag is
// empty, otherwise write and report failure on stderr. Callers exit 2 on
// false (the drivers' bad-flag/bad-path exit code).
inline bool write_json_flag(const std::string& path, const Json& json) {
    if (path.empty() || json.write_file(path)) return true;
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
}

}  // namespace chronostm
