#pragma once
// Deterministic failpoint injection for chaos testing.
//
// Compiled in only when CHRONOSTM_FAILPOINTS is defined; otherwise the
// CHRONOSTM_FAILPOINT macro expands to the constant `false` and the whole
// subsystem vanishes (the release-bench gate proves the OFF build pays
// <= 1.05x on commit rows).
//
// Each named site carries an action mix expressed in parts-per-million:
//   abort_ppm  -- caller should treat the hit as an injected abort
//   delay_ppm  -- short spin delay (delay_spins pause iterations)
//   stall_ppm  -- long sleep (stall_us microseconds), used to fake a
//                 preempted committer parked on held locks
// Draws come from a per-thread SplitMix64 stream derived from the global
// seed and a thread ordinal, so a chaos run is replayable from its seed.
// Sites can also be armed "one-shot": the first thread through the site
// consumes the budget and applies the configured action with certainty,
// which is how tests manufacture a provably stalled victim.

#ifdef CHRONOSTM_FAILPOINTS

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

namespace chronostm {
namespace fp {

enum Site : unsigned {
    k_lsa_commit_post_lock = 0,  // write locks held, descriptor not yet published
    k_lsa_commit_pre_stamp,      // between epoch bump and commit-stamp draw
    k_lsa_commit_pre_writeback,  // descriptor committed, data not yet applied
    k_lsa_commit_pre_unlock,     // data applied, version locks not yet released
    k_lsa_read,                  // inside TVar read (abort / delay)
    k_orec_commit_post_lock,
    k_orec_commit_pre_stamp,
    k_orec_commit_pre_writeback,
    k_orec_commit_pre_unlock,
    k_orec_read,
    k_num_sites
};

struct SiteConfig {
    std::uint32_t abort_ppm = 0;
    std::uint32_t delay_ppm = 0;
    std::uint32_t delay_spins = 256;
    std::uint32_t stall_ppm = 0;
    std::uint32_t stall_us = 0;
};

struct Registry {
    SiteConfig sites[k_num_sites];
    std::atomic<std::int32_t> one_shot[k_num_sites];
    std::atomic<std::uint64_t> seed{0x9e3779b97f4a7c15ull};
    std::atomic<std::uint64_t> epoch{0};      // bumped on reseed/reset
    std::atomic<std::uint64_t> next_tid{0};   // thread ordinals for RNG streams
    std::atomic<std::uint64_t> total_faults{0};
};

inline Registry& registry() {
    static Registry r;
    return r;
}

namespace detail {

// Checked by the CHRONOSTM_FAILPOINT macro BEFORE calling hit(): a
// constant-initialized namespace-scope atomic, so the unarmed fast path
// is one relaxed load of a hot shared read-only line plus a predicted
// branch -- no meyers-singleton guard, no per-site config loads. The
// release-bench gate holds the unarmed instrumented build to <= 1.05x of
// the plain build on the single-var commit rows, which cross five sites.
inline std::atomic<std::uint32_t> g_armed{0};

}  // namespace detail

// Recompute the global armed flag from the full site table; called after
// every configuration change so disarming one site keeps others live.
inline void recompute_armed() {
    Registry& r = registry();
    std::uint32_t armed = 0;
    for (unsigned i = 0; i < k_num_sites; ++i) {
        const SiteConfig& c = r.sites[i];
        if ((c.abort_ppm | c.delay_ppm | c.stall_ppm) != 0 ||
            r.one_shot[i].load(std::memory_order_relaxed) > 0)
            armed = 1;
    }
    detail::g_armed.store(armed, std::memory_order_release);
}

// Configure before spawning worker threads (publication happens-before via
// thread creation); only the one-shot budgets and counters are touched
// concurrently.
inline void configure(Site s, const SiteConfig& cfg) {
    registry().sites[s] = cfg;
    recompute_armed();
}

inline void arm_one_shot(Site s, const SiteConfig& cfg, std::int32_t budget = 1) {
    Registry& r = registry();
    r.sites[s] = cfg;
    r.one_shot[s].store(budget, std::memory_order_release);
    recompute_armed();
}

inline void set_seed(std::uint64_t seed) {
    Registry& r = registry();
    r.seed.store(seed, std::memory_order_relaxed);
    r.epoch.fetch_add(1, std::memory_order_relaxed);
}

inline void reset() {
    Registry& r = registry();
    for (unsigned i = 0; i < k_num_sites; ++i) {
        r.sites[i] = SiteConfig{};
        r.one_shot[i].store(0, std::memory_order_relaxed);
    }
    r.epoch.fetch_add(1, std::memory_order_relaxed);
    detail::g_armed.store(0, std::memory_order_release);
}

inline std::uint64_t total_faults() {
    return registry().total_faults.load(std::memory_order_relaxed);
}

namespace detail {

inline std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

struct ThreadStream {
    std::uint64_t state = 0;
    std::uint64_t epoch = ~0ull;
    std::uint64_t ordinal = ~0ull;
};

inline ThreadStream& stream() {
    thread_local ThreadStream ts;
    Registry& r = registry();
    const std::uint64_t e = r.epoch.load(std::memory_order_relaxed);
    if (ts.epoch != e) {
        if (ts.ordinal == ~0ull)
            ts.ordinal = r.next_tid.fetch_add(1, std::memory_order_relaxed);
        ts.state = r.seed.load(std::memory_order_relaxed) ^ (ts.ordinal * 0xd1342543de82ef95ull);
        ts.epoch = e;
    }
    return ts;
}

// Per-transaction fault counter; engines bind the active context's stats
// slot at txn begin so injected faults surface in TxStats / --json.
inline std::atomic<std::uint64_t>*& sink() {
    thread_local std::atomic<std::uint64_t>* s = nullptr;
    return s;
}

inline void spin(std::uint32_t n) {
    for (std::uint32_t i = 0; i < n; ++i) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#else
        std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
    }
}

inline void record_fault() {
    registry().total_faults.fetch_add(1, std::memory_order_relaxed);
    if (auto* s = sink()) s->fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

inline void bind_sink(std::atomic<std::uint64_t>* counter) { detail::sink() = counter; }

// Returns true when the caller should inject an abort at this site.
// Delays and stalls are executed inline. Deliberately out of line and
// cold: the macro's g_armed pre-check keeps it off the unarmed path, and
// keeping its body out of the engines' hot loops keeps the instrumented
// build's code layout close to the plain build's.
#if defined(__GNUC__)
__attribute__((noinline, cold))
#endif
inline bool hit(Site s) {
    Registry& r = registry();
    const SiteConfig& cfg = r.sites[s];
    if (cfg.abort_ppm == 0 && cfg.delay_ppm == 0 && cfg.stall_ppm == 0 &&
        r.one_shot[s].load(std::memory_order_relaxed) <= 0)
        return false;

    // One-shot budget: consume it and fire the configured action for sure.
    std::int32_t budget = r.one_shot[s].load(std::memory_order_acquire);
    while (budget > 0) {
        if (r.one_shot[s].compare_exchange_weak(budget, budget - 1,
                                                std::memory_order_acq_rel)) {
            detail::record_fault();
            if (cfg.stall_us > 0)
                std::this_thread::sleep_for(std::chrono::microseconds(cfg.stall_us));
            else if (cfg.delay_ppm > 0 || cfg.delay_spins > 0)
                detail::spin(cfg.delay_spins);
            return cfg.abort_ppm > 0;
        }
    }

    detail::ThreadStream& ts = detail::stream();
    const std::uint64_t draw = detail::splitmix64(ts.state) % 1'000'000u;
    if (draw < cfg.abort_ppm) {
        detail::record_fault();
        return true;
    }
    if (draw < cfg.abort_ppm + cfg.stall_ppm) {
        detail::record_fault();
        std::this_thread::sleep_for(std::chrono::microseconds(cfg.stall_us));
        return false;
    }
    if (draw < cfg.abort_ppm + cfg.stall_ppm + cfg.delay_ppm) {
        detail::record_fault();
        detail::spin(cfg.delay_spins);
        return false;
    }
    return false;
}

}  // namespace fp
}  // namespace chronostm

#define CHRONOSTM_FAILPOINT(site)                                          \
    (__builtin_expect(::chronostm::fp::detail::g_armed.load(               \
                          std::memory_order_relaxed) != 0,                 \
                      0) &&                                                \
     ::chronostm::fp::hit(::chronostm::fp::k_##site))
#define CHRONOSTM_FP_SINK(counter) (::chronostm::fp::bind_sink(counter))

#else  // !CHRONOSTM_FAILPOINTS

#define CHRONOSTM_FAILPOINT(site) (false)
#define CHRONOSTM_FP_SINK(counter) ((void)0)

#endif  // CHRONOSTM_FAILPOINTS
