// LSA-STM core: the Lazy Snapshot Algorithm engine, templated on the time
// base (the paper's central claim is that the time base is a replaceable
// component; everything time-related below goes through TB::ThreadClock and
// TB::deviation()).
//
// Design, following the paper:
//  * Each TVar carries a versioned lock word ("orec"): (version_ts << 1) |
//    lock_bit. The version timestamp is the commit time of the current
//    value.
//  * Each TVar keeps a bounded history of old versions with validity
//    ranges [from, until), so long read-only transactions can read a
//    consistent-but-old snapshot instead of aborting (multi-version LSA;
//    depth is StmConfig::max_versions).
//  * A transaction maintains a snapshot interval [lower, upper]. Reads pick
//    the most recent version valid at `upper`; when the current version is
//    too new the snapshot is lazily extended to the present (validating the
//    read set) before falling back to old versions.
//  * Writes are buffered in a lazy write set; commit locks the write set in
//    address order, draws one new timestamp from the time base, validates
//    the read set, then publishes values with the new version timestamp.
//  * With an externally synchronized time base, every version's validity
//    range is shrunk at both ends by the pairwise stamp uncertainty (twice
//    the published per-stamp deviation bound: both the version's stamp and
//    the snapshot's stamp may be skewed) -- deviation only ever costs
//    aborts, never correctness, because commit validation is exact (lock
//    words, not clocks) and snapshot reads never admit a version unless it
//    was committed, in true time, before the snapshot.

#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/pause.hpp"

namespace chronostm {

struct StmConfig {
    // Versions kept per TVar including the current one; 1 = no history
    // (TL2-like), larger values let long readers survive concurrent
    // updates. Capped at detail::kMaxHistory + 1.
    unsigned max_versions = 8;
    // Lazy snapshot extension on reads that find a too-new current version.
    bool read_extension = true;
    // Commit helping (LSA-RT); consumed by stm/adapter.hpp when that layer
    // lands -- the core always uses bounded spinning.
    bool help_committers = true;
    // Spins on a foreign lock before giving up and aborting.
    unsigned lock_spin = 256;
    // Bounded retry: run() throws after this many consecutive aborts.
    unsigned max_retries = 1'000'000;
};

class TxStats {
 public:
    TxStats() = default;
    TxStats(std::uint64_t commits, std::uint64_t aborts)
        : commits_(commits), aborts_(aborts) {}

    std::uint64_t commits() const { return commits_; }
    std::uint64_t aborts() const { return aborts_; }

 private:
    std::uint64_t commits_ = 0;
    std::uint64_t aborts_ = 0;
};

namespace detail {

inline constexpr unsigned kMaxHistory = 16;

struct AbortTx {};

struct StatsBlock {
    std::atomic<std::uint64_t> commits{0};
    std::atomic<std::uint64_t> aborts{0};
};

// Exponential backoff with multiplicative-hash jitter; yields once the spin
// budget is large so oversubscribed hosts make progress.
inline void backoff(unsigned attempt, std::uint64_t seed) {
    const unsigned shift = attempt < 10 ? attempt : 10;
    std::uint64_t spins = (8ull << shift);
    seed = (seed + attempt + 1) * 0x9E3779B97F4A7C15ull;
    spins = spins / 2 + (seed % (spins + 1)) / 2;
    if (spins > 4096) {
        std::this_thread::yield();
        spins = 4096;
    }
    for (std::uint64_t i = 0; i < spins; ++i) cpu_relax();
}

}  // namespace detail

template <typename TB>
class Transaction;
template <typename TB>
class ThreadContext;
template <typename TB>
class LsaStm;
template <typename T, typename TB>
class TVar;

// Untyped base so transactions can track read/write sets across TVar<T>
// instantiations. The lock word is the only shared-memory rendezvous point:
// (version_ts << 1) | lock_bit.
template <typename TB>
class TVarBase {
 public:
    TVarBase() = default;
    TVarBase(const TVarBase&) = delete;
    TVarBase& operator=(const TVarBase&) = delete;
    virtual ~TVarBase() = default;

 protected:
    friend class Transaction<TB>;
    std::atomic<std::uint64_t> vlock_{0};
};

template <typename T, typename TB>
class TVar : public TVarBase<TB> {
    static_assert(std::is_trivially_copyable_v<T>,
                  "TVar<T> requires a trivially copyable T: values are read "
                  "optimistically under a seqlock");

 public:
    explicit TVar(T initial) : value_(initial) {}

    T get(Transaction<TB>& tx) { return tx.read(*this); }
    void set(Transaction<TB>& tx, T v) { tx.write(*this, std::move(v)); }

    // Non-transactional read for post-run invariant checks (quiesced state
    // only: racy by construction while transactions run).
    T unsafe_peek() const { return value_.load(std::memory_order_acquire); }

 private:
    friend class Transaction<TB>;

    // Old versions live in a ring written only while the lock bit is held;
    // readers snapshot entries and recheck vlock_ to detect slot reuse.
    struct OldVersion {
        std::atomic<T> value{};
        std::atomic<std::uint64_t> from{0};
        std::atomic<std::uint64_t> until{0};
    };

    // Called by the committing transaction with the lock bit held. The
    // release fence keeps the (earlier) lock-bit store visible before any
    // of the data stores below on weakly-ordered hardware, so a reader
    // that observes new data and then rechecks the lock word is guaranteed
    // to see the lock (or the final version) -- the other half of the
    // seqlock lives in Transaction::read / read_old_version.
    void commit_write(const T& v, std::uint64_t new_ts, unsigned keep_old) {
        std::atomic_thread_fence(std::memory_order_release);
        const std::uint64_t old_ts =
            this->vlock_.load(std::memory_order_relaxed) >> 1;
        if (keep_old > 0) {
            const unsigned head =
                (hist_head_.load(std::memory_order_relaxed) + 1) %
                detail::kMaxHistory;
            auto& slot = hist_[head];
            slot.value.store(value_.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
            slot.from.store(old_ts, std::memory_order_relaxed);
            slot.until.store(new_ts, std::memory_order_relaxed);
            hist_head_.store(head, std::memory_order_release);
            const unsigned cap = std::min(keep_old, detail::kMaxHistory);
            const unsigned sz = hist_size_.load(std::memory_order_relaxed);
            hist_size_.store(std::min(sz + 1, cap), std::memory_order_release);
        } else {
            hist_size_.store(0, std::memory_order_release);
        }
        value_.store(v, std::memory_order_relaxed);
        this->vlock_.store(new_ts << 1, std::memory_order_release);
    }

    std::atomic<T> value_;
    std::array<OldVersion, detail::kMaxHistory> hist_{};
    std::atomic<unsigned> hist_head_{0};
    std::atomic<unsigned> hist_size_{0};
};

template <typename TB>
class Transaction {
 public:
    using Clock = typename TB::ThreadClock;

    Transaction(const Transaction&) = delete;
    Transaction& operator=(const Transaction&) = delete;

    // Explicit early abort: unwinds out of the user lambda; run() retries.
    [[noreturn]] void abort() { throw detail::AbortTx{}; }

    std::uint64_t snapshot_lower() const { return lower_; }
    std::uint64_t snapshot_upper() const { return upper_; }

 private:
    friend class ThreadContext<TB>;
    template <typename T, typename TB2>
    friend class TVar;

    struct ReadEntry {
        TVarBase<TB>* var;
        std::uint64_t word;  // unlocked lock word observed at read time
    };

    struct WriteRecBase {
        TVarBase<TB>* var;
        std::uint64_t locked_word = 0;
        explicit WriteRecBase(TVarBase<TB>* v) : var(v) {}
        virtual ~WriteRecBase() = default;
        virtual void apply(std::uint64_t new_ts, unsigned keep_old) = 0;
    };

    template <typename T>
    struct WriteRec : WriteRecBase {
        TVar<T, TB>* tvar;
        T value;
        WriteRec(TVar<T, TB>* v, T val)
            : WriteRecBase(v), tvar(v), value(std::move(val)) {}
        void apply(std::uint64_t new_ts, unsigned keep_old) override {
            tvar->commit_write(value, new_ts, keep_old);
        }
    };

    Transaction(Clock& clk, const StmConfig& cfg, std::uint64_t dev)
        : clk_(clk), cfg_(cfg), dev_(dev) {
        upper_ = clk_.get_time();
        upper_cap_ = ~std::uint64_t{0};
    }

    template <typename T>
    T read(TVar<T, TB>& var) {
        if (auto* rec = find_write(&var))
            return static_cast<WriteRec<T>*>(rec)->value;

        unsigned lock_spins = 0;
        for (;;) {
            const std::uint64_t w1 =
                var.vlock_.load(std::memory_order_acquire);
            if (w1 & 1u) {
                if (++lock_spins > cfg_.lock_spin) throw detail::AbortTx{};
                cpu_relax();
                continue;
            }
            const std::uint64_t wv = w1 >> 1;
            // Validity of the current version starts at wv, shrunk by the
            // pairwise stamp uncertainty dev_.
            if (wv + dev_ <= upper_) {
                const T v = var.value_.load(std::memory_order_acquire);
                // Seqlock recheck; the fence pairs with the release fence
                // in commit_write so that seeing new data implies seeing
                // the lock word that published it.
                std::atomic_thread_fence(std::memory_order_acquire);
                if (var.vlock_.load(std::memory_order_acquire) != w1)
                    continue;  // raced with a commit; retry the read
                lower_ = std::max(lower_, wv + dev_);
                reads_.push_back(ReadEntry{&var, w1});
                return v;
            }
            // Current version is newer than the snapshot. First choice:
            // lazily extend the snapshot to the present.
            if (cfg_.read_extension && try_extend()) continue;
            // Fall back to an old version -- only useful to transactions
            // that have not written yet (an update transaction must commit
            // "in the present", which a stale snapshot cannot reach).
            if (writes_.empty()) {
                T v{};
                if (read_old_version(var, w1, v)) return v;
            }
            throw detail::AbortTx{};
        }
    }

    template <typename T>
    void write(TVar<T, TB>& var, T v) {
        if (auto* rec = find_write(&var)) {
            static_cast<WriteRec<T>*>(rec)->value = std::move(v);
            return;
        }
        writes_.push_back(
            std::make_unique<WriteRec<T>>(&var, std::move(v)));
        writes_sorted_ = false;
    }

    // Try to move `upper` to the present; all reads so far must still be
    // the most recent versions (a changed or locked word means the
    // extension would break snapshot consistency, so we refuse).
    bool try_extend() {
        std::uint64_t nu = clk_.get_time();
        nu = std::min(nu, upper_cap_);
        if (nu <= upper_) return false;
        for (const auto& e : reads_) {
            if (e.var->vlock_.load(std::memory_order_acquire) != e.word)
                return false;
        }
        upper_ = nu;
        return true;
    }

    // Search the version history of `var` for a version covering the
    // snapshot; `w1` is the unlocked lock word the caller just observed.
    template <typename T>
    bool read_old_version(TVar<T, TB>& var, std::uint64_t w1, T& out) {
        const unsigned n = var.hist_size_.load(std::memory_order_acquire);
        const unsigned head = var.hist_head_.load(std::memory_order_acquire);
        for (unsigned k = 0; k < n; ++k) {
            const auto& slot =
                var.hist_[(head + detail::kMaxHistory - k) %
                          detail::kMaxHistory];
            const std::uint64_t from =
                slot.from.load(std::memory_order_acquire);
            const std::uint64_t until =
                slot.until.load(std::memory_order_acquire);
            const T v = slot.value.load(std::memory_order_acquire);
            std::atomic_thread_fence(std::memory_order_acquire);  // seqlock
            if (var.vlock_.load(std::memory_order_acquire) != w1)
                return false;  // history mutated under us; caller re-reads
            // Valid over [from, until); shrink by the pairwise stamp
            // uncertainty at both ends. Underflow guard: a range narrower
            // than 2*dev+1 is unusable (this is exactly how sync error
            // raises abort rates).
            if (until < from || until - from < 2 * dev_ + 1) continue;
            const std::uint64_t lo = from + dev_;
            const std::uint64_t hi = until - 1 - dev_;
            if (lo > upper_ || hi < lower_) continue;
            lower_ = std::max(lower_, lo);
            upper_ = std::min(upper_, hi);
            upper_cap_ = std::min(upper_cap_, hi);
            read_old_ = true;
            out = v;
            return true;
        }
        return false;
    }

    typename Transaction::WriteRecBase* find_write(TVarBase<TB>* var) {
        for (auto& rec : writes_)
            if (rec->var == var) return rec.get();
        return nullptr;
    }

    bool owns_lock(TVarBase<TB>* var) const {
        for (const auto& rec : writes_)
            if (rec->var == var) return true;
        return false;
    }

    // Commit protocol: lock write set in address order, draw the commit
    // timestamp, validate reads, publish, unlock. Returns false on
    // conflict (caller counts the abort and retries).
    bool commit() {
        if (writes_.empty()) return true;  // snapshot reads are consistent
        // An update transaction that resorted to old versions cannot
        // serialize at commit time.
        if (read_old_) return false;

        if (!writes_sorted_) {
            std::sort(writes_.begin(), writes_.end(),
                      [](const auto& a, const auto& b) {
                          return a->var < b->var;
                      });
            writes_sorted_ = true;
        }

        std::size_t locked = 0;
        for (; locked < writes_.size(); ++locked) {
            auto& rec = writes_[locked];
            std::uint64_t w = rec->var->vlock_.load(std::memory_order_relaxed);
            unsigned spins = 0;
            for (;;) {
                if (w & 1u) {
                    if (++spins > cfg_.lock_spin) {
                        unlock_prefix(locked);
                        return false;
                    }
                    cpu_relax();
                    w = rec->var->vlock_.load(std::memory_order_relaxed);
                    continue;
                }
                if (rec->var->vlock_.compare_exchange_weak(
                        w, w | 1u, std::memory_order_acq_rel,
                        std::memory_order_relaxed)) {
                    rec->locked_word = w;
                    break;
                }
            }
        }

        const std::uint64_t commit_ts = clk_.get_new_ts();

        for (const auto& e : reads_) {
            const std::uint64_t cur =
                e.var->vlock_.load(std::memory_order_acquire);
            if (cur == e.word) continue;
            if (cur == (e.word | 1u) && owns_lock(e.var)) continue;
            unlock_prefix(writes_.size());
            return false;
        }
        if (lower_ > commit_ts) {
            unlock_prefix(writes_.size());
            return false;
        }

        const unsigned keep_old =
            cfg_.max_versions > 0
                ? std::min(cfg_.max_versions - 1, detail::kMaxHistory)
                : 0;
        // One timestamp for the whole write set (stamping vars
        // individually could tear the commit across the version history
        // when the time base hands out tied stamps), bumped above every
        // locked version for per-var monotonicity under TL2 sharing and
        // coarse clocks.
        std::uint64_t new_ts = commit_ts;
        for (const auto& rec : writes_)
            new_ts = std::max(new_ts, (rec->locked_word >> 1) + 1);
        for (auto& rec : writes_) rec->apply(new_ts, keep_old);
        return true;
    }

    void unlock_prefix(std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) {
            auto& rec = writes_[i];
            rec->var->vlock_.store(rec->locked_word,
                                   std::memory_order_release);
        }
    }

    Clock& clk_;
    const StmConfig& cfg_;
    std::uint64_t dev_;
    std::uint64_t lower_ = 0;
    std::uint64_t upper_ = 0;
    std::uint64_t upper_cap_ = 0;
    bool read_old_ = false;
    bool writes_sorted_ = false;
    std::vector<ReadEntry> reads_;
    std::vector<std::unique_ptr<WriteRecBase>> writes_;
};

// Per-thread handle: owns a thread clock and a stats block registered with
// the parent LsaStm. Movable; not thread-safe (one context per thread).
template <typename TB>
class ThreadContext {
 public:
    using Clock = typename TB::ThreadClock;

    // Runs `f` as a transaction until it commits, with bounded retry and
    // exponential backoff. `f` takes Transaction<TB>& and may return a
    // value, which run() passes through from the committed attempt.
    template <typename F>
    auto run(F&& f) {
        using R = std::invoke_result_t<F&, Transaction<TB>&>;
        for (unsigned attempt = 0;; ++attempt) {
            Transaction<TB> tx(clk_, cfg_, dev_);
            try {
                if constexpr (std::is_void_v<R>) {
                    f(tx);
                    if (tx.commit()) {
                        stats_->commits.fetch_add(1,
                                                  std::memory_order_relaxed);
                        return;
                    }
                } else {
                    R r = f(tx);
                    if (tx.commit()) {
                        stats_->commits.fetch_add(1,
                                                  std::memory_order_relaxed);
                        return r;
                    }
                }
            } catch (const detail::AbortTx&) {
            }
            stats_->aborts.fetch_add(1, std::memory_order_relaxed);
            if (attempt + 1 >= cfg_.max_retries)
                throw std::runtime_error(
                    "chronostm: transaction exceeded retry bound");
            detail::backoff(attempt,
                            reinterpret_cast<std::uintptr_t>(stats_.get()));
        }
    }

    TxStats stats() const {
        return TxStats(stats_->commits.load(std::memory_order_relaxed),
                       stats_->aborts.load(std::memory_order_relaxed));
    }

 private:
    friend class LsaStm<TB>;

    ThreadContext(Clock clk, const StmConfig& cfg, std::uint64_t dev,
                  std::shared_ptr<detail::StatsBlock> stats)
        : clk_(std::move(clk)),
          cfg_(cfg),
          dev_(dev),
          stats_(std::move(stats)) {}

    Clock clk_;
    StmConfig cfg_;
    std::uint64_t dev_;
    std::shared_ptr<detail::StatsBlock> stats_;
};

template <typename TB>
class LsaStm {
 public:
    explicit LsaStm(TB& tbase, StmConfig cfg = StmConfig{})
        : tbase_(tbase), cfg_(cfg) {
        if (cfg_.max_versions == 0) cfg_.max_versions = 1;
    }

    LsaStm(const LsaStm&) = delete;
    LsaStm& operator=(const LsaStm&) = delete;

    ThreadContext<TB> make_context() {
        auto block = std::make_shared<detail::StatsBlock>();
        {
            std::lock_guard<std::mutex> g(mu_);
            blocks_.push_back(block);
        }
        // The time base publishes each stamp's deviation from true time;
        // the core compares stamps from two different clocks, so the
        // pairwise uncertainty -- and the validity-range shrink -- is
        // twice that bound.
        return ThreadContext<TB>(tbase_.make_thread_clock(), cfg_,
                                 2 * tbase_.deviation(), std::move(block));
    }

    // Aggregate commit/abort counts over every context ever created.
    TxStats collected_stats() const {
        std::uint64_t c = 0, a = 0;
        std::lock_guard<std::mutex> g(mu_);
        for (const auto& b : blocks_) {
            c += b->commits.load(std::memory_order_relaxed);
            a += b->aborts.load(std::memory_order_relaxed);
        }
        return TxStats(c, a);
    }

    const StmConfig& config() const { return cfg_; }
    TB& time_base() { return tbase_; }

 private:
    TB& tbase_;
    StmConfig cfg_;
    mutable std::mutex mu_;
    std::vector<std::shared_ptr<detail::StatsBlock>> blocks_;
};

}  // namespace chronostm
