// LSA-STM core: the Lazy Snapshot Algorithm engine over the runtime-
// pluggable time-base facade (the paper's central claim is that the time
// base is a replaceable component; everything time-related below goes
// through tb::ThreadClock and tb::TimeBase::deviation(), so engines,
// workloads, and drivers select the base at runtime -- by object or by
// registry key -- instead of instantiating the whole core per base).
//
// Design, following the paper:
//  * Each TVar carries a versioned lock word ("orec"). Unlocked it holds
//    (version_ts << 1); locked it holds (TxDesc* | 1), a pointer to the
//    owner's published commit descriptor, so conflicting threads can
//    inspect the owner, help it finish (LSA-RT commit helping), or ask a
//    contention manager to arbitrate.
//  * Each TVar keeps a bounded history of old versions with validity
//    ranges [from, until), so long read-only transactions can read a
//    consistent-but-old snapshot instead of aborting (multi-version LSA;
//    depth is StmConfig::max_versions). Word-sized T embeds the ring in
//    the TVar (no heap allocation, no pointer chase on commit); wider T
//    heap-allocates it lazily on the first committed write that keeps
//    history, so those TVars stay a few words wide in TL2-like
//    max_versions=1 configurations (detail::HistoryHolder).
//  * A transaction maintains a snapshot interval [lower, upper]. Reads pick
//    the most recent version valid at `upper`; when the current version is
//    too new the snapshot is lazily extended to the present (validating the
//    read set) before falling back to old versions.
//  * Writes are buffered in a lazy write set; commit locks the write set in
//    address order, draws one new timestamp from the time base, validates
//    the read set, then publishes values with the new version timestamp.
//    Once the descriptor is published as Committed, the write-back is
//    claim-based and idempotent: any thread that meets a locked orec can
//    finish the commit on the owner's behalf (StmConfig::help_committers),
//    which keeps the system moving when a committer is preempted.
//  * Conflict resolution is delegated to a pluggable contention manager
//    (StmConfig::contention_manager): suicide, polite (backoff), aggressive,
//    karma, timestamp. Managers that abort the enemy do so cooperatively by
//    CASing the owner's descriptor from Locking/NeedTs to Killed; a
//    descriptor that reached Committed can no longer be killed, only helped.
//  * With an externally synchronized time base, every version's validity
//    range is shrunk at both ends by the pairwise stamp uncertainty (twice
//    the published per-stamp deviation bound: both the version's stamp and
//    the snapshot's stamp may be skewed) -- deviation only ever costs
//    aborts, never correctness, because commit validation is exact (lock
//    words, not clocks) and snapshot reads never admit a version unless it
//    was committed, in true time, before the snapshot.
//
// Hot-path cost model (the structure the micro_stm numbers hang off):
//  * Read/write-set storage lives in the ThreadContext (detail::AccessSets)
//    and is reused across attempts and transactions, so the steady state
//    performs zero heap allocations per transaction. Write records are
//    bump-allocated from a per-context arena (trivially destructible by
//    construction, so arena reset is a pointer rewind) and type-erased
//    through a plain function pointer instead of a vtable.
//  * find_write -- on the read path, the write path, and commit-time read
//    validation -- is a linear scan while the write set is small
//    (<= detail::kInlineScan entries, cache-hot) and an open-addressing
//    hash on TVar* beyond that, so large update transactions cost O(1) per
//    lookup instead of O(W).
//  * Read-after-read is deduplicated through the same inline-then-hash
//    scheme: re-reading a var re-delivers the version already admitted to
//    the snapshot and adds nothing to the read set, keeping try_extend and
//    commit-time validation passes minimal.

#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <new>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include <chronostm/core/epoch_stripes.hpp>
#include <chronostm/stm/config.hpp>
#include <chronostm/timebase/facade.hpp>
#include <chronostm/util/failpoints.hpp>
#include <chronostm/util/pause.hpp>

namespace chronostm {

// How a transaction behaves when it runs into a lock owned by another
// committing transaction (and how hard it retries afterwards).
enum class CmPolicy {
    kSuicide,     // abort self immediately on any conflict
    kPolite,      // bounded spin, then abort self (a.k.a. backoff)
    kAggressive,  // abort the enemy when possible, spin hard otherwise
    kKarma,       // bigger accumulated access set wins; loser backs off
    kTimestamp,   // older transaction wins; younger backs off
};

inline CmPolicy parse_contention_manager(const std::string& name) {
    if (name.empty() || name == "polite" || name == "backoff")
        return CmPolicy::kPolite;
    if (name == "suicide") return CmPolicy::kSuicide;
    if (name == "aggressive") return CmPolicy::kAggressive;
    if (name == "karma") return CmPolicy::kKarma;
    if (name == "timestamp") return CmPolicy::kTimestamp;
    throw std::invalid_argument("chronostm: unknown contention manager: " +
                                name);
}

// The shared knobs (read_extension, lock_spin, epoch_filter, max_retries,
// irrevocable_threshold, stall budgets) live in stm::CommonConfig; the old
// spellings -- cfg.epoch_filter etc. -- are the inherited members.
struct StmConfig : stm::CommonConfig {
    // Versions kept per TVar including the current one; 1 = no history
    // (TL2-like), larger values let long readers survive concurrent
    // updates. Capped at detail::kMaxHistory + 1.
    unsigned max_versions = 8;
    // Commit helping (LSA-RT): threads that meet a lock owned by a
    // transaction whose descriptor already reached Committed finish its
    // write-back instead of waiting it out. Off = plain bounded spinning
    // on foreign locks.
    bool help_committers = true;
    // Conflict arbitration policy; see CmPolicy. Parsed once per LsaStm.
    std::string contention_manager = "polite";
    // Test-only: invoked on the committing thread right after its
    // descriptor is published as Committed (claims armed) and before it
    // applies its own write set -- lets tests freeze a committer at the
    // exact point where helping can take over. Leave empty in production.
    std::function<void()> commit_publish_hook;
};

class TxStats {
 public:
    TxStats() = default;
    TxStats(std::uint64_t commits, std::uint64_t aborts,
            std::uint64_t helped_c = 0, std::uint64_t helped_ts = 0,
            std::uint64_t false_conf = 0)
        : helped_commits(helped_c),
          helped_timestamps(helped_ts),
          false_conflicts(false_conf),
          commits_(commits),
          aborts_(aborts) {}

    std::uint64_t commits() const { return commits_; }
    std::uint64_t aborts() const { return aborts_; }

    // Helping counters (LSA-RT), public so drivers can sum them directly.
    // helped_commits counts help EVENTS -- calls in which a thread applied
    // at least one write record of a foreign decided commit -- not
    // distinct commits: several helpers splitting one large write set each
    // count one event. helped_timestamps is reserved (always 0 today):
    // timestamp helping needs per-attempt draw tagging to be sound -- see
    // the note in core/lsa_stm.hpp's detail namespace.
    std::uint64_t helped_commits = 0;
    std::uint64_t helped_timestamps = 0;

    // Orec-table aliasing events (core/orec_stm.hpp): number of times a
    // transaction observed two DISTINCT granule addresses mapping to the
    // same ownership record -- in its read set (counted once per aliased
    // orec entry) or in its write set at lock time (once per extra granule
    // sharing an already-locked orec). Always 0 for the per-TVar engines,
    // whose metadata cannot alias.
    std::uint64_t false_conflicts = 0;

    // Snapshot-extension traffic: `extensions` counts successful extensions
    // (upper bound moved forward), `extension_fast_hits` the subset that the
    // commit-epoch filter admitted without walking the read set, and
    // `validation_fast_hits` commit-time validations skipped the same way.
    std::uint64_t extensions = 0;
    std::uint64_t extension_fast_hits = 0;
    std::uint64_t validation_fast_hits = 0;

    // Striped-filter traffic: `stripe_fast_hits` counts extension and
    // commit-time validations the per-stripe comparison admitted without
    // walking the read set; `stripe_walks` the times the comparison found a
    // touched stripe bumped and forced the O(R) walk (a disjoint writer in
    // another stripe moves neither). Both 0 with the filter off.
    std::uint64_t stripe_fast_hits = 0;
    std::uint64_t stripe_walks = 0;

    // Read-only commits: empty-write-set transactions that committed without
    // drawing a stamp, taking a lock, or bumping the commit epoch.
    std::uint64_t ro_commits = 0;

    // Total time spent in inter-attempt backoff (util/pause.hpp), rounded
    // down to microseconds from an internal nanosecond accumulator.
    std::uint64_t backoff_us = 0;

    // Degradation-ladder traffic. `escalations` counts acquisitions of the
    // engine-global irrevocability token (auto-escalation in run() plus
    // explicit become_irrevocable calls); `irrevocable_commits` the commits
    // that happened while holding it. `stall_waits` counts lock waits that
    // outlived the polite spin budget (the owner looked preempted);
    // `stalled_aborts` the subset that gave up on a provably stalled owner
    // and aborted through the contention seam. `injected_faults` counts
    // failpoint activations charged to this context (always 0 unless built
    // with CHRONOSTM_FAILPOINTS).
    std::uint64_t irrevocable_commits = 0;
    std::uint64_t escalations = 0;
    std::uint64_t stall_waits = 0;
    std::uint64_t stalled_aborts = 0;
    std::uint64_t injected_faults = 0;

 private:
    std::uint64_t commits_ = 0;
    std::uint64_t aborts_ = 0;
};

// Retry-budget exhaustion: run() aborted max_retries consecutive times
// without the degradation ladder rescuing the transaction (only possible
// when irrevocable_threshold is 0 or above max_retries). Carries the
// context's counters at throw time plus the failed transaction's own abort
// taxonomy, so callers can tell livelock (conflict-dominated: backoff and
// contention management lost) from time-base starvation (freshness-
// dominated: the snapshot could never reach the present).
class RetryExhausted : public std::runtime_error {
 public:
    RetryExhausted(const char* engine, TxStats snapshot,
                   std::uint64_t conflicts, std::uint64_t freshness)
        : std::runtime_error(std::string("chronostm: ") + engine +
                             " transaction exceeded retry bound (" +
                             std::to_string(conflicts) + " conflict / " +
                             std::to_string(freshness) +
                             " freshness aborts)"),
          stats(snapshot),
          conflict_aborts(conflicts),
          freshness_aborts(freshness) {}

    // Context counters at throw time (commits/aborts cover the whole
    // context, not just the failed transaction).
    TxStats stats;
    // The failed transaction's aborts split by class; sums to max_retries.
    std::uint64_t conflict_aborts;
    std::uint64_t freshness_aborts;
};

namespace detail {

inline constexpr unsigned kMaxHistory = 16;

// Write/read sets scan linearly up to this many entries (a handful of
// cache-hot compares beats any hash); past it an open-addressing index on
// TVar* takes over and every lookup is O(1).
inline constexpr std::size_t kInlineScan = 8;

// freshness=true marks aborts where the snapshot could not be extended
// because the time base itself had not advanced past `upper` (a too-new
// version with no usable old one). Only these aborts warrant run()'s
// draw-and-discard stamp: conflict aborts resolve through backoff and must
// not drain batched/sharded counter blocks.
struct AbortTx {
    bool freshness = false;
};

struct StatsBlock {
    std::atomic<std::uint64_t> commits{0};
    std::atomic<std::uint64_t> aborts{0};
    std::atomic<std::uint64_t> helped_commits{0};
    std::atomic<std::uint64_t> helped_timestamps{0};
    std::atomic<std::uint64_t> false_conflicts{0};
    std::atomic<std::uint64_t> extensions{0};
    std::atomic<std::uint64_t> extension_fast_hits{0};
    std::atomic<std::uint64_t> validation_fast_hits{0};
    std::atomic<std::uint64_t> stripe_fast_hits{0};
    std::atomic<std::uint64_t> stripe_walks{0};
    std::atomic<std::uint64_t> ro_commits{0};
    // Nanoseconds internally; TxStats surfaces microseconds.
    std::atomic<std::uint64_t> backoff_ns{0};
    std::atomic<std::uint64_t> irrevocable_commits{0};
    std::atomic<std::uint64_t> escalations{0};
    std::atomic<std::uint64_t> stall_waits{0};
    std::atomic<std::uint64_t> stalled_aborts{0};
    std::atomic<std::uint64_t> injected_faults{0};
};

// Accumulate one stats block's fast-path counters into a TxStats; shared
// by both engines' per-context and aggregate stats assembly.
inline void fill_fast_path_stats(TxStats& s, const StatsBlock& b) {
    s.extensions += b.extensions.load(std::memory_order_relaxed);
    s.extension_fast_hits +=
        b.extension_fast_hits.load(std::memory_order_relaxed);
    s.validation_fast_hits +=
        b.validation_fast_hits.load(std::memory_order_relaxed);
    s.stripe_fast_hits +=
        b.stripe_fast_hits.load(std::memory_order_relaxed);
    s.stripe_walks += b.stripe_walks.load(std::memory_order_relaxed);
    s.ro_commits += b.ro_commits.load(std::memory_order_relaxed);
    s.backoff_us += b.backoff_ns.load(std::memory_order_relaxed) / 1000;
    s.irrevocable_commits +=
        b.irrevocable_commits.load(std::memory_order_relaxed);
    s.escalations += b.escalations.load(std::memory_order_relaxed);
    s.stall_waits += b.stall_waits.load(std::memory_order_relaxed);
    s.stalled_aborts += b.stalled_aborts.load(std::memory_order_relaxed);
    s.injected_faults += b.injected_faults.load(std::memory_order_relaxed);
}

// Engine-global irrevocability gate. Word layout: bit 0 holds the
// irrevocability token, the upper bits count update commits currently in
// flight (each worth 2). Update commits enter before taking their first
// lock and leave after their last unlock or rollback; a transaction that
// escalates first claims the token bit (stalling NEW committers at the
// gate) and then waits for the in-flight count to drain to zero, so the
// irrevocable attempt runs against a quiescent commit pipeline: no lock is
// held by anyone else, no version can change under its feet, and its own
// commit needs no validation. Read-only commits never touch the gate --
// they cannot invalidate anything.
struct IrrevGate {
    std::atomic<std::uint64_t> word{0};
    // Identity of the current token holder (the TxDesc in the LSA engine,
    // the thread context in the orec engine) so conflict arbitration can
    // exempt it from kills.
    std::atomic<const void*> holder{nullptr};

    void enter_commit() {
        std::uint64_t w = word.load(std::memory_order_relaxed);
        for (;;) {
            if (w & 1u) {
                // An irrevocable transaction is running; it is guaranteed
                // to finish, so waiting here is bounded.
                std::this_thread::yield();
                w = word.load(std::memory_order_relaxed);
                continue;
            }
            if (word.compare_exchange_weak(w, w + 2,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed))
                return;
        }
    }
    void exit_commit() { word.fetch_sub(2, std::memory_order_acq_rel); }

    void acquire(const void* who) {
        std::uint64_t w = word.load(std::memory_order_relaxed);
        for (;;) {
            if (w & 1u) {  // one irrevocable transaction at a time
                std::this_thread::yield();
                w = word.load(std::memory_order_relaxed);
                continue;
            }
            if (word.compare_exchange_weak(w, w | 1u,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed))
                break;
        }
        holder.store(who, std::memory_order_release);
        // Drain: in-flight committers finish (or roll back) on their own;
        // none of them can block on us because we hold no locks yet.
        std::uint64_t spins = 0;
        while (word.load(std::memory_order_acquire) >> 1 != 0) {
            cpu_relax();
            if ((++spins & 63u) == 0) std::this_thread::yield();
        }
    }
    void release() {
        holder.store(nullptr, std::memory_order_release);
        word.fetch_and(~std::uint64_t{1}, std::memory_order_acq_rel);
    }
    bool held_by(const void* who) const {
        return who != nullptr &&
               holder.load(std::memory_order_acquire) == who;
    }
};

// Exception-safe gate exit: commit() arms this after enter_commit() so
// every path out -- success, rollback returns, AbortTx, or a throwing
// value copy during write-back -- decrements the in-flight count.
struct GateGuard {
    IrrevGate* gate = nullptr;
    ~GateGuard() {
        if (gate) gate->exit_commit();
    }
};

// Exception-safe token release for run(): the normal commit path releases
// the token in txn_commit; this guard covers abnormal exits (an exception
// escaping the user functor while escalated must not leave the engine
// wedged behind a stuck token).
struct TokenGuard {
    IrrevGate* gate = nullptr;
    bool* held = nullptr;
    ~TokenGuard() {
        if (held != nullptr && *held) {
            gate->release();
            *held = false;
        }
    }
};

// Commit descriptor life cycle. Kill CASes are only legal from Locking or
// NeedTs; Committed is the point of no return.
enum TxStatus : int {
    kTxIdle = 0,
    kTxLocking,    // acquiring write-set locks in address order
    kTxNeedTs,     // locks held, waiting for a commit timestamp
    kTxCommitted,  // decided; write-back may be claimed by anybody
    kTxKilled,     // a contention manager aborted this attempt
};

class TVarBase;

// Type-erased write record: lives in the owning context's arena, applied
// (value publish + orec unlock) by the owner or by a helper. Type erasure
// is a plain function pointer -- no vtable, no virtual destructor -- so
// records are trivially destructible and the arena can recycle them by
// rewinding a pointer.
struct CommitRec {
    TVarBase* var = nullptr;
    std::uint64_t locked_word = 0;  // unlocked word this lock replaced
    void (*apply_fn)(CommitRec*, std::uint64_t new_ts, std::uint64_t old_ts,
                     unsigned keep_old, bool publish) = nullptr;
    // Full apply: store the new value and publish/unlock the version word
    // with its own release fence. Used by helpers, which claim records one
    // at a time and must leave each one fully published.
    void apply(std::uint64_t new_ts, std::uint64_t old_ts,
               unsigned keep_old) {
        apply_fn(this, new_ts, old_ts, keep_old, true);
    }
    // Data-only apply for the owner's batched write-back: stores the value
    // (and history rotation) but leaves the version word locked. The caller
    // publishes all claimed records after one shared release fence.
    void apply_data(std::uint64_t new_ts, std::uint64_t old_ts,
                    unsigned keep_old) {
        apply_fn(this, new_ts, old_ts, keep_old, false);
    }
};

// Bump allocator for write records, reused across attempts/transactions:
// reset() rewinds to the first chunk without freeing, so the steady state
// allocates nothing. Records must be trivially destructible (enforced at
// the placement-new site) -- reset never runs destructors.
class WriteArena {
 public:
    static constexpr std::size_t kChunkBytes = 16 * 1024;

    void* allocate(std::size_t size, std::size_t align) {
        for (;;) {
            if (cur_ < chunks_.size()) {
                // Align the actual address, not the chunk offset: new[]
                // only guarantees 16-byte chunk bases, and an alignas(64)
                // record type must still get 64-aligned storage.
                const auto base = reinterpret_cast<std::uintptr_t>(
                    chunks_[cur_].mem.get());
                const std::uintptr_t p =
                    (base + used_ + align - 1) & ~(align - 1);
                const std::size_t off_end = (p - base) + size;
                if (off_end <= chunks_[cur_].cap) {
                    used_ = off_end;
                    return reinterpret_cast<void*>(p);
                }
                ++cur_;
                used_ = 0;
                continue;
            }
            const std::size_t cap = std::max(kChunkBytes, size + align);
            chunks_.push_back(
                Chunk{std::make_unique<std::byte[]>(cap), cap});
            cur_ = chunks_.size() - 1;
            used_ = 0;
        }
    }

    void reset() {
        cur_ = 0;
        used_ = 0;
    }

 private:
    struct Chunk {
        std::unique_ptr<std::byte[]> mem;
        std::size_t cap;
    };
    std::vector<Chunk> chunks_;
    std::size_t cur_ = 0;
    std::size_t used_ = 0;
};

// Flat append-only array used for the read and write sets. Exists because
// std::vector::push_back compiles to a reload-heavy sequence (the header
// lives behind two pointers and the growth call clobbers registers) that
// shows up at ~6ns/read on the hot path. Here the hot path is one
// predictable branch plus an indexed store; growth is outlined and cold.
// Capacity persists across clear(), so the steady state never allocates.
template <typename T>
class FlatVec {
    static_assert(std::is_trivially_copyable_v<T>,
                  "FlatVec is for POD access-set entries");

 public:
    void push_back(const T& v) {
        if (__builtin_expect(n_ == cap_, 0)) grow();
        data_[n_++] = v;
    }

    void clear() { n_ = 0; }
    std::uint32_t size() const { return n_; }
    bool empty() const { return n_ == 0; }
    T& operator[](std::size_t i) { return data_[i]; }
    const T& operator[](std::size_t i) const { return data_[i]; }
    T* begin() { return data_.get(); }
    T* end() { return data_.get() + n_; }
    const T* begin() const { return data_.get(); }
    const T* end() const { return data_.get() + n_; }

 private:
    __attribute__((noinline)) void grow() {
        const std::uint32_t cap = cap_ == 0 ? 64 : cap_ * 2;
        auto bigger = std::make_unique<T[]>(cap);
        for (std::uint32_t i = 0; i < n_; ++i) bigger[i] = data_[i];
        data_ = std::move(bigger);
        cap_ = cap;
    }

    std::unique_ptr<T[]> data_;
    std::uint32_t n_ = 0;
    std::uint32_t cap_ = 0;
};

// Open-addressing hash map from TVar* to a 32-bit payload, with O(1)
// generation-tagged clear (stale buckets read as empty; no per-clear
// memset -- a u32 generation wrap triggers one hard reset every 4G
// transactions). Capacity persists across transactions; growth is the only
// allocation and stops once the table covers the workload's largest access
// set. find_or_stage remembers where an absent key's probe ended, so the
// hot "miss then insert" pattern costs a single probe walk.
class PtrIndex {
 public:
    static constexpr std::uint32_t kNone = ~std::uint32_t{0};

    void clear() {
        if (__builtin_expect(++gen_ == 0, 0)) hard_reset();
        size_ = 0;
    }

    // Probes for `key`, growing first if an insert might not fit. Returns
    // the mapped value, or kNone with the landing bucket staged for a
    // subsequent commit_stage (valid until the next probe or clear).
    __attribute__((always_inline)) inline std::uint32_t find_or_stage(const void* key) {
        if (__builtin_expect((size_ + 1) * 4 > cap_ * 3, 0)) grow();
        std::size_t i = slot_of(key);
        for (;;) {
            const Bucket& b = buckets_[i];
            if (b.gen != gen_) {
                stage_ = i;
                return kNone;
            }
            if (b.key == key) return b.val;
            i = (i + 1) & mask_;
        }
    }

    // Inserts at the bucket the last find_or_stage miss landed on.
    __attribute__((always_inline)) inline void commit_stage(const void* key, std::uint32_t val) {
        Bucket& b = buckets_[stage_];
        b.key = key;
        b.val = val;
        b.gen = gen_;
        ++size_;
    }

    void insert(const void* key, std::uint32_t val) {
        if (find_or_stage(key) == kNone) commit_stage(key, val);
        else update(key, val);
    }

 private:
    struct Bucket {
        const void* key = nullptr;
        std::uint32_t val = 0;
        std::uint32_t gen = 0;  // live iff gen == PtrIndex::gen_
    };

    std::size_t slot_of(const void* key) const {
        // Fibonacci hashing; low bits of a TVar* are alignment zeros, so
        // shift them out before mixing.
        const auto h = static_cast<std::uint64_t>(
                           reinterpret_cast<std::uintptr_t>(key) >> 4) *
                       0x9E3779B97F4A7C15ull;
        return static_cast<std::size_t>(h >> shift_) & mask_;
    }

    void update(const void* key, std::uint32_t val) {
        std::size_t i = slot_of(key);
        while (buckets_[i].key != key) i = (i + 1) & mask_;
        buckets_[i].val = val;
    }

    __attribute__((noinline)) void grow() {
        auto old = std::move(buckets_);
        const std::size_t old_cap = cap_;
        const std::uint32_t live = gen_;
        cap_ = cap_ == 0 ? 64 : cap_ * 2;
        buckets_ = std::make_unique<Bucket[]>(cap_);
        mask_ = cap_ - 1;
        shift_ = 1;
        while ((std::size_t{1} << (64 - shift_)) > cap_) ++shift_;
        gen_ = 1;
        size_ = 0;
        for (std::size_t i = 0; i < old_cap; ++i)
            if (old[i].gen == live) insert(old[i].key, old[i].val);
    }

    void hard_reset() {
        for (std::size_t i = 0; i < cap_; ++i) buckets_[i].gen = 0;
        gen_ = 1;
    }

    std::unique_ptr<Bucket[]> buckets_;
    std::size_t cap_ = 0;
    std::size_t mask_ = 0;
    unsigned shift_ = 63;
    std::size_t size_ = 0;
    std::size_t stage_ = 0;
    std::uint32_t gen_ = 1;
};

// The read set IS an open-addressing hash table on TVar*: nothing ever
// needs the reads in insertion order (try_extend and commit validation
// iterate in any order, rollback never touches them), so keeping a side
// index next to an append array would double the per-read store traffic
// for nothing. One probe answers "already read?" and, on a miss, leaves
// the landing slot staged so admission is a single store. clear() is a
// generation bump (u32; a wrap triggers one hard reset every 4G
// transactions), and capacity persists, so the steady state never
// allocates or memsets.
class ReadSet {
 public:
    struct Entry {
        TVarBase* var;
        std::uint64_t word;  // unlocked lock word observed at read time
        std::uint32_t gen;   // live iff gen == ReadSet::gen_
    };

    void clear() {
        if (__builtin_expect(++gen_ == 0, 0)) hard_reset();
        // Capacity is a high-water mark, and all_of scans it in full -- so
        // one huge read-only transaction would tax every later small
        // transaction on this context. Shrink once the table has been
        // nearly empty for a sustained stretch (hysteresis avoids
        // realloc churn under alternating big/small transactions).
        if (__builtin_expect(cap_ > 64 && size_ * 16 < cap_, 0)) {
            if (++small_streak_ >= 128) shrink();
        } else {
            small_streak_ = 0;
        }
        size_ = 0;
    }

    std::uint32_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    // Probes for `var`: its live entry, or nullptr with the landing slot
    // staged for commit_stage (valid until the next probe or clear).
    Entry* find_or_stage(TVarBase* var) {
        if (__builtin_expect((size_ + 1) * 4 > cap_ * 3, 0)) grow();
        std::size_t i = slot_of(var);
        for (;;) {
            Entry& e = entries_[i];
            if (e.gen != gen_) {
                stage_ = i;
                return nullptr;
            }
            if (e.var == var) return &e;
            i = (i + 1) & mask_;
        }
    }

    // Inserts at the slot the last find_or_stage miss landed on.
    void commit_stage(TVarBase* var, std::uint64_t word) {
        Entry& e = entries_[stage_];
        e.var = var;
        e.word = word;
        e.gen = gen_;
        ++size_;
    }

    // Applies `f` to every live entry until it returns false; returns
    // whether every entry passed. Iteration order is table order.
    template <typename F>
    bool all_of(F&& f) const {
        for (std::size_t i = 0; i < cap_; ++i) {
            const Entry& e = entries_[i];
            if (e.gen == gen_ && !f(e)) return false;
        }
        return true;
    }

 private:
    std::size_t slot_of(const void* key) const {
        // Fibonacci hashing; low bits of a TVar* are alignment zeros, so
        // shift them out before mixing.
        const auto h = static_cast<std::uint64_t>(
                           reinterpret_cast<std::uintptr_t>(key) >> 4) *
                       0x9E3779B97F4A7C15ull;
        return static_cast<std::size_t>(h >> shift_) & mask_;
    }

    __attribute__((noinline)) void grow() {
        auto old = std::move(entries_);
        const std::size_t old_cap = cap_;
        const std::uint32_t live = gen_;
        cap_ = cap_ == 0 ? 64 : cap_ * 2;
        entries_ = std::make_unique<Entry[]>(cap_);  // zeroed: gen 0 = dead
        mask_ = cap_ - 1;
        shift_ = 1;
        while ((std::size_t{1} << (64 - shift_)) > cap_) ++shift_;
        gen_ = 1;
        for (std::size_t i = 0; i < old_cap; ++i) {
            if (old[i].gen != live) continue;
            std::size_t j = slot_of(old[i].var);
            while (entries_[j].gen == gen_) j = (j + 1) & mask_;
            entries_[j] = old[i];
            entries_[j].gen = gen_;
        }
    }

    void hard_reset() {
        for (std::size_t i = 0; i < cap_; ++i) entries_[i].gen = 0;
        gen_ = 1;
    }

    // Called from clear() with size_ entries about to be discarded anyway,
    // so no rehash: just drop to a capacity sized for the recent traffic.
    __attribute__((noinline)) void shrink() {
        std::size_t cap = 64;
        while (cap < std::size_t{size_} * 8) cap *= 2;
        cap_ = cap;
        entries_ = std::make_unique<Entry[]>(cap_);
        mask_ = cap_ - 1;
        shift_ = 1;
        while ((std::size_t{1} << (64 - shift_)) > cap_) ++shift_;
        gen_ = 1;
        small_streak_ = 0;
    }

    std::unique_ptr<Entry[]> entries_;
    std::size_t cap_ = 0;
    std::size_t mask_ = 0;
    unsigned shift_ = 63;
    std::size_t stage_ = 0;
    std::uint32_t size_ = 0;
    std::uint32_t gen_ = 1;
    std::uint32_t small_streak_ = 0;
};

// Per-thread access-set storage, owned by the ThreadContext and reused by
// every attempt of every transaction it runs: tables keep their capacity,
// the arena keeps its chunks. This is what makes the steady-state hot path
// allocation-free.
struct AccessSets {
    ReadSet reads;
    FlatVec<CommitRec*> writes;  // records live in `arena`
    WriteArena arena;
    PtrIndex write_index;  // TVar* -> index into `writes` (pre-sort only)
    // Commit-time scratch: slot indices this owner claimed, so the batched
    // write-back can publish them all after a single release fence.
    FlatVec<std::uint32_t> claimed;
    // Striped epoch-filter state for the in-flight attempt: the read-set
    // stripe signature plus the per-stripe epoch snapshots taken at first
    // touch (core/epoch_stripes.hpp).
    StripeScratch stripes;

    void reset() {
        reads.clear();
        writes.clear();
        arena.reset();
        write_index.clear();
        claimed.clear();
        stripes.reset();
    }
};

// Published commit descriptor, one per thread context, reused across
// transactions. Locked orecs point at it. Reuse is tag-guarded: write-set
// slots are claimable only under the current sequence number, and slot
// arrays only ever grow (retired arrays are kept until the descriptor
// dies), so a stale helper can always dereference what it loaded and its
// claim CAS is guaranteed to fail.
struct TxDesc {
    std::atomic<int> status{kTxIdle};
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> new_ts{0};
    std::atomic<unsigned> keep_old{0};
    // Contention-manager metadata for the in-flight attempt.
    std::atomic<std::uint64_t> karma{0};
    std::atomic<std::uint64_t> start_ts{0};

    struct Slot {
        std::atomic<std::uint64_t> claim{0};  // 2*seq armed, 2*seq+1 taken
        std::atomic<CommitRec*> rec{nullptr};
    };
    // Capacity travels with the array: a helper that pairs a stale array
    // with a newer (larger) n_slots clamps to the array's own capacity
    // instead of indexing out of bounds (the claim tags then make every
    // stale access a failed CAS).
    struct SlotArray {
        explicit SlotArray(std::size_t c)
            : cap(c), slots(std::make_unique<Slot[]>(c)) {}
        const std::size_t cap;
        const std::unique_ptr<Slot[]> slots;
    };
    std::atomic<SlotArray*> slots{nullptr};
    std::atomic<std::size_t> n_slots{0};

    // Owner-only; helpers read the array through the atomic pointer.
    SlotArray* ensure_capacity(std::size_t n) {
        auto* cur = slots.load(std::memory_order_relaxed);
        if (cur != nullptr && n <= cur->cap) return cur;
        std::size_t want = cur != nullptr ? cur->cap * 2 : 8;
        while (want < n) want *= 2;
        arenas_.push_back(std::make_unique<SlotArray>(want));
        slots.store(arenas_.back().get(), std::memory_order_release);
        return arenas_.back().get();
    }

 private:
    std::vector<std::unique_ptr<SlotArray>> arenas_;
};

// Finish a foreign Committed transaction's write-back. Claims are tagged
// with the descriptor's sequence number, so helping a descriptor that has
// since been reused degrades to a no-op (every CAS fails). Returns true if
// this call applied at least one write record.
inline bool help_apply(TxDesc* d, StatsBlock* stats) {
    if (d->status.load(std::memory_order_acquire) != kTxCommitted)
        return false;
    const std::uint64_t q = d->seq.load(std::memory_order_acquire);
    auto* arr = d->slots.load(std::memory_order_acquire);
    std::size_t n = d->n_slots.load(std::memory_order_acquire);
    if (arr == nullptr || n == 0) return false;
    // NOTE: everything loaded so far may be stale (the descriptor may have
    // been recycled for a later attempt between the loads) -- staleness is
    // caught by the claim tag below, never acted on, and `arr` and `n` may
    // even be from different attempts, so n is clamped to the array's own
    // capacity. The write-set metadata must NOT be read here: a claim for
    // attempt q+1 could otherwise be applied with attempt q's new_ts.
    if (n > arr->cap) n = arr->cap;
    auto* slots = arr->slots.get();
    bool helped = false;
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t expect = 2 * q;
        if (!slots[i].claim.compare_exchange_strong(
                expect, 2 * q + 1, std::memory_order_acq_rel,
                std::memory_order_relaxed))
            continue;
        // A successful claim proves attempt q is still in write-back (the
        // owner recycles the descriptor only once every slot has been
        // claimed and applied), so metadata read AFTER the claim is
        // exactly attempt q's, stable, and visible: the claim CAS
        // synchronizes with the owner's post-publish claim store.
        auto* rec = slots[i].rec.load(std::memory_order_relaxed);
        const std::uint64_t nts = d->new_ts.load(std::memory_order_relaxed);
        const unsigned keep = d->keep_old.load(std::memory_order_relaxed);
        rec->apply(nts, rec->locked_word >> 1, keep);
        helped = true;
    }
    if (helped && stats != nullptr)
        stats->helped_commits.fetch_add(1, std::memory_order_relaxed);
    return helped;
}

// Timestamp helping (a helper drawing the commit stamp on a stalled
// committer's behalf) is deliberately NOT implemented: the correctness of
// snapshot reads hinges on every commit stamp being drawn AFTER the whole
// write set is locked, and a helper cannot prove its draw happened inside
// the current attempt's window (the descriptor may have been recycled
// between its status check and its draw). A pre-lock stamp would let a
// fresh reader accept the commit's writes inside a snapshot that still
// contains pre-lock state. Helpers therefore only ever finish decided
// commits; StatsBlock::helped_timestamps stays reserved for a future
// scheme that can tag draws per attempt.

}  // namespace detail

class Transaction;
class ThreadContext;
class LsaStm;
// InlineHist picks where the multi-version history ring lives (see
// detail::HistoryHolder): the default embeds the full-depth ring in the
// var for word-sized T. The engine facade's slot cells override it to
// false -- a 24-byte var with a lazily heap-allocated ring -- so node-based
// structures can afford one var per field.
template <typename T, bool InlineHist = (sizeof(T) <= 8 && alignof(T) <= 8)>
class TVar;

namespace detail {

// Untyped base so transactions can track read/write sets across TVar<T>
// instantiations. The lock word is the only shared-memory rendezvous point:
// (version_ts << 1) unlocked, (TxDesc* | 1) locked. Not polymorphic -- a
// vtable pointer would widen every TVar for nothing; nobody owns TVars
// through this base.
class TVarBase {
 public:
    TVarBase() = default;
    TVarBase(const TVarBase&) = delete;
    TVarBase& operator=(const TVarBase&) = delete;

 protected:
    ~TVarBase() = default;

    friend class chronostm::Transaction;
    std::atomic<std::uint64_t> vlock_{0};
};

// Old versions live in a ring written only while the lock bit is held;
// readers snapshot entries and recheck vlock_ to detect slot reuse.
template <typename T>
struct VersionHistory {
    struct OldVersion {
        std::atomic<T> value{};
        std::atomic<std::uint64_t> from{0};
        std::atomic<std::uint64_t> until{0};
    };
    // Control words first: for word-sized TVars the ring is embedded in
    // the var itself, and this keeps the commit-touched head/size on the
    // TVar's first cache line next to vlock_ and value_.
    std::atomic<unsigned> head{0};
    std::atomic<unsigned> size{0};
    std::array<OldVersion, kMaxHistory> slots{};
};

// Where a TVar's history ring lives. Word-sized T (<= 8 bytes) embeds the
// full-depth ring in the TVar itself: no heap allocation ever, and no
// pointer chase on commit_write or old-version reads. The embedded ring
// adds cold cache lines of footprint per var, but they are touched only by
// history machinery -- plain reads and single-version commits stay on the
// first line, where head/size sit next to vlock_/value_. Wider T keeps the
// PR 3 shape: one lazy heap allocation on the first committed write that
// keeps history, so single-version configurations stay a few words wide.
template <typename T, bool Inline = (sizeof(T) <= 8 && alignof(T) <= 8)>
struct HistoryHolder {
    VersionHistory<T>* hist_for_write() { return &h_; }
    const VersionHistory<T>* hist_for_read() const { return &h_; }
    void clear_history() { h_.size.store(0, std::memory_order_release); }
    VersionHistory<T> h_{};
};

template <typename T>
struct HistoryHolder<T, false> {
    HistoryHolder() = default;
    ~HistoryHolder() { delete h_.load(std::memory_order_acquire); }
    HistoryHolder(const HistoryHolder&) = delete;
    HistoryHolder& operator=(const HistoryHolder&) = delete;

    // Called with the owning TVar's lock bit held by exactly one thread
    // (the committing owner or the helper that claimed the record), so the
    // one-time allocation races nobody.
    VersionHistory<T>* hist_for_write() {
        auto* h = h_.load(std::memory_order_relaxed);
        if (h == nullptr) {
            h = new VersionHistory<T>;
            h_.store(h, std::memory_order_release);
        }
        return h;
    }
    const VersionHistory<T>* hist_for_read() const {
        return h_.load(std::memory_order_acquire);
    }
    void clear_history() {
        auto* h = h_.load(std::memory_order_relaxed);
        if (h != nullptr) h->size.store(0, std::memory_order_release);
    }
    std::atomic<VersionHistory<T>*> h_{nullptr};
};

}  // namespace detail

using TVarBase = detail::TVarBase;

template <typename T, bool InlineHist>
class TVar : public TVarBase {
    static_assert(std::is_trivially_copyable_v<T>,
                  "TVar<T> requires a trivially copyable T: values are read "
                  "optimistically under a seqlock");

 public:
    explicit TVar(T initial) : value_(initial) {}

    // Defined after Transaction (which they call into).
    T get(Transaction& tx);
    void set(Transaction& tx, T v);

    // Non-transactional read for post-run invariant checks (quiesced state
    // only: racy by construction while transactions run).
    T unsafe_peek() const { return value_.load(std::memory_order_acquire); }

 private:
    friend class Transaction;

    using History = detail::VersionHistory<T>;

    // Called with the lock bit held by exactly one thread (the committing
    // owner or the helper that claimed this record). `old_ts` is the
    // version being replaced (the lock word no longer carries it: locked
    // words hold the descriptor pointer). The release fence keeps the
    // (earlier) lock store visible before any of the data stores below on
    // weakly-ordered hardware, so a reader that observes new data and then
    // rechecks the lock word is guaranteed to see the lock (or the final
    // version) -- the other half of the seqlock lives in Transaction::read
    // / read_old_version. With publish=false (owner's batched write-back)
    // both fence and version-publish are elided: the caller has already
    // issued one fence covering every lock store of the batch and will
    // publish all version words after another single fence.
    void commit_write(const T& v, std::uint64_t new_ts, std::uint64_t old_ts,
                      unsigned keep_old, bool publish) {
        if (publish) std::atomic_thread_fence(std::memory_order_release);
        if (keep_old > 0) {
            History* h = hist_.hist_for_write();
            const unsigned head =
                (h->head.load(std::memory_order_relaxed) + 1) %
                detail::kMaxHistory;
            auto& slot = h->slots[head];
            slot.value.store(value_.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
            slot.from.store(old_ts, std::memory_order_relaxed);
            slot.until.store(new_ts, std::memory_order_relaxed);
            h->head.store(head, std::memory_order_release);
            const unsigned cap = std::min(keep_old, detail::kMaxHistory);
            const unsigned sz = h->size.load(std::memory_order_relaxed);
            h->size.store(std::min(sz + 1, cap), std::memory_order_release);
        } else {
            hist_.clear_history();
        }
        value_.store(v, std::memory_order_relaxed);
        if (publish)
            this->vlock_.store(new_ts << 1, std::memory_order_release);
    }

    std::atomic<T> value_;
    detail::HistoryHolder<T, InlineHist> hist_;
};

class Transaction {
 public:
    using Clock = tb::ThreadClock;

    Transaction(const Transaction&) = delete;
    Transaction& operator=(const Transaction&) = delete;

    // Explicit early abort: unwinds out of the user lambda; run() retries.
    // Note that abort() defeats the degradation ladder by design: an
    // irrevocable attempt that the user functor aborts retries irrevocably.
    [[noreturn]] void abort() { throw detail::AbortTx{}; }

    // Escalate this attempt to irrevocable serial mode mid-flight: claim
    // the engine-global token, drain in-flight update commits, then
    // re-validate the snapshot once against the now-quiescent heap. On
    // validation failure the attempt aborts (conflict class) but the token
    // stays with the owning context, so the retry runs irrevocably from
    // its first read. Idempotent; from here to commit nothing can abort
    // this transaction.
    void become_irrevocable() {
        if (irrevocable_) return;
        if (!*token_held_) {
            gate_->acquire(desc_);
            *token_held_ = true;
            stats_->escalations.fetch_add(1, std::memory_order_relaxed);
        }
        // A snapshot that fell back to old versions cannot serialize in
        // the present; everything else is settled by one full validation
        // walk -- after it succeeds no commit can run until we release.
        if (read_old_ || !walk_read_set()) throw detail::AbortTx{};
        irrevocable_ = true;
    }

    bool irrevocable() const { return irrevocable_; }

    std::uint64_t snapshot_lower() const { return lower_; }
    std::uint64_t snapshot_upper() const { return upper_; }

    // Deduplicated set sizes (distinct TVars); exposed for tests and
    // instrumentation.
    std::size_t read_set_size() const { return sets_->reads.size(); }
    std::size_t write_set_size() const { return sets_->writes.size(); }

    // Instrumentation/bench hook: attempt a snapshot extension right now,
    // exactly as a read that meets a too-new version would.
    bool try_extend_now() { return try_extend(); }

 private:
    friend class ThreadContext;
    template <typename T2, bool H2>
    friend class chronostm::TVar;

    template <typename T, bool H>
    struct WriteRec : detail::CommitRec {
        T value;
        static void do_apply(detail::CommitRec* rec,
                             std::uint64_t new_ts, std::uint64_t old_ts,
                             unsigned keep_old, bool publish) {
            auto* self = static_cast<WriteRec*>(rec);
            static_cast<TVar<T, H>*>(self->var)->commit_write(
                self->value, new_ts, old_ts, keep_old, publish);
        }
    };

    Transaction(Clock& clk, const StmConfig& cfg, CmPolicy cm,
                std::uint64_t dev, detail::StatsBlock* stats,
                detail::TxDesc* desc, detail::AccessSets* sets,
                detail::EpochStripes* stripes,
                detail::IrrevGate* gate, bool* token_held)
        : clk_(clk), cfg_(cfg), cm_(cm), dev_(dev), stats_(stats),
          desc_(desc), sets_(sets), stripes_(stripes), gate_(gate),
          token_held_(token_held), irrevocable_(*token_held) {
        sets_->reset();
        CHRONOSTM_FP_SINK(&stats_->injected_faults);
        // Per-stripe epoch snapshots are taken lazily at the stripe's
        // first touch, always BEFORE the touched var's lock-word load
        // (touch_stripe in the read path): a writer that commits between
        // snapshot and admission shows up as a stripe mismatch (false
        // negative, walk runs), never as a stale fast hit. See DESIGN.md
        // "Striped epoch soundness".
        upper_ = clk_.get_time();
        start_ts_ = upper_;
        // The snapshot's lower bound starts at the begin observation, not
        // at 0: read_old_version() must never serialize this transaction
        // before a version that provably ended before it began. Without
        // this floor, a deviating time base (batched/sharded stamps) lets
        // a fresh reader fall back to a history entry that died before
        // begin -- a stale read where the time-base contract promises a
        // freshness abort. Exact counters are unaffected (the newest
        // version is always admissible there before any fallback runs).
        lower_ = upper_;
        upper_cap_ = ~std::uint64_t{0};
    }

    std::uint64_t my_lock_word() const {
        return reinterpret_cast<std::uintptr_t>(desc_) | 1u;
    }

    static detail::TxDesc* decode_owner(std::uint64_t locked_word) {
        return reinterpret_cast<detail::TxDesc*>(
            static_cast<std::uintptr_t>(locked_word & ~std::uint64_t{1}));
    }

    // Cooperative kill: only attempts that have not reached Committed can
    // die. A stale kill (the descriptor moved on to a later attempt) costs
    // that attempt a spurious abort, never correctness.
    static void try_kill(detail::TxDesc* d) {
        int s = d->status.load(std::memory_order_acquire);
        if (s == detail::kTxLocking || s == detail::kTxNeedTs)
            d->status.compare_exchange_strong(s, detail::kTxKilled,
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed);
    }

    // Block on a foreign lock until it clears, helping and arbitrating per
    // the contention manager; returns the (unlocked) current word. Throws
    // AbortTx when the manager decides this transaction should yield.
    std::uint64_t wait_on_foreign_lock(TVarBase* var) {
        std::uint64_t spins = 0;
        const std::uint64_t budget =
            cm_ == CmPolicy::kAggressive
                ? 64ull * cfg_.lock_spin
                : static_cast<std::uint64_t>(cfg_.lock_spin);
        bool counted_stall = false;
        for (;;) {
            const std::uint64_t w =
                var->vlock_.load(std::memory_order_acquire);
            if (!(w & 1u)) return w;
            // If a manager killed *us* while we were stuck here, yield now
            // (only possible while we hold locks, i.e. during commit). The
            // irrevocability-token holder is exempt: nothing may abort it.
            if (!irrevocable_ &&
                desc_->status.load(std::memory_order_relaxed) ==
                    detail::kTxKilled)
                throw detail::AbortTx{};
            auto* owner = decode_owner(w);
            if (cfg_.help_committers &&
                detail::help_apply(owner, stats_))
                continue;
            // The token holder wins every arbitration: nobody kills it, and
            // it never yields -- it outwaits (or helps) the lock owner,
            // which is guaranteed to finish because an irrevocable attempt
            // only ever meets locks of already-in-flight commits.
            const bool owner_irrevocable = gate_->held_by(owner);
            switch (cm_) {
                case CmPolicy::kSuicide:
                    if (!irrevocable_) throw detail::AbortTx{};
                    break;
                case CmPolicy::kAggressive:
                    if (!owner_irrevocable) try_kill(owner);
                    break;
                case CmPolicy::kKarma:
                    if (!owner_irrevocable &&
                        sets_->reads.size() + sets_->writes.size() >
                            owner->karma.load(std::memory_order_relaxed))
                        try_kill(owner);
                    break;
                case CmPolicy::kTimestamp:
                    if (!owner_irrevocable &&
                        start_ts_ <
                            owner->start_ts.load(std::memory_order_relaxed))
                        try_kill(owner);
                    break;
                case CmPolicy::kPolite:
                    break;
            }
            ++spins;
            // Outliving the polite spin budget means the owner looks
            // preempted, not merely slow; record the stall once per wait.
            if (spins > cfg_.lock_spin && !counted_stall) {
                counted_stall = true;
                stats_->stall_waits.fetch_add(1, std::memory_order_relaxed);
            }
            if (spins > budget) {
                if (irrevocable_) {
                    spins = 0;  // unbounded wait; the owner must finish
                } else {
                    // Give up on the stalled owner and yield through the
                    // contention seam (run() backs off, then escalates).
                    stats_->stalled_aborts.fetch_add(
                        1, std::memory_order_relaxed);
                    throw detail::AbortTx{};
                }
            }
            cpu_relax();
            // Single-CPU hosts: the lock owner cannot run unless we yield.
            if ((spins & 255u) == 0) std::this_thread::yield();
        }
    }

    template <typename T, bool H>
    T read(TVar<T, H>& var) {
        if (auto* rec = find_write(&var))
            return static_cast<WriteRec<T, H>*>(rec)->value;

        // Chaos harness: an armed lsa_read site may delay here or demand an
        // injected abort; the token holder never honors the abort half.
        if (CHRONOSTM_FAILPOINT(lsa_read) && !irrevocable_)
            throw detail::AbortTx{};

        if (irrevocable_) {
            // Quiescent heap: no update commit can run while this
            // transaction holds the token, so the current version IS the
            // snapshot -- no admission check, no read-set bookkeeping, no
            // seqlock recheck. Only lower_ advances, keeping the commit
            // stamp above every version this attempt read (commit() pulls
            // the time base forward if the drawn stamp lags it).
            std::uint64_t w1 = var.vlock_.load(std::memory_order_acquire);
            if (w1 & 1u) w1 = wait_on_foreign_lock(&var);
            const T v = var.value_.load(std::memory_order_acquire);
            lower_ = std::max(lower_, (w1 >> 1) + dev_);
            return v;
        }

        // Read-after-read dedup: if the var is already in the read set, the
        // admitted version is re-delivered and the read set stays as-is. On
        // a miss the probe's landing slot stays staged, so admission below
        // is a single store.
        const auto* dup = sets_->reads.find_or_stage(&var);

        // Stripe snapshot BEFORE the admitting lock-word load: a writer
        // publishing to this stripe after the snapshot is a visible bump
        // at extension/validation time (spurious walk at worst). A dup
        // read's stripe was snapshotted at its first admission, which also
        // preceded this load.
        if (cfg_.epoch_filter && dup == nullptr) touch_stripe(&var);

        for (;;) {
            std::uint64_t w1 = var.vlock_.load(std::memory_order_acquire);
            if (w1 & 1u) w1 = wait_on_foreign_lock(&var);
            const std::uint64_t wv = w1 >> 1;
            // Validity of the current version starts at wv, shrunk by the
            // pairwise stamp uncertainty dev_.
            if (wv + dev_ <= upper_) {
                const T v = var.value_.load(std::memory_order_acquire);
                // Seqlock recheck; the fence pairs with the release fence
                // in commit_write so that seeing new data implies seeing
                // the lock word that published it.
                std::atomic_thread_fence(std::memory_order_acquire);
                if (var.vlock_.load(std::memory_order_acquire) != w1)
                    continue;  // raced with a commit; retry the read
                if (dup != nullptr) {
                    // Same version as the first read (the normal case; a
                    // conflicting commit cannot produce an admissible newer
                    // version, see below) -- nothing new to track. A word
                    // that differs can only mean snapshot damage; refuse.
                    if (dup->word != w1) throw detail::AbortTx{};
                    return v;
                }
                lower_ = std::max(lower_, wv + dev_);
                sets_->reads.commit_stage(&var, w1);
                return v;
            }
            // Current version is newer than the snapshot. A duplicate read
            // can only land here if the var changed since we read it, and a
            // changed var means extension would fail; go straight to the
            // old-version fallback, which returns the still-valid version
            // we first read. First choice otherwise: lazily extend the
            // snapshot to the present.
            bool conflict = false;
            if (dup == nullptr && cfg_.read_extension) {
                if (try_extend()) continue;
                conflict = extend_conflict_;
            }
            // Fall back to an old version -- only useful to transactions
            // that have not written yet (an update transaction must commit
            // "in the present", which a stale snapshot cannot reach).
            if (sets_->writes.empty()) {
                T v{};
                if (read_old_version(var, w1, v)) return v;
            }
            // The version is too new for the snapshot and the snapshot
            // could not move forward. WHY it could not decides the abort
            // class: a failed read-set walk means a writer hit our reads
            // (conflict -- backoff resolves it, the retry must not drain
            // stamp blocks), while time-not-advanced and the unusable-
            // old-version case are freshness -- run() may draw-and-
            // discard a stamp so batched/sharded counters advance.
            throw detail::AbortTx{!conflict};
        }
    }

    template <typename T, bool H>
    void write(TVar<T, H>& var, T v) {
        if (auto* rec = find_write(&var)) {
            // Write-after-write: overwrite in place, the set stays minimal.
            static_cast<WriteRec<T, H>*>(rec)->value = std::move(v);
            return;
        }
        static_assert(std::is_trivially_destructible_v<WriteRec<T, H>>,
                      "write records must be trivially destructible: the "
                      "arena reclaims them without running destructors");
        void* mem = sets_->arena.allocate(sizeof(WriteRec<T, H>),
                                          alignof(WriteRec<T, H>));
        auto* rec = new (mem) WriteRec<T, H>;
        rec->var = &var;
        rec->apply_fn = &WriteRec<T, H>::do_apply;
        rec->value = std::move(v);
        auto& ws = sets_->writes;
        ws.push_back(rec);
        if (ws.size() == detail::kInlineScan + 1) {
            // Crossed the inline threshold: index everything accumulated.
            for (std::uint32_t i = 0; i < ws.size(); ++i)
                sets_->write_index.insert(ws[i]->var, i);
        } else if (ws.size() > detail::kInlineScan + 1) {
            // find_write just missed on this key: its staged bucket is ours.
            sets_->write_index.commit_stage(rec->var, ws.size() - 1);
        }
        writes_sorted_ = false;
    }

    // First touch of a stripe: load its epoch snapshot and set the
    // signature bit. Callers must invoke this BEFORE the lock-word load
    // that admits a read of a var in the stripe (soundness invariant in
    // DESIGN.md "Striped epoch soundness").
    void touch_stripe(const void* p) {
        auto& sc = sets_->stripes;
        const unsigned s = stripes_->stripe_of(p);
        const std::uint64_t bit = std::uint64_t{1} << s;
        if (!(sc.sig & bit)) {
            sc.snap[s] = (*stripes_)[s].load(std::memory_order_acquire);
            sc.sig |= bit;
        }
    }

    // All touched stripes unchanged since their snapshots? Re-loads each
    // signature stripe, recording the fresh values in `fresh` (indexed by
    // stripe id) so the caller can re-anchor AFTER a successful walk via
    // reanchor_stripes(). The snapshots must NOT be updated here: a
    // failed walk proves a conflicting writer hit the read set, and
    // absorbing its bump into the snapshot would let a later extension
    // fast-hit past the very commit the walk just caught (the
    // old-version fallback keeps read-only transactions alive after a
    // failed extension, so the stale snapshot WOULD be consulted again
    // -- the chaos bank oracle catches exactly this tear).
    bool stripes_clean(std::uint64_t* fresh) {
        auto& sc = sets_->stripes;
        bool clean = true;
        std::uint64_t sig = sc.sig;
        while (sig != 0) {
            const unsigned s =
                static_cast<unsigned>(__builtin_ctzll(sig));
            sig &= sig - 1;
            const std::uint64_t e =
                (*stripes_)[s].load(std::memory_order_acquire);
            fresh[s] = e;
            if (e != sc.snap[s]) clean = false;
        }
        return clean;
    }

    // Move the stripe snapshots to the pre-walk values captured by
    // stripes_clean(). Only sound after a SUCCESSFUL walk: any bump <=
    // fresh[s] whose publish the walk did not see keeps its var locked
    // until that publish, so the walk would have failed on the locked
    // word.
    void reanchor_stripes(const std::uint64_t* fresh) {
        auto& sc = sets_->stripes;
        std::uint64_t sig = sc.sig;
        while (sig != 0) {
            const unsigned s =
                static_cast<unsigned>(__builtin_ctzll(sig));
            sig &= sig - 1;
            sc.snap[s] = fresh[s];
        }
    }

    // Try to move `upper` to the present; all reads so far must still be
    // the most recent versions (a changed or locked word means the
    // extension would break snapshot consistency, so we refuse). The
    // striped commit-epoch filter short-circuits the O(R) walk: if no
    // writer bumped any stripe this transaction's read set hashes into
    // since its snapshots, no read-set word can have changed (every
    // conflicting writer bumps the covering stripe while holding the
    // var's lock and unlocks only by publishing). `nu` is drawn BEFORE
    // the stripe loads so a writer invisible to the stripe check
    // necessarily drew its commit stamp after nu -- the deviation-aware
    // admission rule then keeps its versions out of the extended
    // snapshot. See DESIGN.md "Striped epoch soundness".
    // Failure reason is recorded in extend_conflict_: false means time
    // simply has not advanced past upper_ (a FRESHNESS condition), true
    // means walk_read_set() found a changed or locked read-set word (a
    // data CONFLICT -- per the abort taxonomy in DESIGN.md, backoff
    // resolves it and the retry must not drain batched/sharded stamp
    // blocks with a forced draw).
    bool try_extend() {
        extend_conflict_ = false;
        std::uint64_t nu = clk_.get_time();
        nu = std::min(nu, upper_cap_);
        if (nu <= upper_) return false;
        if (cfg_.epoch_filter) {
            std::uint64_t fresh[detail::EpochStripes::kMaxStripes];
            if (stripes_clean(fresh)) {
                upper_ = nu;
                stats_->extensions.fetch_add(1, std::memory_order_relaxed);
                stats_->extension_fast_hits.fetch_add(
                    1, std::memory_order_relaxed);
                stats_->stripe_fast_hits.fetch_add(
                    1, std::memory_order_relaxed);
                return true;
            }
            stats_->stripe_walks.fetch_add(1, std::memory_order_relaxed);
            if (!walk_read_set()) {
                extend_conflict_ = true;
                return false;
            }
            upper_ = nu;
            reanchor_stripes(fresh);
            stats_->extensions.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
        if (!walk_read_set()) {
            extend_conflict_ = true;
            return false;
        }
        upper_ = nu;
        stats_->extensions.fetch_add(1, std::memory_order_relaxed);
        return true;
    }

    // Full O(R) read-set validation: every read var still carries exactly
    // the admitted (unlocked) word.
    bool walk_read_set() const {
        return sets_->reads.all_of(
            [](const detail::ReadSet::Entry& e) {
                return e.var->vlock_.load(std::memory_order_acquire) ==
                       e.word;
            });
    }

    // Search the version history of `var` for a version covering the
    // snapshot; `w1` is the unlocked lock word the caller just observed.
    template <typename T, bool H>
    bool read_old_version(TVar<T, H>& var, std::uint64_t w1, T& out) {
        const auto* h = var.hist_.hist_for_read();
        if (h == nullptr) return false;  // never kept history
        const unsigned n = h->size.load(std::memory_order_acquire);
        const unsigned head = h->head.load(std::memory_order_acquire);
        for (unsigned k = 0; k < n; ++k) {
            const auto& slot =
                h->slots[(head + detail::kMaxHistory - k) %
                         detail::kMaxHistory];
            const std::uint64_t from =
                slot.from.load(std::memory_order_acquire);
            const std::uint64_t until =
                slot.until.load(std::memory_order_acquire);
            const T v = slot.value.load(std::memory_order_acquire);
            std::atomic_thread_fence(std::memory_order_acquire);  // seqlock
            if (var.vlock_.load(std::memory_order_acquire) != w1)
                return false;  // history mutated under us; caller re-reads
            // Valid over [from, until); shrink by the pairwise stamp
            // uncertainty at both ends. Underflow guard: a range narrower
            // than 2*dev+1 is unusable (this is exactly how sync error
            // raises abort rates).
            if (until < from || until - from < 2 * dev_ + 1) continue;
            const std::uint64_t lo = from + dev_;
            const std::uint64_t hi = until - 1 - dev_;
            if (lo > upper_ || hi < lower_) continue;
            lower_ = std::max(lower_, lo);
            upper_ = std::min(upper_, hi);
            upper_cap_ = std::min(upper_cap_, hi);
            read_old_ = true;
            out = v;
            return true;
        }
        return false;
    }

    // O(1) write-set lookup past the inline threshold; shared by the read
    // path and the write path. Positions in write_index are only valid
    // before commit() sorts the write set -- commit-time validation uses
    // find_write_sorted instead.
    detail::CommitRec* find_write(TVarBase* var) {
        auto& ws = sets_->writes;
        if (ws.size() <= detail::kInlineScan) {
            for (auto* rec : ws)
                if (rec->var == var) return rec;
            return nullptr;
        }
        const std::uint32_t pos = sets_->write_index.find_or_stage(var);
        return pos == detail::PtrIndex::kNone ? nullptr : ws[pos];
    }

    // Write-set lookup once commit() has address-sorted the set: binary
    // search on the sorted order (the execution-time index holds stale
    // positions past the sort and would cost a rebuild).
    detail::CommitRec* find_write_sorted(TVarBase* var) {
        auto& ws = sets_->writes;
        auto* it = std::lower_bound(
            ws.begin(), ws.end(), var,
            [](const detail::CommitRec* rec, const TVarBase* v) {
                return rec->var < v;
            });
        return it != ws.end() && (*it)->var == var ? *it : nullptr;
    }

    // Commit protocol: lock the write set in address order (descriptor
    // pointer goes into each orec), publish NeedTs and draw or receive the
    // commit timestamp, validate reads, publish Committed, then claim-and-
    // apply the write set -- racing any helpers doing the same. Returns
    // false on conflict or kill (caller counts the abort and retries).
    bool commit() {
        auto& writes = sets_->writes;
        if (writes.empty()) {
            // Read-only fast path: the snapshot reads are consistent and
            // the transaction serializes at its snapshot -- no stamp drawn,
            // no lock taken, no epoch bump.
            stats_->ro_commits.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
        // An update transaction that resorted to old versions cannot
        // serialize at commit time. This is a freshness failure, not a
        // data conflict: the snapshot fell back to history because it
        // could not extend to the present, and on counter time bases the
        // present only moves when stamps are drawn -- if every thread is
        // stuck here nobody draws and get_time() stalls forever. Flag it
        // so run() pulls the counter forward.
        if (read_old_) {
            commit_stamp_stale_ = true;
            return false;
        }

        if (!writes_sorted_) {
            std::sort(writes.begin(), writes.end(),
                      [](const detail::CommitRec* a,
                         const detail::CommitRec* b) {
                          return a->var < b->var;
                      });
            writes_sorted_ = true;
        }

        // Update commits run inside the irrevocability gate: held at the
        // door while a token holder is active, counted in flight otherwise
        // so an escalating transaction can drain the pipeline. The token
        // holder itself skips the gate -- it IS the gate. The guard exits
        // on every path out, including exceptions.
        detail::GateGuard gate_guard;
        if (!irrevocable_) {
            gate_->enter_commit();
            gate_guard.gate = gate_;
        }

        auto* d = desc_;
        const std::uint64_t q = d->seq.load(std::memory_order_relaxed) + 1;
        d->karma.store(sets_->reads.size() + writes.size(),
                       std::memory_order_relaxed);
        d->start_ts.store(start_ts_, std::memory_order_relaxed);
        d->status.store(detail::kTxLocking, std::memory_order_release);

        std::size_t locked = 0;
        try {
            for (; locked < writes.size(); ++locked) {
                auto* rec = writes[locked];
                for (;;) {
                    if (!irrevocable_ &&
                        d->status.load(std::memory_order_relaxed) ==
                            detail::kTxKilled)
                        return rollback(locked);
                    std::uint64_t w =
                        rec->var->vlock_.load(std::memory_order_relaxed);
                    if (w & 1u) {
                        wait_on_foreign_lock(rec->var);
                        continue;
                    }
                    if (rec->var->vlock_.compare_exchange_weak(
                            w, my_lock_word(), std::memory_order_acq_rel,
                            std::memory_order_relaxed)) {
                        rec->locked_word = w;
                        break;
                    }
                }
            }
        } catch (const detail::AbortTx&) {
            return rollback(locked);
        }

        // Chaos harness: fake a committer preempted right after taking its
        // last write lock, before anything is published.
        (void)CHRONOSTM_FAILPOINT(lsa_commit_post_lock);

        // Locks held: draw the commit timestamp. It MUST be drawn after
        // the last lock is acquired -- a pre-lock stamp would let a reader
        // that began after the stamp accept our writes next to pre-lock
        // state it already read (see the timestamp-helping note above).
        int expect = detail::kTxLocking;
        if (irrevocable_) {
            // The token holder ignores stale kills (a racer holding a
            // descriptor pointer from an earlier attempt): it cannot be
            // aborted, so the status moves by plain store.
            d->status.store(detail::kTxNeedTs, std::memory_order_release);
        } else if (!d->status.compare_exchange_strong(
                       expect, detail::kTxNeedTs,
                       std::memory_order_acq_rel,
                       std::memory_order_relaxed)) {
            return rollback(writes.size());  // killed while locking
        }
        // Bump every DISTINCT stripe the write set hashes into while every
        // write lock is held and BEFORE the stamp draw: a reader whose
        // stripe check misses a bump drew its extension time before our
        // stamp existed, so admission keeps our versions out; a reader
        // that validates while we still hold a conflicting lock fails on
        // the locked word. The bumps are unconditional past this point
        // even if validation below aborts -- a spurious bump only costs
        // other readers of those stripes a walk. For stripes our own read
        // set also touched, the fetch_add return doubles as a cheap
        // cleanliness pre-check (a foreign bump since our snapshot shows
        // up as prev != snap).
        bool epoch_clean = false;
        std::uint64_t wsig = 0;  // stripes this commit bumped
        if (cfg_.epoch_filter) {
            epoch_clean = true;
            const auto& sc = sets_->stripes;
            for (const auto* rec : writes) {
                const unsigned s = stripes_->stripe_of(rec->var);
                const std::uint64_t bit = std::uint64_t{1} << s;
                if (wsig & bit) continue;
                wsig |= bit;
                const std::uint64_t prev =
                    (*stripes_)[s].fetch_add(1, std::memory_order_acq_rel);
                if ((sc.sig & bit) && prev != sc.snap[s])
                    epoch_clean = false;
            }
        }
        // Chaos harness: stall in the window the epoch filter's post-draw
        // re-check exists to close.
        (void)CHRONOSTM_FAILPOINT(lsa_commit_pre_stamp);
        std::uint64_t commit_ts = clk_.get_new_ts();
        // Re-check the touched stripes AFTER drawing commit_ts: the bump
        // loop alone proves the read set clean only up to the bumps, but
        // the commit serializes at commit_ts, drawn later. A writer that
        // bumps in between may draw a SMALLER stamp (draw order on the
        // shared counter is not fixed by bump order) and publish into our
        // read set below commit_ts. Requiring every read-signature stripe
        // to read exactly snapshot + (1 if we bumped it ourselves) closes
        // that window: a foreign writer whose counter RMW preceded ours
        // has its bump ordered before this load (bump -> its draw -> our
        // draw -> this load), so any writer the load misses drew its
        // stamp after ours -- the same residual class a post-draw walk
        // admits (a walk cannot see a writer that locks after it runs).
        // See DESIGN.md "Striped epoch soundness".
        if (epoch_clean) {
            const auto& sc = sets_->stripes;
            std::uint64_t sig = sc.sig;
            while (sig != 0) {
                const unsigned s =
                    static_cast<unsigned>(__builtin_ctzll(sig));
                sig &= sig - 1;
                const std::uint64_t expect =
                    sc.snap[s] + ((wsig >> s) & 1u);
                if ((*stripes_)[s].load(std::memory_order_acquire) !=
                    expect) {
                    epoch_clean = false;
                    break;
                }
            }
        }

        // Commit-time validation: if no other writer committed into any
        // stripe this transaction's read set touched since its snapshots
        // (stripes unchanged up to our own bumps, re-confirmed after the
        // stamp draw), no read-set word can have changed -- skip the O(R)
        // walk. Our own locks are covered too: we could only have locked
        // a read var whose word was still the one we admitted (the lock
        // CAS saved it in locked_word and nobody else bumped its stripe).
        bool reads_valid;
        if (irrevocable_) {
            // Token held since before this attempt's first read (or since
            // a successful become_irrevocable walk): the commit pipeline
            // has been quiescent throughout, so no read-set word can have
            // changed -- validation is vacuous.
            reads_valid = true;
        } else if (epoch_clean) {
            reads_valid = true;
            stats_->validation_fast_hits.fetch_add(
                1, std::memory_order_relaxed);
            stats_->stripe_fast_hits.fetch_add(1,
                                               std::memory_order_relaxed);
        } else {
            if (cfg_.epoch_filter)
                stats_->stripe_walks.fetch_add(1,
                                               std::memory_order_relaxed);
            reads_valid = sets_->reads.all_of(
                [this](const detail::ReadSet::Entry& e) {
                    const std::uint64_t cur =
                        e.var->vlock_.load(std::memory_order_acquire);
                    if (cur == e.word) return true;
                    if (cur == my_lock_word()) {
                        // Locked by us; valid iff the version under our
                        // lock is still the one we read. The sorted write
                        // set makes this a binary search, so the validation
                        // pass is O(R log W), not the seed's O(R*W) rescan.
                        auto* rec = find_write_sorted(e.var);
                        if (rec != nullptr && rec->locked_word == e.word)
                            return true;
                    }
                    return false;
                });
        }
        if (!reads_valid) return rollback(writes.size());
        if (lower_ > commit_ts) {
            if (irrevocable_) {
                // The token holder cannot abort on a freshness problem:
                // pull the time base forward by drawing (and discarding)
                // stamps until the commit stamp clears the snapshot's
                // lower bound. Each draw advances the counter, so this
                // terminates.
                do {
                    commit_ts = clk_.get_new_ts();
                } while (lower_ > commit_ts);
            } else {
                // The stamp lags the snapshot's lower bound -- a time-base
                // freshness problem (batched/sharded blocks), not a data
                // conflict. Flag it so run() draws the counter forward.
                commit_stamp_stale_ = true;
                return rollback(writes.size());
            }
        }

        const unsigned keep_old =
            cfg_.max_versions > 0
                ? std::min(cfg_.max_versions - 1, detail::kMaxHistory)
                : 0;
        // One timestamp for the whole write set (stamping vars
        // individually could tear the commit across the version history
        // when the time base hands out tied stamps), bumped above every
        // locked version for per-var monotonicity under TL2 sharing and
        // coarse clocks.
        std::uint64_t new_ts = commit_ts;
        for (const auto* rec : writes)
            new_ts = std::max(new_ts, (rec->locked_word >> 1) + 1);

        // Stage the helper-visible write-set view. Claims stay tagged with
        // the previous attempt until after the Committed CAS below, so no
        // helper can apply an attempt that might still be killed.
        auto* slots = d->ensure_capacity(writes.size())->slots.get();
        for (std::size_t i = 0; i < writes.size(); ++i)
            slots[i].rec.store(writes[i], std::memory_order_relaxed);
        d->n_slots.store(writes.size(), std::memory_order_relaxed);
        d->new_ts.store(new_ts, std::memory_order_relaxed);
        d->keep_old.store(keep_old, std::memory_order_relaxed);
        d->seq.store(q, std::memory_order_relaxed);

        expect = detail::kTxNeedTs;
        if (irrevocable_) {
            d->status.store(detail::kTxCommitted,
                            std::memory_order_release);
        } else if (!d->status.compare_exchange_strong(
                       expect, detail::kTxCommitted,
                       std::memory_order_acq_rel,
                       std::memory_order_relaxed)) {
            return rollback(writes.size());  // killed at the buzzer
        }
        for (std::size_t i = 0; i < writes.size(); ++i)
            slots[i].claim.store(2 * q, std::memory_order_release);

        if (cfg_.commit_publish_hook) cfg_.commit_publish_hook();
        // Chaos harness: a committer parked here is decided but has
        // applied nothing -- the window commit helping exists for.
        (void)CHRONOSTM_FAILPOINT(lsa_commit_pre_writeback);

        // Claim-and-apply our own write set, racing helpers for each slot.
        // Batched write-back: claim every slot first, run the data stores
        // for all claimed records, then publish their version words behind
        // a single release fence -- one fence per batch instead of one per
        // record. Helpers that win claims keep the per-record fenced path
        // (apply with publish=true), so mixed ownership stays correct
        // var-by-var.
        auto& claimed = sets_->claimed;
        claimed.clear();
        for (std::size_t i = 0; i < writes.size(); ++i) {
            std::uint64_t expect_claim = 2 * q;
            if (slots[i].claim.compare_exchange_strong(
                    expect_claim, 2 * q + 1, std::memory_order_acq_rel,
                    std::memory_order_relaxed))
                claimed.push_back(static_cast<std::uint32_t>(i));
        }
        // Fence #1: the (earlier) lock stores stay visible before any data
        // store -- a reader that observes new data and rechecks the lock
        // word must see the lock (see commit_write's seqlock note).
        std::atomic_thread_fence(std::memory_order_release);
        for (std::uint32_t i = 0; i < claimed.size(); ++i) {
            auto* rec = writes[claimed[i]];
            rec->apply_data(new_ts, rec->locked_word >> 1, keep_old);
        }
        // Chaos harness: data applied, version words still locked.
        (void)CHRONOSTM_FAILPOINT(lsa_commit_pre_unlock);
        // Fence #2: all data stores precede every version publish below
        // ([atomics.fences]: fence-release paired with the readers'
        // acquire loads of the version word). kFencedPublishOrder is
        // relaxed except under TSan, which cannot model thread fences.
        std::atomic_thread_fence(std::memory_order_release);
        for (std::uint32_t i = 0; i < claimed.size(); ++i)
            writes[claimed[i]]->var->vlock_.store(
                new_ts << 1, kFencedPublishOrder);
        // Wait until every orec is unlocked (a helper may still be midway
        // through a claimed slot) before the write records -- which that
        // helper dereferences -- can be recycled along with the arena.
        for (const auto* rec : writes) {
            std::uint64_t spins = 0;
            while (rec->var->vlock_.load(std::memory_order_acquire) ==
                   my_lock_word()) {
                cpu_relax();
                if ((++spins & 255u) == 0) std::this_thread::yield();
            }
        }
        d->status.store(detail::kTxIdle, std::memory_order_release);
        return true;
    }

    // Abort path while holding the first `n` write-set locks: restore the
    // saved words and retire the descriptor attempt.
    bool rollback(std::size_t n) {
        auto& writes = sets_->writes;
        for (std::size_t i = 0; i < n; ++i) {
            auto* rec = writes[i];
            rec->var->vlock_.store(rec->locked_word,
                                   std::memory_order_release);
        }
        desc_->status.store(detail::kTxIdle, std::memory_order_release);
        return false;
    }

    Clock& clk_;
    const StmConfig& cfg_;
    CmPolicy cm_;
    std::uint64_t dev_;
    detail::StatsBlock* stats_;
    detail::TxDesc* desc_;
    detail::AccessSets* sets_;
    detail::EpochStripes* stripes_;
    detail::IrrevGate* gate_;
    // Owning context's token flag: true while the context holds the
    // engine-global irrevocability token (it survives aborted attempts,
    // so the retry of a failed escalation reruns irrevocably).
    bool* token_held_;
    bool irrevocable_ = false;
    std::uint64_t lower_ = 0;
    std::uint64_t upper_ = 0;
    std::uint64_t upper_cap_ = 0;
    std::uint64_t start_ts_ = 0;
    bool read_old_ = false;
    bool writes_sorted_ = false;
    // Set by commit() when it failed only because the drawn stamp lagged
    // the snapshot (lower_ > commit_ts); run() treats that retry as a
    // freshness abort and draws the time base forward.
    bool commit_stamp_stale_ = false;
    // Why the last try_extend() returned false: true when the read-set
    // walk found a changed word (conflict), false when time had not
    // advanced (freshness). Reset at every try_extend() entry.
    bool extend_conflict_ = false;
};

template <typename T, bool InlineHist>
inline T TVar<T, InlineHist>::get(Transaction& tx) {
    return tx.read(*this);
}
template <typename T, bool InlineHist>
inline void TVar<T, InlineHist>::set(Transaction& tx, T v) {
    tx.write(*this, std::move(v));
}

// Per-thread handle: owns a thread clock, a stats block, a commit
// descriptor registered with the parent LsaStm, and the pooled access-set
// storage every transaction attempt reuses. Movable; not thread-safe (one
// context per thread, one live transaction per context).
class ThreadContext {
 public:
    using Clock = tb::ThreadClock;

    // Runs `f` as a transaction until it commits, with bounded retry and
    // exponential backoff. `f` takes Transaction& and may return a
    // value, which run() passes through from the committed attempt.
    template <typename F>
    auto run(F&& f) {
        using R = std::invoke_result_t<F&, Transaction&>;
        // Abnormal-exit insurance: an exception escaping the user functor
        // (or the RetryExhausted below) while escalated must release the
        // token; the normal commit path releases it in txn_commit first.
        detail::TokenGuard token_guard{gate_, &token_held_};
        std::uint64_t conflict_aborts = 0, freshness_aborts = 0;
        for (unsigned attempt = 0;; ++attempt) {
            bool freshness = false;
            maybe_escalate(attempt);
            try {
                Transaction tx = txn_begin();
                if constexpr (std::is_void_v<R>) {
                    f(tx);
                    if (txn_commit(tx)) return;
                } else {
                    R r = f(tx);
                    if (txn_commit(tx)) return r;
                }
                freshness = tx.commit_stamp_stale_;
            } catch (const detail::AbortTx& abort) {
                stats_->aborts.fetch_add(1, std::memory_order_relaxed);
                freshness = abort.freshness;
            }
            freshness ? ++freshness_aborts : ++conflict_aborts;
            if (attempt + 1 >= cfg_.max_retries)
                throw RetryExhausted("lsa", stats(), conflict_aborts,
                                     freshness_aborts);
            abort_pause(attempt, freshness);
        }
    }

    // Degradation ladder, final rung: once a transaction has aborted
    // irrevocable_threshold times in a row, claim the engine-global token
    // so the next attempt runs irrevocably (quiescent commit pipeline,
    // guaranteed commit). The token stays with the context until a commit
    // succeeds or run() unwinds.
    void maybe_escalate(unsigned attempt) {
        if (token_held_ || cfg_.irrevocable_threshold == 0 ||
            attempt < cfg_.irrevocable_threshold)
            return;
        gate_->acquire(desc_.get());
        token_held_ = true;
        stats_->escalations.fetch_add(1, std::memory_order_relaxed);
    }

    // Post-abort pause, outlined so run()'s hot path (begin -> f ->
    // commit, no abort) stays small enough to keep user code inlined
    // into it. Force time forward on repeated FRESHNESS aborts by
    // drawing (and discarding) a stamp: clock time bases advance on
    // their own, but a counter whose committers draw timestamp BLOCKS
    // (batched_counter) only moves when stamps are consumed -- an abort
    // storm on a hot var could otherwise hold get_time still forever,
    // and a snapshot that can never reach the present retries forever
    // (freshness needs upper >= version + 2*dev). Conflict aborts
    // resolve through backoff alone and must not drain the
    // batched/sharded stamp blocks. The converse holds too: a freshness
    // abort is not contention -- nobody holds anything this attempt is
    // waiting on, the snapshot is merely stale -- so it retries
    // immediately after the draw. Backing off there would serialize
    // single-thread batched/sharded workloads behind sleep time for no
    // benefit.
    __attribute__((noinline)) void abort_pause(unsigned attempt,
                                               bool freshness) {
        if (freshness) {
            if (attempt >= 1) clk_.get_new_ts();
            return;
        }
        const auto b0 = std::chrono::steady_clock::now();
        chronostm::backoff(
            attempt, reinterpret_cast<std::uintptr_t>(stats_.get()));
        stats_->backoff_ns.fetch_add(
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - b0)
                    .count()),
            std::memory_order_relaxed);
    }

    // Explicit transaction control for adapters and staged tests; run() is
    // the preferred loop. The returned transaction is valid for one
    // attempt: reads/writes may throw detail::AbortTx, and txn_commit
    // reports success. Statistics are counted like run() does.
    Transaction txn_begin() {
        return Transaction(clk_, cfg_, cm_, dev_, stats_.get(),
                               desc_.get(), &sets_, stripes_, gate_,
                               &token_held_);
    }

    bool txn_commit(Transaction& tx) {
        if (tx.commit()) {
            stats_->commits.fetch_add(1, std::memory_order_relaxed);
            if (tx.irrevocable_)
                stats_->irrevocable_commits.fetch_add(
                    1, std::memory_order_relaxed);
            if (token_held_) {
                gate_->release();
                token_held_ = false;
            }
            return true;
        }
        stats_->aborts.fetch_add(1, std::memory_order_relaxed);
        return false;
    }

    TxStats stats() const {
        TxStats s(
            stats_->commits.load(std::memory_order_relaxed),
            stats_->aborts.load(std::memory_order_relaxed),
            stats_->helped_commits.load(std::memory_order_relaxed),
            stats_->helped_timestamps.load(std::memory_order_relaxed),
            stats_->false_conflicts.load(std::memory_order_relaxed));
        detail::fill_fast_path_stats(s, *stats_);
        return s;
    }

 private:
    friend class LsaStm;

    ThreadContext(Clock clk, const StmConfig& cfg, CmPolicy cm,
                  std::uint64_t dev,
                  std::shared_ptr<detail::StatsBlock> stats,
                  std::shared_ptr<detail::TxDesc> desc,
                  detail::EpochStripes* stripes,
                  detail::IrrevGate* gate)
        : clk_(std::move(clk)),
          cfg_(cfg),
          cm_(cm),
          dev_(dev),
          stats_(std::move(stats)),
          desc_(std::move(desc)),
          stripes_(stripes),
          gate_(gate) {}

    Clock clk_;
    StmConfig cfg_;
    CmPolicy cm_;
    std::uint64_t dev_;
    std::shared_ptr<detail::StatsBlock> stats_;
    std::shared_ptr<detail::TxDesc> desc_;
    detail::EpochStripes* stripes_;
    detail::IrrevGate* gate_;
    // True while this context holds the engine-global irrevocability
    // token; survives aborted attempts so a failed escalation retries
    // irrevocably instead of re-queuing for the token.
    bool token_held_ = false;
    detail::AccessSets sets_;
};

class LsaStm {
 public:
    // The handle is held by value: registry-made bases stay alive through
    // it, wrapped ones borrow (the concrete object must outlive the STM).
    explicit LsaStm(tb::TimeBase tbase, StmConfig cfg = StmConfig{})
        : tbase_(std::move(tbase)),
          cfg_(std::move(cfg)),
          cm_(parse_contention_manager(cfg_.contention_manager)),
          epoch_stripes_(cfg_.filter_stripes) {
        if (cfg_.max_versions == 0) cfg_.max_versions = 1;
        cfg_.filter_stripes = epoch_stripes_.count();
    }

    LsaStm(const LsaStm&) = delete;
    LsaStm& operator=(const LsaStm&) = delete;

    ThreadContext make_context() {
        auto block = std::make_shared<detail::StatsBlock>();
        auto desc = std::make_shared<detail::TxDesc>();
        {
            std::lock_guard<std::mutex> g(mu_);
            blocks_.push_back(block);
            // Descriptors are pinned for the STM's lifetime: a helper may
            // hold a pointer to one (read out of a lock word) after the
            // owning context has been destroyed.
            descs_.push_back(desc);
        }
        // The time base publishes each stamp's deviation from true time;
        // the core compares stamps from two different clocks, so the
        // pairwise uncertainty -- and the validity-range shrink -- is
        // twice that bound.
        return ThreadContext(tbase_.make_thread_clock(), cfg_, cm_,
                                 2 * tbase_.deviation(), std::move(block),
                                 std::move(desc), &epoch_stripes_,
                                 &irrev_gate_);
    }

    // Aggregate counters over every context ever created.
    TxStats collected_stats() const {
        std::uint64_t c = 0, a = 0, hc = 0, ht = 0, fc = 0;
        std::lock_guard<std::mutex> g(mu_);
        TxStats partial;
        for (const auto& b : blocks_) {
            c += b->commits.load(std::memory_order_relaxed);
            a += b->aborts.load(std::memory_order_relaxed);
            hc += b->helped_commits.load(std::memory_order_relaxed);
            ht += b->helped_timestamps.load(std::memory_order_relaxed);
            fc += b->false_conflicts.load(std::memory_order_relaxed);
            detail::fill_fast_path_stats(partial, *b);
        }
        TxStats s(c, a, hc, ht, fc);
        s.extensions = partial.extensions;
        s.extension_fast_hits = partial.extension_fast_hits;
        s.validation_fast_hits = partial.validation_fast_hits;
        s.stripe_fast_hits = partial.stripe_fast_hits;
        s.stripe_walks = partial.stripe_walks;
        s.ro_commits = partial.ro_commits;
        s.backoff_us = partial.backoff_us;
        s.irrevocable_commits = partial.irrevocable_commits;
        s.escalations = partial.escalations;
        s.stall_waits = partial.stall_waits;
        s.stalled_aborts = partial.stalled_aborts;
        s.injected_faults = partial.injected_faults;
        return s;
    }

    // Total epoch bumps across all stripes: one per DISTINCT stripe a
    // writer commit's write set touched, at the point it reached the
    // stamp draw. With filter_stripes=1 this is the PR 7 engine-global
    // commit-epoch word. Exposed for tests and instrumentation.
    std::uint64_t commit_epoch() const { return epoch_stripes_.sum(); }

    // Which stripe covers an address -- lets tests and benches construct
    // provably aliased or provably disjoint footprints.
    unsigned filter_stripe_of(const void* p) const {
        return epoch_stripes_.stripe_of(p);
    }
    unsigned filter_stripes() const { return epoch_stripes_.count(); }

    const StmConfig& config() const { return cfg_; }
    CmPolicy contention_policy() const { return cm_; }
    tb::TimeBase& time_base() { return tbase_; }

    // True while some transaction holds the irrevocability token; exposed
    // for tests and instrumentation.
    bool irrevocable_active() const {
        return irrev_gate_.word.load(std::memory_order_acquire) & 1u;
    }

 private:
    tb::TimeBase tbase_;
    StmConfig cfg_;
    CmPolicy cm_;
    // Cache-line-padded epoch stripes: a writer commit bumps only the
    // stripes its write set hashes into; readers load only the stripes
    // their read set touched. filter_stripes=1 degenerates to the old
    // single commit-epoch word.
    detail::EpochStripes epoch_stripes_;
    // Irrevocability gate (token bit + in-flight update-commit count);
    // own cache line, touched twice per update commit.
    alignas(64) detail::IrrevGate irrev_gate_;
    mutable std::mutex mu_;
    std::vector<std::shared_ptr<detail::StatsBlock>> blocks_;
    std::vector<std::shared_ptr<detail::TxDesc>> descs_;
};

}  // namespace chronostm
