// LSA-STM core: the Lazy Snapshot Algorithm engine, templated on the time
// base (the paper's central claim is that the time base is a replaceable
// component; everything time-related below goes through TB::ThreadClock and
// TB::deviation()).
//
// Design, following the paper:
//  * Each TVar carries a versioned lock word ("orec"). Unlocked it holds
//    (version_ts << 1); locked it holds (TxDesc* | 1), a pointer to the
//    owner's published commit descriptor, so conflicting threads can
//    inspect the owner, help it finish (LSA-RT commit helping), or ask a
//    contention manager to arbitrate.
//  * Each TVar keeps a bounded history of old versions with validity
//    ranges [from, until), so long read-only transactions can read a
//    consistent-but-old snapshot instead of aborting (multi-version LSA;
//    depth is StmConfig::max_versions).
//  * A transaction maintains a snapshot interval [lower, upper]. Reads pick
//    the most recent version valid at `upper`; when the current version is
//    too new the snapshot is lazily extended to the present (validating the
//    read set) before falling back to old versions.
//  * Writes are buffered in a lazy write set; commit locks the write set in
//    address order, draws one new timestamp from the time base, validates
//    the read set, then publishes values with the new version timestamp.
//    Once the descriptor is published as Committed, the write-back is
//    claim-based and idempotent: any thread that meets a locked orec can
//    finish the commit on the owner's behalf (StmConfig::help_committers),
//    which keeps the system moving when a committer is preempted.
//  * Conflict resolution is delegated to a pluggable contention manager
//    (StmConfig::contention_manager): suicide, polite (backoff), aggressive,
//    karma, timestamp. Managers that abort the enemy do so cooperatively by
//    CASing the owner's descriptor from Locking/NeedTs to Killed; a
//    descriptor that reached Committed can no longer be killed, only helped.
//  * With an externally synchronized time base, every version's validity
//    range is shrunk at both ends by the pairwise stamp uncertainty (twice
//    the published per-stamp deviation bound: both the version's stamp and
//    the snapshot's stamp may be skewed) -- deviation only ever costs
//    aborts, never correctness, because commit validation is exact (lock
//    words, not clocks) and snapshot reads never admit a version unless it
//    was committed, in true time, before the snapshot.

#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include <chronostm/util/pause.hpp>

namespace chronostm {

// How a transaction behaves when it runs into a lock owned by another
// committing transaction (and how hard it retries afterwards).
enum class CmPolicy {
    kSuicide,     // abort self immediately on any conflict
    kPolite,      // bounded spin, then abort self (a.k.a. backoff)
    kAggressive,  // abort the enemy when possible, spin hard otherwise
    kKarma,       // bigger accumulated access set wins; loser backs off
    kTimestamp,   // older transaction wins; younger backs off
};

inline CmPolicy parse_contention_manager(const std::string& name) {
    if (name.empty() || name == "polite" || name == "backoff")
        return CmPolicy::kPolite;
    if (name == "suicide") return CmPolicy::kSuicide;
    if (name == "aggressive") return CmPolicy::kAggressive;
    if (name == "karma") return CmPolicy::kKarma;
    if (name == "timestamp") return CmPolicy::kTimestamp;
    throw std::invalid_argument("chronostm: unknown contention manager: " +
                                name);
}

struct StmConfig {
    // Versions kept per TVar including the current one; 1 = no history
    // (TL2-like), larger values let long readers survive concurrent
    // updates. Capped at detail::kMaxHistory + 1.
    unsigned max_versions = 8;
    // Lazy snapshot extension on reads that find a too-new current version.
    bool read_extension = true;
    // Commit helping (LSA-RT): threads that meet a lock owned by a
    // transaction whose descriptor already reached Committed finish its
    // write-back instead of waiting it out. Off = plain bounded spinning
    // on foreign locks.
    bool help_committers = true;
    // Conflict arbitration policy; see CmPolicy. Parsed once per LsaStm.
    std::string contention_manager = "polite";
    // Spins on a foreign lock before the contention manager gives up.
    unsigned lock_spin = 256;
    // Bounded retry: run() throws after this many consecutive aborts.
    unsigned max_retries = 1'000'000;
    // Test-only: invoked on the committing thread right after its
    // descriptor is published as Committed (claims armed) and before it
    // applies its own write set -- lets tests freeze a committer at the
    // exact point where helping can take over. Leave empty in production.
    std::function<void()> commit_publish_hook;
};

class TxStats {
 public:
    TxStats() = default;
    TxStats(std::uint64_t commits, std::uint64_t aborts,
            std::uint64_t helped_c = 0, std::uint64_t helped_ts = 0)
        : helped_commits(helped_c),
          helped_timestamps(helped_ts),
          commits_(commits),
          aborts_(aborts) {}

    std::uint64_t commits() const { return commits_; }
    std::uint64_t aborts() const { return aborts_; }

    // Helping counters (LSA-RT), public so drivers can sum them directly.
    // helped_commits counts help EVENTS -- calls in which a thread applied
    // at least one write record of a foreign decided commit -- not
    // distinct commits: several helpers splitting one large write set each
    // count one event. helped_timestamps is reserved (always 0 today):
    // timestamp helping needs per-attempt draw tagging to be sound -- see
    // the note in core/lsa_stm.hpp's detail namespace.
    std::uint64_t helped_commits = 0;
    std::uint64_t helped_timestamps = 0;

 private:
    std::uint64_t commits_ = 0;
    std::uint64_t aborts_ = 0;
};

namespace detail {

inline constexpr unsigned kMaxHistory = 16;

struct AbortTx {};

struct StatsBlock {
    std::atomic<std::uint64_t> commits{0};
    std::atomic<std::uint64_t> aborts{0};
    std::atomic<std::uint64_t> helped_commits{0};
    std::atomic<std::uint64_t> helped_timestamps{0};
};

// Exponential backoff with multiplicative-hash jitter; yields once the spin
// budget is large so oversubscribed hosts make progress.
inline void backoff(unsigned attempt, std::uint64_t seed) {
    const unsigned shift = attempt < 10 ? attempt : 10;
    std::uint64_t spins = (8ull << shift);
    seed = (seed + attempt + 1) * 0x9E3779B97F4A7C15ull;
    spins = spins / 2 + (seed % (spins + 1)) / 2;
    if (spins > 4096) {
        std::this_thread::yield();
        spins = 4096;
    }
    for (std::uint64_t i = 0; i < spins; ++i) cpu_relax();
}

// Commit descriptor life cycle. Kill CASes are only legal from Locking or
// NeedTs; Committed is the point of no return.
enum TxStatus : int {
    kTxIdle = 0,
    kTxLocking,    // acquiring write-set locks in address order
    kTxNeedTs,     // locks held, waiting for a commit timestamp
    kTxCommitted,  // decided; write-back may be claimed by anybody
    kTxKilled,     // a contention manager aborted this attempt
};

template <typename TB>
class TVarBase;

// Type-erased write record: lives in the owning transaction's write set,
// applied (value publish + orec unlock) by the owner or by a helper.
template <typename TB>
struct CommitRecBase {
    TVarBase<TB>* var;
    std::uint64_t locked_word = 0;  // unlocked word this lock replaced
    explicit CommitRecBase(TVarBase<TB>* v) : var(v) {}
    virtual ~CommitRecBase() = default;
    virtual void apply(std::uint64_t new_ts, std::uint64_t old_ts,
                      unsigned keep_old) = 0;
};

// Published commit descriptor, one per thread context, reused across
// transactions. Locked orecs point at it. Reuse is tag-guarded: write-set
// slots are claimable only under the current sequence number, and slot
// arrays only ever grow (retired arrays are kept until the descriptor
// dies), so a stale helper can always dereference what it loaded and its
// claim CAS is guaranteed to fail.
template <typename TB>
struct TxDesc {
    std::atomic<int> status{kTxIdle};
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> new_ts{0};
    std::atomic<unsigned> keep_old{0};
    // Contention-manager metadata for the in-flight attempt.
    std::atomic<std::uint64_t> karma{0};
    std::atomic<std::uint64_t> start_ts{0};

    struct Slot {
        std::atomic<std::uint64_t> claim{0};  // 2*seq armed, 2*seq+1 taken
        std::atomic<CommitRecBase<TB>*> rec{nullptr};
    };
    // Capacity travels with the array: a helper that pairs a stale array
    // with a newer (larger) n_slots clamps to the array's own capacity
    // instead of indexing out of bounds (the claim tags then make every
    // stale access a failed CAS).
    struct SlotArray {
        explicit SlotArray(std::size_t c)
            : cap(c), slots(std::make_unique<Slot[]>(c)) {}
        const std::size_t cap;
        const std::unique_ptr<Slot[]> slots;
    };
    std::atomic<SlotArray*> slots{nullptr};
    std::atomic<std::size_t> n_slots{0};

    // Owner-only; helpers read the array through the atomic pointer.
    SlotArray* ensure_capacity(std::size_t n) {
        auto* cur = slots.load(std::memory_order_relaxed);
        if (cur != nullptr && n <= cur->cap) return cur;
        std::size_t want = cur != nullptr ? cur->cap * 2 : 8;
        while (want < n) want *= 2;
        arenas_.push_back(std::make_unique<SlotArray>(want));
        slots.store(arenas_.back().get(), std::memory_order_release);
        return arenas_.back().get();
    }

 private:
    std::vector<std::unique_ptr<SlotArray>> arenas_;
};

// Finish a foreign Committed transaction's write-back. Claims are tagged
// with the descriptor's sequence number, so helping a descriptor that has
// since been reused degrades to a no-op (every CAS fails). Returns true if
// this call applied at least one write record.
template <typename TB>
inline bool help_apply(TxDesc<TB>* d, StatsBlock* stats) {
    if (d->status.load(std::memory_order_acquire) != kTxCommitted)
        return false;
    const std::uint64_t q = d->seq.load(std::memory_order_acquire);
    auto* arr = d->slots.load(std::memory_order_acquire);
    std::size_t n = d->n_slots.load(std::memory_order_acquire);
    if (arr == nullptr || n == 0) return false;
    // NOTE: everything loaded so far may be stale (the descriptor may have
    // been recycled for a later attempt between the loads) -- staleness is
    // caught by the claim tag below, never acted on, and `arr` and `n` may
    // even be from different attempts, so n is clamped to the array's own
    // capacity. The write-set metadata must NOT be read here: a claim for
    // attempt q+1 could otherwise be applied with attempt q's new_ts.
    if (n > arr->cap) n = arr->cap;
    auto* slots = arr->slots.get();
    bool helped = false;
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t expect = 2 * q;
        if (!slots[i].claim.compare_exchange_strong(
                expect, 2 * q + 1, std::memory_order_acq_rel,
                std::memory_order_relaxed))
            continue;
        // A successful claim proves attempt q is still in write-back (the
        // owner recycles the descriptor only once every slot has been
        // claimed and applied), so metadata read AFTER the claim is
        // exactly attempt q's, stable, and visible: the claim CAS
        // synchronizes with the owner's post-publish claim store.
        auto* rec = slots[i].rec.load(std::memory_order_relaxed);
        const std::uint64_t nts = d->new_ts.load(std::memory_order_relaxed);
        const unsigned keep = d->keep_old.load(std::memory_order_relaxed);
        rec->apply(nts, rec->locked_word >> 1, keep);
        helped = true;
    }
    if (helped && stats != nullptr)
        stats->helped_commits.fetch_add(1, std::memory_order_relaxed);
    return helped;
}

// Timestamp helping (a helper drawing the commit stamp on a stalled
// committer's behalf) is deliberately NOT implemented: the correctness of
// snapshot reads hinges on every commit stamp being drawn AFTER the whole
// write set is locked, and a helper cannot prove its draw happened inside
// the current attempt's window (the descriptor may have been recycled
// between its status check and its draw). A pre-lock stamp would let a
// fresh reader accept the commit's writes inside a snapshot that still
// contains pre-lock state. Helpers therefore only ever finish decided
// commits; StatsBlock::helped_timestamps stays reserved for a future
// scheme that can tag draws per attempt.

}  // namespace detail

template <typename TB>
class Transaction;
template <typename TB>
class ThreadContext;
template <typename TB>
class LsaStm;
template <typename T, typename TB>
class TVar;

namespace detail {

// Untyped base so transactions can track read/write sets across TVar<T>
// instantiations. The lock word is the only shared-memory rendezvous point:
// (version_ts << 1) unlocked, (TxDesc* | 1) locked.
template <typename TB>
class TVarBase {
 public:
    TVarBase() = default;
    TVarBase(const TVarBase&) = delete;
    TVarBase& operator=(const TVarBase&) = delete;
    virtual ~TVarBase() = default;

 protected:
    friend class chronostm::Transaction<TB>;
    std::atomic<std::uint64_t> vlock_{0};
};

}  // namespace detail

template <typename TB>
using TVarBase = detail::TVarBase<TB>;

template <typename T, typename TB>
class TVar : public TVarBase<TB> {
    static_assert(std::is_trivially_copyable_v<T>,
                  "TVar<T> requires a trivially copyable T: values are read "
                  "optimistically under a seqlock");

 public:
    explicit TVar(T initial) : value_(initial) {}

    T get(Transaction<TB>& tx) { return tx.read(*this); }
    void set(Transaction<TB>& tx, T v) { tx.write(*this, std::move(v)); }

    // Non-transactional read for post-run invariant checks (quiesced state
    // only: racy by construction while transactions run).
    T unsafe_peek() const { return value_.load(std::memory_order_acquire); }

 private:
    friend class Transaction<TB>;

    // Old versions live in a ring written only while the lock bit is held;
    // readers snapshot entries and recheck vlock_ to detect slot reuse.
    struct OldVersion {
        std::atomic<T> value{};
        std::atomic<std::uint64_t> from{0};
        std::atomic<std::uint64_t> until{0};
    };

    // Called with the lock bit held by exactly one thread (the committing
    // owner or the helper that claimed this record). `old_ts` is the
    // version being replaced (the lock word no longer carries it: locked
    // words hold the descriptor pointer). The release fence keeps the
    // (earlier) lock store visible before any of the data stores below on
    // weakly-ordered hardware, so a reader that observes new data and then
    // rechecks the lock word is guaranteed to see the lock (or the final
    // version) -- the other half of the seqlock lives in Transaction::read
    // / read_old_version.
    void commit_write(const T& v, std::uint64_t new_ts, std::uint64_t old_ts,
                      unsigned keep_old) {
        std::atomic_thread_fence(std::memory_order_release);
        if (keep_old > 0) {
            const unsigned head =
                (hist_head_.load(std::memory_order_relaxed) + 1) %
                detail::kMaxHistory;
            auto& slot = hist_[head];
            slot.value.store(value_.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
            slot.from.store(old_ts, std::memory_order_relaxed);
            slot.until.store(new_ts, std::memory_order_relaxed);
            hist_head_.store(head, std::memory_order_release);
            const unsigned cap = std::min(keep_old, detail::kMaxHistory);
            const unsigned sz = hist_size_.load(std::memory_order_relaxed);
            hist_size_.store(std::min(sz + 1, cap), std::memory_order_release);
        } else {
            hist_size_.store(0, std::memory_order_release);
        }
        value_.store(v, std::memory_order_relaxed);
        this->vlock_.store(new_ts << 1, std::memory_order_release);
    }

    std::atomic<T> value_;
    std::array<OldVersion, detail::kMaxHistory> hist_{};
    std::atomic<unsigned> hist_head_{0};
    std::atomic<unsigned> hist_size_{0};
};

template <typename TB>
class Transaction {
 public:
    using Clock = typename TB::ThreadClock;

    Transaction(const Transaction&) = delete;
    Transaction& operator=(const Transaction&) = delete;

    // Explicit early abort: unwinds out of the user lambda; run() retries.
    [[noreturn]] void abort() { throw detail::AbortTx{}; }

    std::uint64_t snapshot_lower() const { return lower_; }
    std::uint64_t snapshot_upper() const { return upper_; }

 private:
    friend class ThreadContext<TB>;
    template <typename T, typename TB2>
    friend class TVar;

    struct ReadEntry {
        TVarBase<TB>* var;
        std::uint64_t word;  // unlocked lock word observed at read time
    };

    template <typename T>
    struct WriteRec : detail::CommitRecBase<TB> {
        TVar<T, TB>* tvar;
        T value;
        WriteRec(TVar<T, TB>* v, T val)
            : detail::CommitRecBase<TB>(v), tvar(v), value(std::move(val)) {}
        void apply(std::uint64_t new_ts, std::uint64_t old_ts,
                   unsigned keep_old) override {
            tvar->commit_write(value, new_ts, old_ts, keep_old);
        }
    };

    Transaction(Clock& clk, const StmConfig& cfg, CmPolicy cm,
                std::uint64_t dev, detail::StatsBlock* stats,
                detail::TxDesc<TB>* desc)
        : clk_(clk), cfg_(cfg), cm_(cm), dev_(dev), stats_(stats),
          desc_(desc) {
        upper_ = clk_.get_time();
        start_ts_ = upper_;
        upper_cap_ = ~std::uint64_t{0};
    }

    std::uint64_t my_lock_word() const {
        return reinterpret_cast<std::uintptr_t>(desc_) | 1u;
    }

    static detail::TxDesc<TB>* decode_owner(std::uint64_t locked_word) {
        return reinterpret_cast<detail::TxDesc<TB>*>(
            static_cast<std::uintptr_t>(locked_word & ~std::uint64_t{1}));
    }

    // Cooperative kill: only attempts that have not reached Committed can
    // die. A stale kill (the descriptor moved on to a later attempt) costs
    // that attempt a spurious abort, never correctness.
    static void try_kill(detail::TxDesc<TB>* d) {
        int s = d->status.load(std::memory_order_acquire);
        if (s == detail::kTxLocking || s == detail::kTxNeedTs)
            d->status.compare_exchange_strong(s, detail::kTxKilled,
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed);
    }

    // Block on a foreign lock until it clears, helping and arbitrating per
    // the contention manager; returns the (unlocked) current word. Throws
    // AbortTx when the manager decides this transaction should yield.
    std::uint64_t wait_on_foreign_lock(TVarBase<TB>* var) {
        std::uint64_t spins = 0;
        const std::uint64_t budget =
            cm_ == CmPolicy::kAggressive
                ? 64ull * cfg_.lock_spin
                : static_cast<std::uint64_t>(cfg_.lock_spin);
        for (;;) {
            const std::uint64_t w =
                var->vlock_.load(std::memory_order_acquire);
            if (!(w & 1u)) return w;
            // If a manager killed *us* while we were stuck here, yield now
            // (only possible while we hold locks, i.e. during commit).
            if (desc_->status.load(std::memory_order_relaxed) ==
                detail::kTxKilled)
                throw detail::AbortTx{};
            auto* owner = decode_owner(w);
            if (cfg_.help_committers &&
                detail::help_apply(owner, stats_))
                continue;
            switch (cm_) {
                case CmPolicy::kSuicide:
                    throw detail::AbortTx{};
                case CmPolicy::kAggressive:
                    try_kill(owner);
                    break;
                case CmPolicy::kKarma:
                    if (reads_.size() + writes_.size() >
                        owner->karma.load(std::memory_order_relaxed))
                        try_kill(owner);
                    break;
                case CmPolicy::kTimestamp:
                    if (start_ts_ <
                        owner->start_ts.load(std::memory_order_relaxed))
                        try_kill(owner);
                    break;
                case CmPolicy::kPolite:
                    break;
            }
            if (++spins > budget) throw detail::AbortTx{};
            cpu_relax();
            // Single-CPU hosts: the lock owner cannot run unless we yield.
            if ((spins & 255u) == 0) std::this_thread::yield();
        }
    }

    template <typename T>
    T read(TVar<T, TB>& var) {
        if (auto* rec = find_write(&var))
            return static_cast<WriteRec<T>*>(rec)->value;

        for (;;) {
            std::uint64_t w1 = var.vlock_.load(std::memory_order_acquire);
            if (w1 & 1u) w1 = wait_on_foreign_lock(&var);
            const std::uint64_t wv = w1 >> 1;
            // Validity of the current version starts at wv, shrunk by the
            // pairwise stamp uncertainty dev_.
            if (wv + dev_ <= upper_) {
                const T v = var.value_.load(std::memory_order_acquire);
                // Seqlock recheck; the fence pairs with the release fence
                // in commit_write so that seeing new data implies seeing
                // the lock word that published it.
                std::atomic_thread_fence(std::memory_order_acquire);
                if (var.vlock_.load(std::memory_order_acquire) != w1)
                    continue;  // raced with a commit; retry the read
                lower_ = std::max(lower_, wv + dev_);
                reads_.push_back(ReadEntry{&var, w1});
                return v;
            }
            // Current version is newer than the snapshot. First choice:
            // lazily extend the snapshot to the present.
            if (cfg_.read_extension && try_extend()) continue;
            // Fall back to an old version -- only useful to transactions
            // that have not written yet (an update transaction must commit
            // "in the present", which a stale snapshot cannot reach).
            if (writes_.empty()) {
                T v{};
                if (read_old_version(var, w1, v)) return v;
            }
            throw detail::AbortTx{};
        }
    }

    template <typename T>
    void write(TVar<T, TB>& var, T v) {
        if (auto* rec = find_write(&var)) {
            static_cast<WriteRec<T>*>(rec)->value = std::move(v);
            return;
        }
        writes_.push_back(
            std::make_unique<WriteRec<T>>(&var, std::move(v)));
        writes_sorted_ = false;
    }

    // Try to move `upper` to the present; all reads so far must still be
    // the most recent versions (a changed or locked word means the
    // extension would break snapshot consistency, so we refuse).
    bool try_extend() {
        std::uint64_t nu = clk_.get_time();
        nu = std::min(nu, upper_cap_);
        if (nu <= upper_) return false;
        for (const auto& e : reads_) {
            if (e.var->vlock_.load(std::memory_order_acquire) != e.word)
                return false;
        }
        upper_ = nu;
        return true;
    }

    // Search the version history of `var` for a version covering the
    // snapshot; `w1` is the unlocked lock word the caller just observed.
    template <typename T>
    bool read_old_version(TVar<T, TB>& var, std::uint64_t w1, T& out) {
        const unsigned n = var.hist_size_.load(std::memory_order_acquire);
        const unsigned head = var.hist_head_.load(std::memory_order_acquire);
        for (unsigned k = 0; k < n; ++k) {
            const auto& slot =
                var.hist_[(head + detail::kMaxHistory - k) %
                          detail::kMaxHistory];
            const std::uint64_t from =
                slot.from.load(std::memory_order_acquire);
            const std::uint64_t until =
                slot.until.load(std::memory_order_acquire);
            const T v = slot.value.load(std::memory_order_acquire);
            std::atomic_thread_fence(std::memory_order_acquire);  // seqlock
            if (var.vlock_.load(std::memory_order_acquire) != w1)
                return false;  // history mutated under us; caller re-reads
            // Valid over [from, until); shrink by the pairwise stamp
            // uncertainty at both ends. Underflow guard: a range narrower
            // than 2*dev+1 is unusable (this is exactly how sync error
            // raises abort rates).
            if (until < from || until - from < 2 * dev_ + 1) continue;
            const std::uint64_t lo = from + dev_;
            const std::uint64_t hi = until - 1 - dev_;
            if (lo > upper_ || hi < lower_) continue;
            lower_ = std::max(lower_, lo);
            upper_ = std::min(upper_, hi);
            upper_cap_ = std::min(upper_cap_, hi);
            read_old_ = true;
            out = v;
            return true;
        }
        return false;
    }

    detail::CommitRecBase<TB>* find_write(TVarBase<TB>* var) {
        for (auto& rec : writes_)
            if (rec->var == var) return rec.get();
        return nullptr;
    }

    // Commit protocol: lock the write set in address order (descriptor
    // pointer goes into each orec), publish NeedTs and draw or receive the
    // commit timestamp, validate reads, publish Committed, then claim-and-
    // apply the write set -- racing any helpers doing the same. Returns
    // false on conflict or kill (caller counts the abort and retries).
    bool commit() {
        if (writes_.empty()) return true;  // snapshot reads are consistent
        // An update transaction that resorted to old versions cannot
        // serialize at commit time.
        if (read_old_) return false;

        if (!writes_sorted_) {
            std::sort(writes_.begin(), writes_.end(),
                      [](const auto& a, const auto& b) {
                          return a->var < b->var;
                      });
            writes_sorted_ = true;
        }

        auto* d = desc_;
        const std::uint64_t q = d->seq.load(std::memory_order_relaxed) + 1;
        d->karma.store(reads_.size() + writes_.size(),
                       std::memory_order_relaxed);
        d->start_ts.store(start_ts_, std::memory_order_relaxed);
        d->status.store(detail::kTxLocking, std::memory_order_release);

        std::size_t locked = 0;
        try {
            for (; locked < writes_.size(); ++locked) {
                auto& rec = writes_[locked];
                for (;;) {
                    if (d->status.load(std::memory_order_relaxed) ==
                        detail::kTxKilled)
                        return rollback(locked);
                    std::uint64_t w =
                        rec->var->vlock_.load(std::memory_order_relaxed);
                    if (w & 1u) {
                        wait_on_foreign_lock(rec->var);
                        continue;
                    }
                    if (rec->var->vlock_.compare_exchange_weak(
                            w, my_lock_word(), std::memory_order_acq_rel,
                            std::memory_order_relaxed)) {
                        rec->locked_word = w;
                        break;
                    }
                }
            }
        } catch (const detail::AbortTx&) {
            return rollback(locked);
        }

        // Locks held: draw the commit timestamp. It MUST be drawn after
        // the last lock is acquired -- a pre-lock stamp would let a reader
        // that began after the stamp accept our writes next to pre-lock
        // state it already read (see the timestamp-helping note above).
        int expect = detail::kTxLocking;
        if (!d->status.compare_exchange_strong(expect, detail::kTxNeedTs,
                                               std::memory_order_acq_rel,
                                               std::memory_order_relaxed))
            return rollback(writes_.size());  // killed while locking
        const std::uint64_t commit_ts = clk_.get_new_ts();

        for (const auto& e : reads_) {
            const std::uint64_t cur =
                e.var->vlock_.load(std::memory_order_acquire);
            if (cur == e.word) continue;
            if (cur == my_lock_word()) {
                // Locked by us; valid iff the version under our lock is
                // still the one we read.
                auto* rec = find_write(e.var);
                if (rec != nullptr && rec->locked_word == e.word) continue;
            }
            return rollback(writes_.size());
        }
        if (lower_ > commit_ts) return rollback(writes_.size());

        const unsigned keep_old =
            cfg_.max_versions > 0
                ? std::min(cfg_.max_versions - 1, detail::kMaxHistory)
                : 0;
        // One timestamp for the whole write set (stamping vars
        // individually could tear the commit across the version history
        // when the time base hands out tied stamps), bumped above every
        // locked version for per-var monotonicity under TL2 sharing and
        // coarse clocks.
        std::uint64_t new_ts = commit_ts;
        for (const auto& rec : writes_)
            new_ts = std::max(new_ts, (rec->locked_word >> 1) + 1);

        // Stage the helper-visible write-set view. Claims stay tagged with
        // the previous attempt until after the Committed CAS below, so no
        // helper can apply an attempt that might still be killed.
        auto* slots = d->ensure_capacity(writes_.size())->slots.get();
        for (std::size_t i = 0; i < writes_.size(); ++i)
            slots[i].rec.store(writes_[i].get(), std::memory_order_relaxed);
        d->n_slots.store(writes_.size(), std::memory_order_relaxed);
        d->new_ts.store(new_ts, std::memory_order_relaxed);
        d->keep_old.store(keep_old, std::memory_order_relaxed);
        d->seq.store(q, std::memory_order_relaxed);

        expect = detail::kTxNeedTs;
        if (!d->status.compare_exchange_strong(expect, detail::kTxCommitted,
                                               std::memory_order_acq_rel,
                                               std::memory_order_relaxed))
            return rollback(writes_.size());  // killed at the buzzer
        for (std::size_t i = 0; i < writes_.size(); ++i)
            slots[i].claim.store(2 * q, std::memory_order_release);

        if (cfg_.commit_publish_hook) cfg_.commit_publish_hook();

        // Claim-and-apply our own write set, racing helpers for each slot.
        for (std::size_t i = 0; i < writes_.size(); ++i) {
            std::uint64_t expect_claim = 2 * q;
            if (slots[i].claim.compare_exchange_strong(
                    expect_claim, 2 * q + 1, std::memory_order_acq_rel,
                    std::memory_order_relaxed))
                writes_[i]->apply(new_ts, writes_[i]->locked_word >> 1,
                                  keep_old);
        }
        // Wait until every orec is unlocked (a helper may still be midway
        // through a claimed slot) before the write records -- which that
        // helper dereferences -- can be destroyed and the descriptor
        // recycled.
        for (const auto& rec : writes_) {
            std::uint64_t spins = 0;
            while (rec->var->vlock_.load(std::memory_order_acquire) ==
                   my_lock_word()) {
                cpu_relax();
                if ((++spins & 255u) == 0) std::this_thread::yield();
            }
        }
        d->status.store(detail::kTxIdle, std::memory_order_release);
        return true;
    }

    // Abort path while holding the first `n` write-set locks: restore the
    // saved words and retire the descriptor attempt.
    bool rollback(std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) {
            auto& rec = writes_[i];
            rec->var->vlock_.store(rec->locked_word,
                                   std::memory_order_release);
        }
        desc_->status.store(detail::kTxIdle, std::memory_order_release);
        return false;
    }

    Clock& clk_;
    const StmConfig& cfg_;
    CmPolicy cm_;
    std::uint64_t dev_;
    detail::StatsBlock* stats_;
    detail::TxDesc<TB>* desc_;
    std::uint64_t lower_ = 0;
    std::uint64_t upper_ = 0;
    std::uint64_t upper_cap_ = 0;
    std::uint64_t start_ts_ = 0;
    bool read_old_ = false;
    bool writes_sorted_ = false;
    std::vector<ReadEntry> reads_;
    std::vector<std::unique_ptr<detail::CommitRecBase<TB>>> writes_;
};

// Per-thread handle: owns a thread clock, a stats block, and a commit
// descriptor registered with the parent LsaStm. Movable; not thread-safe
// (one context per thread).
template <typename TB>
class ThreadContext {
 public:
    using Clock = typename TB::ThreadClock;

    // Runs `f` as a transaction until it commits, with bounded retry and
    // exponential backoff. `f` takes Transaction<TB>& and may return a
    // value, which run() passes through from the committed attempt.
    template <typename F>
    auto run(F&& f) {
        using R = std::invoke_result_t<F&, Transaction<TB>&>;
        for (unsigned attempt = 0;; ++attempt) {
            try {
                Transaction<TB> tx = txn_begin();
                if constexpr (std::is_void_v<R>) {
                    f(tx);
                    if (txn_commit(tx)) return;
                } else {
                    R r = f(tx);
                    if (txn_commit(tx)) return r;
                }
            } catch (const detail::AbortTx&) {
                stats_->aborts.fetch_add(1, std::memory_order_relaxed);
            }
            if (attempt + 1 >= cfg_.max_retries)
                throw std::runtime_error(
                    "chronostm: transaction exceeded retry bound");
            detail::backoff(attempt,
                            reinterpret_cast<std::uintptr_t>(stats_.get()));
        }
    }

    // Explicit transaction control for adapters and staged tests; run() is
    // the preferred loop. The returned transaction is valid for one
    // attempt: reads/writes may throw detail::AbortTx, and txn_commit
    // reports success. Statistics are counted like run() does.
    Transaction<TB> txn_begin() {
        return Transaction<TB>(clk_, cfg_, cm_, dev_, stats_.get(),
                               desc_.get());
    }

    bool txn_commit(Transaction<TB>& tx) {
        if (tx.commit()) {
            stats_->commits.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
        stats_->aborts.fetch_add(1, std::memory_order_relaxed);
        return false;
    }

    TxStats stats() const {
        return TxStats(
            stats_->commits.load(std::memory_order_relaxed),
            stats_->aborts.load(std::memory_order_relaxed),
            stats_->helped_commits.load(std::memory_order_relaxed),
            stats_->helped_timestamps.load(std::memory_order_relaxed));
    }

 private:
    friend class LsaStm<TB>;

    ThreadContext(Clock clk, const StmConfig& cfg, CmPolicy cm,
                  std::uint64_t dev,
                  std::shared_ptr<detail::StatsBlock> stats,
                  std::shared_ptr<detail::TxDesc<TB>> desc)
        : clk_(std::move(clk)),
          cfg_(cfg),
          cm_(cm),
          dev_(dev),
          stats_(std::move(stats)),
          desc_(std::move(desc)) {}

    Clock clk_;
    StmConfig cfg_;
    CmPolicy cm_;
    std::uint64_t dev_;
    std::shared_ptr<detail::StatsBlock> stats_;
    std::shared_ptr<detail::TxDesc<TB>> desc_;
};

template <typename TB>
class LsaStm {
 public:
    explicit LsaStm(TB& tbase, StmConfig cfg = StmConfig{})
        : tbase_(tbase),
          cfg_(std::move(cfg)),
          cm_(parse_contention_manager(cfg_.contention_manager)) {
        if (cfg_.max_versions == 0) cfg_.max_versions = 1;
    }

    LsaStm(const LsaStm&) = delete;
    LsaStm& operator=(const LsaStm&) = delete;

    ThreadContext<TB> make_context() {
        auto block = std::make_shared<detail::StatsBlock>();
        auto desc = std::make_shared<detail::TxDesc<TB>>();
        {
            std::lock_guard<std::mutex> g(mu_);
            blocks_.push_back(block);
            // Descriptors are pinned for the STM's lifetime: a helper may
            // hold a pointer to one (read out of a lock word) after the
            // owning context has been destroyed.
            descs_.push_back(desc);
        }
        // The time base publishes each stamp's deviation from true time;
        // the core compares stamps from two different clocks, so the
        // pairwise uncertainty -- and the validity-range shrink -- is
        // twice that bound.
        return ThreadContext<TB>(tbase_.make_thread_clock(), cfg_, cm_,
                                 2 * tbase_.deviation(), std::move(block),
                                 std::move(desc));
    }

    // Aggregate counters over every context ever created.
    TxStats collected_stats() const {
        std::uint64_t c = 0, a = 0, hc = 0, ht = 0;
        std::lock_guard<std::mutex> g(mu_);
        for (const auto& b : blocks_) {
            c += b->commits.load(std::memory_order_relaxed);
            a += b->aborts.load(std::memory_order_relaxed);
            hc += b->helped_commits.load(std::memory_order_relaxed);
            ht += b->helped_timestamps.load(std::memory_order_relaxed);
        }
        return TxStats(c, a, hc, ht);
    }

    const StmConfig& config() const { return cfg_; }
    CmPolicy contention_policy() const { return cm_; }
    TB& time_base() { return tbase_; }

 private:
    TB& tbase_;
    StmConfig cfg_;
    CmPolicy cm_;
    mutable std::mutex mu_;
    std::vector<std::shared_ptr<detail::StatsBlock>> blocks_;
    std::vector<std::shared_ptr<detail::TxDesc<TB>>> descs_;
};

}  // namespace chronostm
