// Orec-table word STM: the Lazy Snapshot Algorithm run over a fixed global
// table of ownership records instead of per-TVar metadata. Shared data is
// plain memory -- words in structs, arrays, or the typed WordVar<T>
// wrapper -- and every transactional access finds its versioned lock by
// hashing the ADDRESS into the table: (addr >> 4) & mask, two ALU ops
// (the TL2 shape). Nothing has to be declared as a TVar, so raw-memory
// data structures become transactional for free.
//
// What carries over from the TVar core (core/lsa_stm.hpp) unchanged:
//  * stamps come from the runtime-pluggable tb::TimeBase facade, so one
//    engine serves every registered base (shared/batched/sharded/adaptive/
//    extsync) selected at runtime;
//  * snapshot interval [lower, upper] with lazy extension: a read that
//    finds a too-new version revalidates the read set against the current
//    orec words and moves `upper` to the present (this is precisely what
//    plain TL2 lacks -- TL2 aborts where LSA extends);
//  * deviation-aware validity: version admission shrinks by the pairwise
//    stamp uncertainty (2 * TimeBase::deviation()), trading freshness
//    aborts for correctness under imprecise scalable time bases. The
//    algebra only ever touches orec version words, never per-location
//    state, which is why it ports verbatim. One refinement on top: a
//    version stamped with a stamp THIS context drew itself (stamps are
//    globally unique, so it is this thread's own earlier commit) is
//    admitted with no shrink at all -- see detail::RecentStamps. Without
//    it, a thread re-reading what its previous transaction wrote under a
//    batched/sharded base burns draws until the counter outruns its own
//    stamps.
//
// What changes relative to the TVar core:
//  * metadata is the table entry, shared by every 16-byte granule that
//    hashes to it -- two independent addresses may collide ("false
//    conflict"; counted in TxStats::false_conflicts, rate math in
//    DESIGN.md). The table is per-OrecStm, so independent engines never
//    alias each other;
//  * single-version: no history ring to fall back on, so a reader that
//    cannot extend aborts where the TVar core might serve an old version;
//  * locks are TL2-style in-place bit sets (word | 1) that PRESERVE the
//    version, not descriptor pointers -- so there is no commit helping and
//    no contention-manager plumbing, just bounded spinning on foreign
//    locks. Commit-time read validation tells "locked by me" from "locked
//    by an enemy holding the same version" through the commit's own
//    ownership index, never through the word alone.
//
// Memory access protocol (TSan-clean by construction): all transactional
// data moves through 8-byte-aligned granules accessed with the __atomic
// builtins. An 8-aligned granule never spans a 16-byte orec granule, so
// one table entry covers each access. Buffered writes carry a byte mask;
// commit write-back merges partial-granule writes with memory under the
// granule's orec lock (nobody else may write those bytes while it is
// held). Reads are seqlock-consistent: load orec word, load granule,
// acquire fence, recheck orec word.

#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

#include <chronostm/core/epoch_stripes.hpp>
#include <chronostm/core/lsa_stm.hpp>
#include <chronostm/stm/config.hpp>
#include <chronostm/timebase/facade.hpp>
#include <chronostm/util/pause.hpp>

namespace chronostm {

// The shared knobs (read_extension, lock_spin, stall budgets, max_retries,
// irrevocable_threshold, epoch_filter) live in stm::CommonConfig; the old
// spellings -- cfg.stall_ts_budget etc. -- are the inherited members. The
// stalled-committer tolerance knobs are used here as described in
// stm/config.hpp: once lock_spin polite spins are burnt the waiter anchors
// the time base and keeps spinning until either the attempt budget
// (stall_spin_factor * lock_spin total spins) runs out or the time base
// advances past the anchor by stall_ts_budget stamps while the orec stays
// locked; both trip wires abort through the contention seam.
struct OrecConfig : stm::CommonConfig {
    // log2 of the orec-table size; 2^16 entries * 8 bytes = 512 KiB.
    // Smaller tables raise the false-conflict rate (see DESIGN.md for the
    // math); the dedicated orec test shrinks this to force collisions.
    unsigned table_bits = 16;
    // Commit-time write-back batching: one release fence for the whole
    // write set and relaxed per-orec publishes, instead of release stores
    // per orec. Off reproduces the pre-batching publish sequence (kept
    // selectable so check_bench.py can gate batched against unbatched in
    // the same run).
    bool batched_writeback = true;
};

namespace detail {

// One buffered write: an 8-byte granule image plus the byte mask that
// says which lanes the transaction actually wrote. POD by design so the
// write set is a FlatVec of records by value (sortable in place).
struct OrecWriteRec {
    void* gran;                        // 8-aligned granule base
    std::atomic<std::uint64_t>* orec;  // table entry guarding the granule
    std::uint64_t value;               // mask-selected buffered bytes
    std::uint64_t locked_word;         // unlocked word the lock replaced
    std::uint32_t mask;                // bit i => byte i of value is live
    std::uint32_t owner;               // 1 = this record performed the CAS
};

// Expand a byte mask (bit i) into a 64-bit lane mask (byte i).
inline std::uint64_t orec_lane_mask(std::uint32_t m) {
    std::uint64_t r = 0;
    for (unsigned i = 0; i < 8; ++i)
        if (m & (1u << i)) r |= std::uint64_t{0xFF} << (8 * i);
    return r;
}

inline std::uint64_t orec_merge(std::uint64_t mem, std::uint64_t val,
                                std::uint32_t m) {
    if (m == 0xFFu) return val;
    const std::uint64_t lane = orec_lane_mask(m);
    return (mem & ~lane) | (val & lane);
}

// The orec engine's read set: an open-addressing table keyed by orec
// pointer (one entry per distinct orec, however many granules hash to it),
// same machinery as the TVar core's detail::ReadSet -- staged insertion so
// a miss-then-admit costs one probe walk, generation-tagged O(1) clear,
// shrink hysteresis against one huge transaction taxing later small ones.
// Each entry remembers the first granule admitted under its orec so
// aliasing by a SECOND distinct granule is observable (false-conflict
// counter); `word` is the unlocked lock word the snapshot admitted.
class OrecReadSet {
 public:
    struct Entry {
        std::atomic<std::uint64_t>* orec;
        std::uint64_t word;
        const void* gran0;      // first granule admitted under this orec
        std::uint32_t gen;      // live iff gen == OrecReadSet::gen_
        std::uint32_t aliased;  // 1 once a second distinct granule hit
    };

    void clear() {
        if (__builtin_expect(++gen_ == 0, 0)) hard_reset();
        if (__builtin_expect(cap_ > 64 && size_ * 16 < cap_, 0)) {
            if (++small_streak_ >= 128) shrink();
        } else {
            small_streak_ = 0;
        }
        size_ = 0;
    }

    std::uint32_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    // Probes for `orec`: its live entry, or nullptr with the landing slot
    // staged for commit_stage (valid until the next probe or clear).
    Entry* find_or_stage(std::atomic<std::uint64_t>* orec) {
        if (__builtin_expect((size_ + 1) * 4 > cap_ * 3, 0)) grow();
        std::size_t i = slot_of(orec);
        for (;;) {
            Entry& e = entries_[i];
            if (e.gen != gen_) {
                stage_ = i;
                return nullptr;
            }
            if (e.orec == orec) return &e;
            i = (i + 1) & mask_;
        }
    }

    void commit_stage(std::atomic<std::uint64_t>* orec, std::uint64_t word,
                      const void* gran0) {
        Entry& e = entries_[stage_];
        e.orec = orec;
        e.word = word;
        e.gran0 = gran0;
        e.gen = gen_;
        e.aliased = 0;
        ++size_;
    }

    template <typename F>
    bool all_of(F&& f) const {
        for (std::size_t i = 0; i < cap_; ++i) {
            const Entry& e = entries_[i];
            if (e.gen == gen_ && !f(e)) return false;
        }
        return true;
    }

 private:
    std::size_t slot_of(const void* key) const {
        // Fibonacci hashing; table entries are 8-byte aligned, so shift
        // the alignment zeros out before mixing.
        const auto h = static_cast<std::uint64_t>(
                           reinterpret_cast<std::uintptr_t>(key) >> 3) *
                       0x9E3779B97F4A7C15ull;
        return static_cast<std::size_t>(h >> shift_) & mask_;
    }

    __attribute__((noinline)) void grow() {
        auto old = std::move(entries_);
        const std::size_t old_cap = cap_;
        const std::uint32_t live = gen_;
        cap_ = cap_ == 0 ? 64 : cap_ * 2;
        entries_ = std::make_unique<Entry[]>(cap_);  // zeroed: gen 0 = dead
        mask_ = cap_ - 1;
        shift_ = 1;
        while ((std::size_t{1} << (64 - shift_)) > cap_) ++shift_;
        gen_ = 1;
        for (std::size_t i = 0; i < old_cap; ++i) {
            if (old[i].gen != live) continue;
            std::size_t j = slot_of(old[i].orec);
            while (entries_[j].gen == gen_) j = (j + 1) & mask_;
            entries_[j] = old[i];
            entries_[j].gen = gen_;
        }
    }

    void hard_reset() {
        for (std::size_t i = 0; i < cap_; ++i) entries_[i].gen = 0;
        gen_ = 1;
    }

    __attribute__((noinline)) void shrink() {
        std::size_t cap = 64;
        while (cap < std::size_t{size_} * 8) cap *= 2;
        cap_ = cap;
        entries_ = std::make_unique<Entry[]>(cap_);
        mask_ = cap_ - 1;
        shift_ = 1;
        while ((std::size_t{1} << (64 - shift_)) > cap_) ++shift_;
        gen_ = 1;
        small_streak_ = 0;
    }

    std::unique_ptr<Entry[]> entries_;
    std::size_t cap_ = 0;
    std::size_t mask_ = 0;
    unsigned shift_ = 63;
    std::size_t stage_ = 0;
    std::uint32_t size_ = 0;
    std::uint32_t gen_ = 1;
    std::uint32_t small_streak_ = 0;
};

// Stamps this context drew from the time base itself (commit stamps and
// livelock-defense draws), most recent first on lookup. Time-base stamps
// are globally unique, so a version carrying one of these is this
// thread's OWN earlier commit: it was published before the current
// transaction began, hence certainly current when the snapshot anchor
// was taken -- admissible with NO deviation shrink, whatever the
// numeric gap to `upper`. This is what keeps imprecise bases (batched,
// sharded) off the extend/abort path when a transaction re-reads what
// its predecessor just wrote: the counter may lag the thread's own
// stamps by up to the deviation, and without this the thread would burn
// draws until the counter catches up with itself. Bounded ring: only
// recent own stamps matter for that pattern. Slot value 0 doubles as
// the pre-history initial version, which predates every snapshot and is
// admissible by the same argument.
class RecentStamps {
 public:
    void push(std::uint64_t ts) {
        i_ = (i_ + 1) & (kN - 1);
        v_[i_] = ts;
    }

    bool contains(std::uint64_t ts) const {
        if (v_[i_] == ts) return true;  // common case: last commit stamp
        for (unsigned k = 0; k < kN; ++k)
            if (v_[k] == ts) return true;
        return false;
    }

 private:
    static constexpr unsigned kN = 8;
    std::uint64_t v_[kN] = {};
    unsigned i_ = 0;
};

// Per-thread access-set storage for the orec engine, reused across
// attempts and transactions (same allocation-free steady state as the
// TVar core's detail::AccessSets, which this mirrors). Write records are
// held by value: they are fixed-size PODs, so no arena or type erasure is
// needed.
struct OrecAccessSets {
    OrecReadSet reads;
    FlatVec<OrecWriteRec> writes;
    PtrIndex write_index;  // granule addr -> index into writes (pre-sort)
    PtrIndex owned;        // orec -> owner-record index (commit phase only)
    // Striped epoch-filter state for the in-flight attempt (the read-set
    // stripe signature plus first-touch snapshots; core/epoch_stripes.hpp).
    StripeScratch stripes;

    void reset() {
        reads.clear();
        writes.clear();
        write_index.clear();
        stripes.reset();
    }
};

}  // namespace detail

class OrecTransaction;
class OrecThreadContext;
class OrecStm;

// Raw-memory transactional access, free-function spelling. `addr` may
// point anywhere into plain structs or arrays; T must be trivially
// copyable (values move through granule images under a seqlock).
template <typename T>
T tx_read(OrecTransaction& tx, const T* addr);
template <typename T>
void tx_write(OrecTransaction& tx, T* addr, const T& v);

class OrecTransaction {
 public:
    using Clock = tb::ThreadClock;

    OrecTransaction(const OrecTransaction&) = delete;
    OrecTransaction& operator=(const OrecTransaction&) = delete;
    OrecTransaction(OrecTransaction&&) = default;

    // Explicit early abort: unwinds out of the user lambda; run() retries.
    // Note that abort() defeats the degradation ladder by design: an
    // irrevocable attempt that the user functor aborts retries irrevocably.
    [[noreturn]] void abort() { throw detail::AbortTx{}; }

    // Escalate this attempt to irrevocable serial mode mid-flight: claim
    // the engine-global token, drain in-flight update commits, then
    // re-validate the snapshot once against the now-quiescent heap. On
    // validation failure the attempt aborts (conflict class) but the token
    // stays with the owning context, so the retry runs irrevocably from
    // its first read. Idempotent; from here to commit nothing can abort
    // this transaction.
    void become_irrevocable() {
        if (irrevocable_) return;
        if (!*token_held_) {
            gate_->acquire(token_held_);
            *token_held_ = true;
            stats_->escalations.fetch_add(1, std::memory_order_relaxed);
        }
        if (!walk_read_set()) throw detail::AbortTx{};
        irrevocable_ = true;
    }

    bool irrevocable() const { return irrevocable_; }

    std::uint64_t snapshot_lower() const { return lower_; }
    std::uint64_t snapshot_upper() const { return upper_; }

    // Distinct orecs read / distinct granules written.
    std::size_t read_set_size() const { return sets_->reads.size(); }
    std::size_t write_set_size() const { return sets_->writes.size(); }

    // Instrumentation/bench hook: attempt a snapshot extension right now,
    // exactly as a read that meets a too-new version would.
    bool try_extend_now() { return try_extend(); }

    template <typename T>
    T read(const T* addr) {
        static_assert(std::is_trivially_copyable_v<T>,
                      "transactional reads copy raw bytes");
        std::remove_const_t<T> out;
        if constexpr (sizeof(T) <= 8 &&
                      (sizeof(T) & (sizeof(T) - 1)) == 0) {
            // Power-of-two word at its natural alignment sits inside one
            // granule: a single validated load covers it.
            const auto p = reinterpret_cast<std::uintptr_t>(addr);
            if (__builtin_expect((p & (sizeof(T) - 1)) == 0, 1)) {
                const std::uintptr_t gran = p & ~std::uintptr_t{7};
                const std::uint64_t g =
                    load_granule(reinterpret_cast<const void*>(gran));
                std::memcpy(&out,
                            reinterpret_cast<const unsigned char*>(&g) +
                                (p - gran),
                            sizeof(T));
                return out;
            }
        }
        read_bytes(addr, &out, sizeof(T));
        return out;
    }

    template <typename T>
    void write(T* addr, const T& v) {
        static_assert(std::is_trivially_copyable_v<T>,
                      "transactional writes copy raw bytes");
        write_bytes(addr, reinterpret_cast<const unsigned char*>(&v),
                    sizeof(T));
    }

 private:
    friend class OrecThreadContext;
    friend class OrecStm;

    OrecTransaction(Clock& clk, const OrecConfig& cfg, OrecStm* stm,
                    std::uint64_t dev, detail::StatsBlock* stats,
                    detail::OrecAccessSets* sets,
                    detail::RecentStamps* recent,
                    detail::EpochStripes* stripes,
                    detail::IrrevGate* gate, bool* token_held)
        : clk_(clk), cfg_(cfg), stm_(stm), dev_(dev), stats_(stats),
          sets_(sets), recent_(recent), stripes_(stripes), gate_(gate),
          token_held_(token_held), irrevocable_(*token_held) {
        sets_->reset();
        cache_table();
        CHRONOSTM_FP_SINK(&stats_->injected_faults);
        // Per-stripe epoch snapshots are taken lazily at the stripe's
        // first touch, always BEFORE the covered granule's orec-word load
        // (touch_stripe in load_validated): a writer that publishes into
        // the stripe after the snapshot shows up as a stripe mismatch
        // (false negative, walk runs), never as a stale fast hit.
        upper_ = clk_.get_time();
    }

    // --- read path ------------------------------------------------------

    void read_bytes(const void* addr, void* dst, std::size_t len) {
        const auto p = reinterpret_cast<std::uintptr_t>(addr);
        auto* out = static_cast<unsigned char*>(dst);
        std::size_t done = 0;
        while (done < len) {
            const std::uintptr_t gran = (p + done) & ~std::uintptr_t{7};
            const std::size_t off = (p + done) - gran;
            const std::size_t n = std::min(len - done, 8 - off);
            const std::uint64_t g =
                load_granule(reinterpret_cast<const void*>(gran));
            std::memcpy(out + done,
                        reinterpret_cast<const unsigned char*>(&g) + off, n);
            done += n;
        }
    }

    // One granule, write set consulted first (read-after-write); partial
    // buffered masks merge over a validated memory image, so the bytes the
    // transaction did NOT write still come from a consistent snapshot.
    std::uint64_t load_granule(const void* gran) {
        const std::uint32_t wi = find_write(gran);
        if (wi != detail::PtrIndex::kNone) {
            const detail::OrecWriteRec& rec = sets_->writes[wi];
            if (rec.mask == 0xFFu) return rec.value;
            const std::uint64_t mem = load_validated(gran);
            // find_write's staged probe may be stale after load_validated
            // touched no write-set state; rec index stays valid.
            return detail::orec_merge(mem, sets_->writes[wi].value,
                                      sets_->writes[wi].mask);
        }
        return load_validated(gran);
    }

    // Seqlock-consistent validated load of one granule, admitting its orec
    // to the snapshot (the orec-table twin of the TVar core's read path).
    std::uint64_t load_validated(const void* gran);

    // The table pointer and mask are immutable for the STM's lifetime;
    // caching them here turns every orec lookup into index math off two
    // transaction-local words instead of a dependent chase through stm_.
    void cache_table();
    std::atomic<std::uint64_t>* orec_of(const void* p) const;

    // --- write path -----------------------------------------------------

    void write_bytes(void* addr, const unsigned char* src, std::size_t len) {
        const auto p = reinterpret_cast<std::uintptr_t>(addr);
        std::size_t done = 0;
        while (done < len) {
            const std::uintptr_t gran = (p + done) & ~std::uintptr_t{7};
            const std::size_t off = (p + done) - gran;
            const std::size_t n = std::min(len - done, 8 - off);
            store_granule(reinterpret_cast<void*>(gran), src + done, off, n);
            done += n;
        }
    }

    void store_granule(void* gran, const unsigned char* src, std::size_t off,
                       std::size_t n);

    // Inline scan while the write set is small, open-addressing index on
    // the granule address past that -- same scheme and threshold as the
    // TVar core. Returns an index into sets_->writes or PtrIndex::kNone
    // (with the index's landing bucket staged for the insert that usually
    // follows a miss).
    std::uint32_t find_write(const void* gran) {
        auto& ws = sets_->writes;
        if (ws.size() <= detail::kInlineScan) {
            for (std::uint32_t i = 0; i < ws.size(); ++i)
                if (ws[i].gran == gran) return i;
            return detail::PtrIndex::kNone;
        }
        return sets_->write_index.find_or_stage(gran);
    }

    // --- snapshot maintenance ------------------------------------------

    // Record granule `p`'s stripe in the attempt's signature, snapshotting
    // the stripe epoch at first touch. Must run BEFORE the orec-word load
    // that admits the read: writers bump their stripes before unlocking,
    // so any commit that could invalidate the admitted read lands as a
    // snapshot mismatch (spurious walk at worst, never a stale fast hit).
    void touch_stripe(const void* p) {
        auto& sc = sets_->stripes;
        const unsigned s = stripes_->stripe_of(p);
        const std::uint64_t bit = std::uint64_t{1} << s;
        if (!(sc.sig & bit)) {
            sc.snap[s] = (*stripes_)[s].load(std::memory_order_acquire);
            sc.sig |= bit;
        }
    }

    // Compare every touched stripe against its snapshot, recording the
    // fresh values in `fresh` (indexed by stripe id). Snapshots are NOT
    // updated here: re-anchoring is only sound after a SUCCESSFUL walk
    // (reanchor_stripes), because a failed walk proves a conflicting
    // writer hit the read set and absorbing its bump would let a later
    // extension fast-hit past the very commit the walk just caught (the
    // TVar core's old-version fallback makes that reachable; here every
    // failed extension aborts, but the invariant is kept identical).
    bool stripes_clean(std::uint64_t* fresh) {
        auto& sc = sets_->stripes;
        bool clean = true;
        std::uint64_t sig = sc.sig;
        while (sig != 0) {
            const unsigned s = static_cast<unsigned>(__builtin_ctzll(sig));
            sig &= sig - 1;
            const std::uint64_t e =
                (*stripes_)[s].load(std::memory_order_acquire);
            fresh[s] = e;
            if (e != sc.snap[s]) clean = false;
        }
        return clean;
    }

    // Move the stripe snapshots to the pre-walk values captured by
    // stripes_clean(); call only after a successful walk (a bump <=
    // fresh[s] whose publish the walk missed keeps its orec locked, so
    // the walk would have failed on the locked word).
    void reanchor_stripes(const std::uint64_t* fresh) {
        auto& sc = sets_->stripes;
        std::uint64_t sig = sc.sig;
        while (sig != 0) {
            const unsigned s = static_cast<unsigned>(__builtin_ctzll(sig));
            sig &= sig - 1;
            sc.snap[s] = fresh[s];
        }
    }

    // Move `upper` to the present if every orec read so far is unchanged
    // (a changed or locked word means extension would break consistency).
    // The striped commit-epoch filter short-circuits the O(R) walk exactly
    // as in the TVar core's try_extend -- `nu` drawn before the stripe
    // loads, and on the walk path a re-anchor to the pre-walk stripe
    // epochs. See DESIGN.md "Striped epoch soundness".
    // Failure reason lands in extend_conflict_: false = time has not
    // advanced past upper_ (freshness), true = the read-set walk found a
    // changed or locked orec (conflict -- backoff resolves it; see the
    // abort taxonomy in DESIGN.md).
    bool try_extend() {
        extend_conflict_ = false;
        const std::uint64_t nu = clk_.get_time();
        if (nu <= upper_) return false;
        if (cfg_.epoch_filter) {
            std::uint64_t fresh[detail::EpochStripes::kMaxStripes];
            if (stripes_clean(fresh)) {
                upper_ = nu;
                stats_->extensions.fetch_add(1, std::memory_order_relaxed);
                stats_->extension_fast_hits.fetch_add(
                    1, std::memory_order_relaxed);
                stats_->stripe_fast_hits.fetch_add(
                    1, std::memory_order_relaxed);
                return true;
            }
            stats_->stripe_walks.fetch_add(1, std::memory_order_relaxed);
            if (!walk_read_set()) {
                extend_conflict_ = true;
                return false;
            }
            upper_ = nu;
            reanchor_stripes(fresh);
            stats_->extensions.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
        if (!walk_read_set()) {
            extend_conflict_ = true;
            return false;
        }
        upper_ = nu;
        stats_->extensions.fetch_add(1, std::memory_order_relaxed);
        return true;
    }

    // Cold continuation of load_validated's admission miss: returns only
    // when extension succeeded (the caller retries the read), otherwise
    // aborts, classed by why the extension failed (see try_extend).
    // Outlined so the per-read hot path's code size and alignment do not
    // depend on the extension/abort machinery.
    __attribute__((noinline)) void extend_or_abort() {
        if (cfg_.read_extension && try_extend()) return;
        throw detail::AbortTx{!extend_conflict_};
    }

    // Full O(R) read-set validation against the current orec words.
    bool walk_read_set() const {
        return sets_->reads.all_of(
            [](const detail::OrecReadSet::Entry& e) {
                return e.orec->load(std::memory_order_acquire) == e.word;
            });
    }

    // Bounded wait for a foreign in-place lock to clear, with stall
    // detection. No descriptor to help or kill: after cfg_.lock_spin
    // polite spins the waiter anchors the time base (stall_waits) and
    // tolerates the lock until either the total attempt budget runs out
    // or the base advances stall_ts_budget stamps past the anchor while
    // the orec stays locked -- the whole system committing around a lock
    // that never moves proves the owner is preempted, not slow. Both trip
    // wires abort through the contention seam (stalled_aborts) so run()'s
    // ladder takes over. The irrevocability-token holder never aborts: it
    // can only meet locks of already-in-flight commits, which are
    // guaranteed to finish.
    void wait_on_locked_orec(const std::atomic<std::uint64_t>* o) {
        std::uint64_t spins = 0;
        std::uint64_t anchor = 0;
        bool stalled = false;
        const std::uint64_t budget =
            std::uint64_t{cfg_.lock_spin} *
            std::max(2u, cfg_.stall_spin_factor);
        while (o->load(std::memory_order_acquire) & 1u) {
            ++spins;
            if (spins > cfg_.lock_spin && !irrevocable_) {
                if (!stalled) {
                    stalled = true;
                    anchor = clk_.get_time();
                    stats_->stall_waits.fetch_add(
                        1, std::memory_order_relaxed);
                }
                if (spins > budget ||
                    ((spins & 63u) == 0 &&
                     clk_.get_time() - anchor > cfg_.stall_ts_budget)) {
                    stats_->stalled_aborts.fetch_add(
                        1, std::memory_order_relaxed);
                    throw detail::AbortTx{};
                }
            }
            cpu_relax();
            // Single-CPU hosts: the lock owner cannot run unless we yield.
            if ((spins & 63u) == 0) std::this_thread::yield();
        }
    }

    // --- commit ---------------------------------------------------------

    bool commit();
    void rollback();

    Clock& clk_;
    const OrecConfig& cfg_;
    OrecStm* stm_;
    std::uint64_t dev_;
    detail::StatsBlock* stats_;
    detail::OrecAccessSets* sets_;
    detail::RecentStamps* recent_;
    detail::EpochStripes* stripes_;
    detail::IrrevGate* gate_;
    // Owning context's token flag: true while the context holds the
    // engine-global irrevocability token (it survives aborted attempts,
    // so the retry of a failed escalation reruns irrevocably).
    bool* token_held_;
    bool irrevocable_ = false;
    // Cached from stm_ at begin (immutable for the STM's lifetime).
    std::atomic<std::uint64_t>* tbl_ = nullptr;
    std::size_t tmask_ = 0;
    std::uint64_t lower_ = 0;
    std::uint64_t upper_ = 0;
    bool writes_sorted_ = false;
    // Set by commit() when it failed only because the drawn stamp lagged
    // the snapshot (lower_ > commit_ts); run() treats that retry as a
    // freshness abort and draws the time base forward.
    bool commit_stamp_stale_ = false;
    // Why the last try_extend() returned false: true when the read-set
    // walk found a changed word (conflict), false when time had not
    // advanced (freshness). Reset at every try_extend() entry.
    bool extend_conflict_ = false;
};

// Per-thread handle: thread clock, stats block, pooled access sets. One
// context per thread, one live transaction per context.
class OrecThreadContext {
 public:
    using Clock = tb::ThreadClock;

    // Runs `f` as a transaction until it commits, with bounded retry and
    // exponential backoff; passes f's return value through.
    template <typename F>
    auto run(F&& f) {
        using R = std::invoke_result_t<F&, OrecTransaction&>;
        // Abnormal-exit insurance: an exception escaping the user functor
        // (or the RetryExhausted below) while escalated must release the
        // token; the normal commit path releases it in txn_commit first.
        detail::TokenGuard token_guard{gate_, &token_held_};
        std::uint64_t conflict_aborts = 0, freshness_aborts = 0;
        for (unsigned attempt = 0;; ++attempt) {
            bool freshness = false;
            maybe_escalate(attempt);
            try {
                OrecTransaction tx = txn_begin();
                if constexpr (std::is_void_v<R>) {
                    f(tx);
                    if (txn_commit(tx)) return;
                } else {
                    R r = f(tx);
                    if (txn_commit(tx)) return r;
                }
                freshness = tx.commit_stamp_stale_;
            } catch (const detail::AbortTx& abort) {
                stats_->aborts.fetch_add(1, std::memory_order_relaxed);
                freshness = abort.freshness;
            }
            freshness ? ++freshness_aborts : ++conflict_aborts;
            if (attempt + 1 >= cfg_.max_retries)
                throw RetryExhausted("orec", stats(), conflict_aborts,
                                     freshness_aborts);
            abort_pause(attempt, freshness);
        }
    }

    // Degradation ladder, final rung (see the TVar core's twin): claim the
    // engine-global token so the next attempt runs irrevocably.
    void maybe_escalate(unsigned attempt) {
        if (token_held_ || cfg_.irrevocable_threshold == 0 ||
            attempt < cfg_.irrevocable_threshold)
            return;
        gate_->acquire(&token_held_);
        token_held_ = true;
        stats_->escalations.fetch_add(1, std::memory_order_relaxed);
    }

    // Post-abort pause, outlined to keep run()'s no-abort hot path small
    // (see the TVar core's twin). Same livelock defense as there: a
    // counter whose time only moves when stamps are drawn
    // (batched/sharded) must see a draw during a FRESHNESS abort storm,
    // or snapshots never reach the present and those aborts repeat
    // forever. Conflict aborts resolve through backoff alone and must
    // not drain the batched/sharded stamp blocks. Freshness aborts in
    // turn skip the backoff: nothing is contended -- the snapshot is
    // merely stale -- so the retry goes immediately with the drawn stamp
    // keeping the counter moving.
    __attribute__((noinline)) void abort_pause(unsigned attempt,
                                               bool freshness) {
        if (freshness) {
            if (attempt >= 1) recent_.push(clk_.get_new_ts());
            return;
        }
        const auto b0 = std::chrono::steady_clock::now();
        chronostm::backoff(
            attempt, reinterpret_cast<std::uintptr_t>(stats_.get()));
        stats_->backoff_ns.fetch_add(
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - b0)
                    .count()),
            std::memory_order_relaxed);
    }

    OrecTransaction txn_begin() {
        return OrecTransaction(clk_, cfg_, stm_, dev_, stats_.get(),
                               &sets_, &recent_, stripes_, gate_,
                               &token_held_);
    }

    bool txn_commit(OrecTransaction& tx) {
        if (tx.commit()) {
            stats_->commits.fetch_add(1, std::memory_order_relaxed);
            if (tx.irrevocable_)
                stats_->irrevocable_commits.fetch_add(
                    1, std::memory_order_relaxed);
            if (token_held_) {
                gate_->release();
                token_held_ = false;
            }
            return true;
        }
        stats_->aborts.fetch_add(1, std::memory_order_relaxed);
        return false;
    }

    TxStats stats() const {
        TxStats s(
            stats_->commits.load(std::memory_order_relaxed),
            stats_->aborts.load(std::memory_order_relaxed), 0, 0,
            stats_->false_conflicts.load(std::memory_order_relaxed));
        detail::fill_fast_path_stats(s, *stats_);
        return s;
    }

 private:
    friend class OrecStm;

    OrecThreadContext(Clock clk, const OrecConfig& cfg, OrecStm* stm,
                      std::uint64_t dev,
                      std::shared_ptr<detail::StatsBlock> stats,
                      detail::EpochStripes* stripes,
                      detail::IrrevGate* gate)
        : clk_(std::move(clk)), cfg_(cfg), stm_(stm), dev_(dev),
          stats_(std::move(stats)), stripes_(stripes), gate_(gate) {}

    Clock clk_;
    OrecConfig cfg_;
    OrecStm* stm_;
    std::uint64_t dev_;
    std::shared_ptr<detail::StatsBlock> stats_;
    detail::EpochStripes* stripes_;
    detail::IrrevGate* gate_;
    // True while this context holds the engine-global irrevocability
    // token; survives aborted attempts so a failed escalation retries
    // irrevocably instead of re-queuing for the token.
    bool token_held_ = false;
    detail::OrecAccessSets sets_;
    detail::RecentStamps recent_;
};

class OrecStm {
 public:
    static constexpr unsigned kOrecShift = 4;  // 16-byte orec granules

    explicit OrecStm(tb::TimeBase tbase, OrecConfig cfg = OrecConfig{})
        : tbase_(std::move(tbase)), cfg_(cfg) {
        if (cfg_.table_bits < 2) cfg_.table_bits = 2;
        if (cfg_.table_bits > 26) cfg_.table_bits = 26;
        const std::size_t n = std::size_t{1} << cfg_.table_bits;
        mask_ = n - 1;
        // Value-initialized: every orec starts unlocked at version 0.
        table_ = std::make_unique<std::atomic<std::uint64_t>[]>(n);
        // Epoch stripes use the SAME shift+mask granule hash family as
        // the orec table, with the stripe index being the TOP bits of the
        // orec index: shift = kOrecShift + table_bits - log2(stripes), so
        // one stripe covers a contiguous orec-table range and granules
        // aliasing to one orec always share a stripe (the read path
        // relies on that to skip re-touching on dedup hits). Stripe count
        // is capped at the table size so the shift never drops below
        // kOrecShift.
        unsigned want = cfg_.filter_stripes;
        const unsigned cap =
            cfg_.table_bits < 6
                ? (1u << cfg_.table_bits)
                : detail::EpochStripes::kMaxStripes;
        unsigned count = 1;
        while (count < want && count < cap) count <<= 1;
        unsigned lg = 0;
        while ((1u << lg) < count) ++lg;
        epoch_stripes_ = detail::EpochStripes(
            count, kOrecShift + cfg_.table_bits - lg);
        cfg_.filter_stripes = epoch_stripes_.count();
    }

    OrecStm(const OrecStm&) = delete;
    OrecStm& operator=(const OrecStm&) = delete;

    // The shift+mask metadata lookup the engine exists for. Consecutive
    // 16-byte data granules map to consecutive table entries, so the four
    // orecs guarding one 64-byte data line share one table line (array
    // scans stay local); distinct data lines land on distinct table lines.
    std::atomic<std::uint64_t>* orec_of(const void* p) {
        return &table_[(reinterpret_cast<std::uintptr_t>(p) >> kOrecShift) &
                       mask_];
    }

    OrecThreadContext make_context() {
        auto block = std::make_shared<detail::StatsBlock>();
        {
            std::lock_guard<std::mutex> g(mu_);
            blocks_.push_back(block);
        }
        // Pairwise stamp uncertainty: both the version's stamp and the
        // snapshot's stamp may deviate by the published bound.
        return OrecThreadContext(tbase_.make_thread_clock(), cfg_, this,
                                 2 * tbase_.deviation(), std::move(block),
                                 &epoch_stripes_, &irrev_gate_);
    }

    TxStats collected_stats() const {
        std::uint64_t c = 0, a = 0, fc = 0;
        std::lock_guard<std::mutex> g(mu_);
        TxStats partial;
        for (const auto& b : blocks_) {
            c += b->commits.load(std::memory_order_relaxed);
            a += b->aborts.load(std::memory_order_relaxed);
            fc += b->false_conflicts.load(std::memory_order_relaxed);
            detail::fill_fast_path_stats(partial, *b);
        }
        TxStats s(c, a, 0, 0, fc);
        s.extensions = partial.extensions;
        s.extension_fast_hits = partial.extension_fast_hits;
        s.validation_fast_hits = partial.validation_fast_hits;
        s.stripe_fast_hits = partial.stripe_fast_hits;
        s.stripe_walks = partial.stripe_walks;
        s.ro_commits = partial.ro_commits;
        s.backoff_us = partial.backoff_us;
        s.irrevocable_commits = partial.irrevocable_commits;
        s.escalations = partial.escalations;
        s.stall_waits = partial.stall_waits;
        s.stalled_aborts = partial.stalled_aborts;
        s.injected_faults = partial.injected_faults;
        return s;
    }

    // Total epoch bumps across all stripes: with filter_stripes=1, one
    // bump per writer commit attempt that reached the stamp draw (the
    // PR 7 counter); with more stripes, one bump per distinct stripe each
    // such attempt's write set covered. Exposed for tests and
    // instrumentation.
    std::uint64_t commit_epoch() const { return epoch_stripes_.sum(); }

    // Stripe geometry, exposed so tests and benches can place granules
    // in (or out of) a given stripe deliberately.
    unsigned filter_stripe_of(const void* p) const {
        return epoch_stripes_.stripe_of(p);
    }
    unsigned filter_stripes() const { return epoch_stripes_.count(); }

    const OrecConfig& config() const { return cfg_; }
    std::size_t table_size() const { return mask_ + 1; }
    tb::TimeBase& time_base() { return tbase_; }

    // True while some transaction holds the irrevocability token; exposed
    // for tests and instrumentation.
    bool irrevocable_active() const {
        return irrev_gate_.word.load(std::memory_order_acquire) & 1u;
    }

 private:
    friend class OrecTransaction;

    tb::TimeBase tbase_;
    OrecConfig cfg_;
    std::size_t mask_ = 0;
    std::unique_ptr<std::atomic<std::uint64_t>[]> table_;
    // Cache-line-padded epoch stripes: a writer commit bumps only the
    // stripes its write set hashes into; filtered validation compares
    // only the stripes the read set touched.
    detail::EpochStripes epoch_stripes_;
    // Irrevocability gate (token bit + in-flight update-commit count);
    // own cache line, touched twice per update commit.
    alignas(64) detail::IrrevGate irrev_gate_;
    mutable std::mutex mu_;
    std::vector<std::shared_ptr<detail::StatsBlock>> blocks_;
};

inline void OrecTransaction::cache_table() {
    tbl_ = stm_->table_.get();
    tmask_ = stm_->mask_;
}

inline std::atomic<std::uint64_t>* OrecTransaction::orec_of(
    const void* p) const {
    return &tbl_[(reinterpret_cast<std::uintptr_t>(p) >>
                  OrecStm::kOrecShift) &
                 tmask_];
}

inline std::uint64_t OrecTransaction::load_validated(const void* gran) {
    auto* o = orec_of(gran);
    // Chaos harness: an armed orec_read site may delay here or demand an
    // injected abort; the token holder never honors the abort half.
    if (CHRONOSTM_FAILPOINT(orec_read) && !irrevocable_)
        throw detail::AbortTx{};
    if (irrevocable_) {
        // Quiescent heap: no update commit can run while this transaction
        // holds the token, so the current granule image IS the snapshot --
        // no admission check, no read-set bookkeeping, no seqlock recheck.
        // Only lower_ advances, keeping the commit stamp above every
        // version this attempt read (commit() pulls the time base forward
        // if the drawn stamp lags it).
        std::uint64_t w1 = o->load(std::memory_order_acquire);
        while (w1 & 1u) {
            wait_on_locked_orec(o);
            w1 = o->load(std::memory_order_acquire);
        }
        const std::uint64_t v = __atomic_load_n(
            static_cast<const std::uint64_t*>(gran), __ATOMIC_ACQUIRE);
        lower_ = std::max(lower_, (w1 >> 1) + dev_);
        return v;
    }
    // Read-after-read dedup keyed by orec: a duplicate re-delivers under
    // the admitted word; a miss leaves the landing slot staged so
    // admission below is one store.
    auto* dup = sets_->reads.find_or_stage(o);
    // Stripe snapshot BEFORE the admitting orec-word load. The stripe
    // bits are the top bits of the orec index (OrecStm picks the shift),
    // so granules aliasing to one orec share a stripe -- a dup hit means
    // the stripe was already touched at the first admission.
    if (cfg_.epoch_filter && dup == nullptr) touch_stripe(gran);
    for (;;) {
        std::uint64_t w1 = o->load(std::memory_order_acquire);
        if (__builtin_expect(w1 & 1u, 0)) {
            wait_on_locked_orec(o);
            continue;
        }
        const std::uint64_t wv = w1 >> 1;
        // Validity of the current version starts at wv, shrunk by the
        // pairwise stamp uncertainty dev_ -- identical to the TVar core.
        // A stamp this context itself drew before the transaction began
        // carries no uncertainty at all: it is this thread's own earlier
        // commit (stamps are unique), already current when the snapshot
        // anchor was taken, so it is admissible regardless of the
        // numeric gap -- the escape hatch that keeps a thread re-reading
        // its own writes off the extend/abort path under imprecise bases.
        const bool fresh = wv + dev_ <= upper_;
        if (fresh || recent_->contains(wv)) {
            const std::uint64_t v = __atomic_load_n(
                static_cast<const std::uint64_t*>(gran), __ATOMIC_ACQUIRE);
            // Seqlock recheck; pairs with the release fence before the
            // data stores in commit().
            std::atomic_thread_fence(std::memory_order_acquire);
            if (__builtin_expect(o->load(std::memory_order_acquire) != w1,
                                 0))
                continue;
            if (__builtin_expect(dup != nullptr, 0)) {
                // A word that changed since admission means snapshot
                // damage; refuse (same reasoning as the TVar core).
                if (dup->word != w1) throw detail::AbortTx{};
                if (dup->gran0 != gran && !dup->aliased) {
                    // Second distinct granule under one orec: table
                    // aliasing observed on the read path.
                    dup->aliased = 1;
                    stats_->false_conflicts.fetch_add(
                        1, std::memory_order_relaxed);
                }
                return v;
            }
            // Own-stamp admissions contribute no lower-bound constraint:
            // the version's real validity began before this snapshot.
            if (fresh) lower_ = std::max(lower_, wv + dev_);
            sets_->reads.commit_stage(o, w1, gran);
            return v;
        }
        // Too new for the snapshot: extend to the present (revalidating
        // the read set) and retry. No multi-version fallback here -- the
        // orec table keeps no history -- so failure to extend aborts. The
        // extension's failure reason decides the class: a failed read-set
        // walk is a data CONFLICT (backoff resolves it; the retry must
        // not drain batched/sharded stamp blocks), while time-not-
        // advanced is FRESHNESS -- run() may draw-and-discard a stamp so
        // batched/sharded counters advance.
        extend_or_abort();
    }
}

inline void OrecTransaction::store_granule(void* gran,
                                           const unsigned char* src,
                                           std::size_t off, std::size_t n) {
    const std::uint32_t m =
        n == 8 ? 0xFFu : ((1u << n) - 1u) << off;
    const std::uint32_t wi = find_write(gran);
    if (wi != detail::PtrIndex::kNone) {
        // Write-after-write: merge into the buffered image in place.
        detail::OrecWriteRec& rec = sets_->writes[wi];
        std::memcpy(reinterpret_cast<unsigned char*>(&rec.value) + off, src,
                    n);
        rec.mask |= m;
        return;
    }
    detail::OrecWriteRec rec{};
    rec.gran = gran;
    rec.orec = orec_of(gran);
    std::memcpy(reinterpret_cast<unsigned char*>(&rec.value) + off, src, n);
    rec.mask = m;
    auto& ws = sets_->writes;
    ws.push_back(rec);
    if (ws.size() == detail::kInlineScan + 1) {
        // Crossed the inline threshold: index everything accumulated.
        for (std::uint32_t i = 0; i < ws.size(); ++i)
            sets_->write_index.insert(ws[i].gran, i);
    } else if (ws.size() > detail::kInlineScan + 1) {
        // find_write just missed on this key: its staged bucket is ours.
        sets_->write_index.commit_stage(gran, ws.size() - 1);
    }
    writes_sorted_ = false;
}

// Commit: lock the write set's orecs in granule-address order (in-place
// bit set, version preserved), draw the commit stamp AFTER the last lock,
// validate the read set exactly (words, not clocks), then publish data
// and release every orec with the new version.
inline bool OrecTransaction::commit() {
    auto& ws = sets_->writes;
    if (ws.empty()) {
        // Read-only fast path: the snapshot reads are consistent and the
        // transaction serializes at its snapshot -- no stamp drawn, no
        // lock taken, no epoch bump.
        stats_->ro_commits.fetch_add(1, std::memory_order_relaxed);
        return true;
    }

    if (!writes_sorted_) {
        std::sort(ws.begin(), ws.end(),
                  [](const detail::OrecWriteRec& a,
                     const detail::OrecWriteRec& b) {
                      return a.gran < b.gran;
                  });
        writes_sorted_ = true;
    }

    // Update commits run inside the irrevocability gate: held at the door
    // while a token holder is active, counted in flight otherwise so an
    // escalating transaction can drain the pipeline. The token holder
    // itself skips the gate -- it IS the gate. The guard exits on every
    // path out, including exceptions.
    detail::GateGuard gate_guard;
    if (!irrevocable_) {
        gate_->enter_commit();
        gate_guard.gate = gate_;
    }

    // Lock phase. Granule-address order is deterministic across
    // transactions; two granules of one transaction may still share an
    // orec (table aliasing), which the ownership index turns into a
    // single lock acquisition instead of a self-deadlock.
    auto& owned = sets_->owned;
    owned.clear();
    try {
        for (std::uint32_t i = 0; i < ws.size(); ++i) {
            detail::OrecWriteRec& rec = ws[i];
            const std::uint32_t prev = owned.find_or_stage(rec.orec);
            if (prev != detail::PtrIndex::kNone) {
                // Already locked by an earlier record of this commit:
                // distinct granules aliasing one orec.
                rec.locked_word = ws[prev].locked_word;
                rec.owner = 0;
                stats_->false_conflicts.fetch_add(1,
                                                  std::memory_order_relaxed);
                continue;
            }
            for (;;) {
                std::uint64_t w = rec.orec->load(std::memory_order_relaxed);
                if (w & 1u) {
                    wait_on_locked_orec(rec.orec);
                    continue;
                }
                if (rec.orec->compare_exchange_weak(
                        w, w | 1u, std::memory_order_acq_rel,
                        std::memory_order_relaxed)) {
                    rec.locked_word = w;
                    rec.owner = 1;
                    owned.commit_stage(rec.orec, i);
                    break;
                }
            }
        }
    } catch (const detail::AbortTx&) {
        rollback();
        return false;
    }

    // Chaos harness: fake a committer preempted right after taking its
    // last orec lock, before anything is published.
    (void)CHRONOSTM_FAILPOINT(orec_commit_post_lock);

    // Bump the epoch stripes this write set covers (one bump per DISTINCT
    // stripe) while every orec lock is held and BEFORE the stamp draw: a
    // reader whose stripe check misses a bump drew its extension time
    // before our stamp existed, so the deviation-aware admission rule
    // keeps these versions out; a reader that validates while we still
    // hold a conflicting lock fails on the locked word. A spurious bump
    // from an attempt that aborts below only costs other readers a walk.
    // The fetch_add return doubles as this commit's own pre-check for
    // stripes its read set shares with its write set.
    bool epoch_clean = false;
    std::uint64_t wsig = 0;  // stripes this commit bumped
    if (cfg_.epoch_filter) {
        epoch_clean = true;
        const auto& sc = sets_->stripes;
        for (const auto& rec : ws) {
            const unsigned s = stripes_->stripe_of(rec.gran);
            const std::uint64_t bit = std::uint64_t{1} << s;
            if (wsig & bit) continue;
            wsig |= bit;
            const std::uint64_t prev =
                (*stripes_)[s].fetch_add(1, std::memory_order_acq_rel);
            if ((sc.sig & bit) && prev != sc.snap[s]) epoch_clean = false;
        }
    }

    // Chaos harness: stall in the window the epoch filter's post-draw
    // re-check exists to close.
    (void)CHRONOSTM_FAILPOINT(orec_commit_pre_stamp);

    // Locks held: draw the commit timestamp. Drawn after the LAST lock --
    // a pre-lock stamp would let a fresh reader accept these writes inside
    // a snapshot that still contains pre-lock state. Recorded as an own
    // stamp either way: uniqueness means no foreign version can ever
    // carry it, so recording a stamp of a failed commit is inert.
    std::uint64_t commit_ts = clk_.get_new_ts();
    recent_->push(commit_ts);
    // Re-check every READ stripe AFTER drawing commit_ts: the fetch_adds
    // prove the read set clean only up to the bumps, but the commit
    // serializes at commit_ts, drawn later. A writer bumping in between
    // may draw a SMALLER stamp and publish into our read set below
    // commit_ts; each read stripe's post-draw load must still show only
    // our own bump (if any). A writer it misses drew after us (its
    // counter RMW following ours on the shared stripe orders its bump
    // before this load) -- the same residual class a post-draw walk
    // admits. See DESIGN.md "Striped epoch soundness".
    if (epoch_clean) {
        const auto& sc = sets_->stripes;
        std::uint64_t sig = sc.sig;
        while (sig != 0) {
            const unsigned s = static_cast<unsigned>(__builtin_ctzll(sig));
            sig &= sig - 1;
            const std::uint64_t expect =
                sc.snap[s] + ((wsig >> s) & 1u);
            if ((*stripes_)[s].load(std::memory_order_acquire) != expect) {
                epoch_clean = false;
                break;
            }
        }
    }

    // Commit-time validation: every read stripe unchanged up to our own
    // bump (re-confirmed after the stamp draw) means no other writer
    // committed into any stripe the read set covers since this
    // transaction last validated, so no read-set word can have changed
    // (own locks included: we could only have locked an orec whose word
    // was still the admitted one).
    bool reads_valid;
    if (irrevocable_) {
        // Token held since before this attempt's first read (or since a
        // successful become_irrevocable walk): the commit pipeline has
        // been quiescent throughout, so no read-set word can have changed
        // -- validation is vacuous.
        reads_valid = true;
    } else if (epoch_clean) {
        reads_valid = true;
        stats_->validation_fast_hits.fetch_add(1, std::memory_order_relaxed);
        stats_->stripe_fast_hits.fetch_add(1, std::memory_order_relaxed);
    } else {
        if (cfg_.epoch_filter)
            stats_->stripe_walks.fetch_add(1, std::memory_order_relaxed);
        reads_valid = sets_->reads.all_of(
            [&](const detail::OrecReadSet::Entry& e) {
                const std::uint64_t cur =
                    e.orec->load(std::memory_order_acquire);
                if (cur == e.word) return true;
                if (cur == (e.word | 1u)) {
                    // Same version, lock bit set. A foreign committer
                    // locking in place would present the same word, so
                    // ownership is decided by this commit's own index,
                    // never the word.
                    const std::uint32_t i = owned.find_or_stage(e.orec);
                    if (i != detail::PtrIndex::kNone &&
                        ws[i].locked_word == e.word)
                        return true;
                }
                return false;
            });
    }
    if (!reads_valid) {
        rollback();
        return false;
    }
    if (lower_ > commit_ts) {
        if (irrevocable_) {
            // The token holder cannot abort on a freshness problem: pull
            // the time base forward by drawing (and discarding) stamps
            // until the commit stamp clears the snapshot's lower bound.
            // Each draw advances the counter, so this terminates.
            do {
                commit_ts = clk_.get_new_ts();
            } while (lower_ > commit_ts);
            recent_->push(commit_ts);
        } else {
            // A stamp that lags the snapshot is a time-base freshness
            // problem (batched/sharded blocks), not a data conflict.
            commit_stamp_stale_ = true;
            rollback();
            return false;
        }
    }

    // One stamp for the whole write set, bumped above every locked
    // version for per-orec monotonicity under coarse or tied stamps.
    std::uint64_t new_ts = commit_ts;
    for (const auto& rec : ws)
        if (rec.owner)
            new_ts = std::max(new_ts, (rec.locked_word >> 1) + 1);

    // Publish. The first release fence keeps the lock CASes above ordered
    // before the data stores. Partial-granule records merge with memory --
    // safe because this thread holds the granule's orec, so nobody else
    // may write any byte of it until the publish below. The data pass
    // walks the granule-sorted write set, so aliased granules of one orec
    // all land before that orec's single publish.
    // Chaos harness: a committer parked here is decided but has applied
    // nothing -- and the orec engine has no helpers, so waiters must
    // tolerate or abort around it.
    (void)CHRONOSTM_FAILPOINT(orec_commit_pre_writeback);

    std::atomic_thread_fence(std::memory_order_release);
    for (const auto& rec : ws) {
        auto* gp = static_cast<std::uint64_t*>(rec.gran);
        if (rec.mask == 0xFFu) {
            __atomic_store_n(gp, rec.value, __ATOMIC_RELAXED);
        } else {
            const std::uint64_t cur = __atomic_load_n(gp, __ATOMIC_RELAXED);
            __atomic_store_n(gp,
                             detail::orec_merge(cur, rec.value, rec.mask),
                             __ATOMIC_RELAXED);
        }
    }
    // Chaos harness: data applied, orec locks still held.
    (void)CHRONOSTM_FAILPOINT(orec_commit_pre_unlock);
    if (cfg_.batched_writeback) {
        // Batched version publish: one release fence for the whole write
        // set, then relaxed stores -- each orec published exactly once
        // (owner records). Readers' acquire loads of the orec synchronize
        // with the fence ([atomics.fences]), so data stays visible before
        // the version that admits it. kFencedPublishOrder upgrades the
        // stores to release under TSan, which cannot model thread fences.
        std::atomic_thread_fence(std::memory_order_release);
        for (const auto& rec : ws)
            if (rec.owner)
                rec.orec->store(new_ts << 1, kFencedPublishOrder);
    } else {
        // Pre-batching publish sequence (per-orec release stores), kept
        // selectable so the bench can pin batched against unbatched.
        for (const auto& rec : ws)
            if (rec.owner)
                rec.orec->store(new_ts << 1, std::memory_order_release);
    }
    return true;
}

// Abort path: restore the saved word on every orec this commit actually
// locked (owner records only; aliased duplicates never performed a CAS).
inline void OrecTransaction::rollback() {
    auto& ws = sets_->writes;
    for (std::uint32_t i = 0; i < ws.size(); ++i)
        if (ws[i].owner)
            ws[i].orec->store(ws[i].locked_word, std::memory_order_release);
}

// Typed raw-memory wrapper: a plain T, 8-aligned so the value sits inside
// one granule, accessed through the orec table like any other address.
// The var itself carries NO metadata -- sizeof(WordVar<T>) is 8 -- which
// is the whole point of the engine.
template <typename T>
class WordVar {
    static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                  "WordVar<T> requires a trivially copyable T of at most 8 "
                  "bytes; use raw structs with tx_read/tx_write for wider "
                  "data");

 public:
    explicit WordVar(T initial) : v_(initial) {}
    WordVar(const WordVar&) = delete;
    WordVar& operator=(const WordVar&) = delete;

    T get(OrecTransaction& tx) const { return tx.read(&v_); }
    void set(OrecTransaction& tx, T v) { tx.write(&v_, v); }

    // Non-transactional read for post-run invariant checks (quiesced
    // state only). Goes through the containing granule's atomic load so
    // the engine's racing granule stores stay data-race-free under TSan.
    T unsafe_peek() const {
        const std::uint64_t g = __atomic_load_n(
            reinterpret_cast<const std::uint64_t*>(&v_), __ATOMIC_ACQUIRE);
        T out;
        std::memcpy(&out, &g, sizeof(T));
        return out;
    }

    T* raw() { return &v_; }
    const T* raw() const { return &v_; }

 private:
    alignas(8) mutable T v_;
};

template <typename T>
inline T tx_read(OrecTransaction& tx, const T* addr) {
    return tx.read(addr);
}
template <typename T>
inline void tx_write(OrecTransaction& tx, T* addr, const T& v) {
    tx.write(addr, v);
}

}  // namespace chronostm
