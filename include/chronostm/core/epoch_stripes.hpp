// Striped commit-epoch filter metadata shared by both engines.
//
// The PR 7 filter kept ONE engine-global epoch word: every update commit
// bumped it under its write locks, and a reader whose begin-time snapshot
// was unchanged skipped the O(R) read-set walk. That word is exactly the
// centralized-metadata bottleneck the paper argues against -- a single
// background writer anywhere in the heap invalidates every reader's fast
// hit, and all committers serialize on one hot cache line.
//
// EpochStripes shards the word into `filter_stripes` cache-line-padded
// counters. Writers bump only the stripes their write set hashes into;
// each transaction accumulates a 64-bit stripe signature from its read
// set plus a per-stripe snapshot taken at FIRST TOUCH of the stripe
// (StripeScratch below), so try_extend() and commit-time validation
// compare only touched stripes. Aliasing -- two locations sharing a
// stripe -- can only force a spurious walk, never a stale fast hit: the
// snapshot is loaded before the admitting lock-word load, and writers
// bump before they unlock (DESIGN.md "Striped epoch soundness").
//
// The stripe count is rounded up to a power of two and clamped to
// [1, kMaxStripes=64] so the signature fits one uint64_t; stripes=1
// reproduces the single-word PR 7 filter bit for bit.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

namespace chronostm {
namespace detail {

struct alignas(64) EpochStripe {
    std::atomic<std::uint64_t> word{0};
};

class EpochStripes {
 public:
    static constexpr unsigned kMaxStripes = 64;

    // Default address-range granularity: one stripe covers a contiguous
    // 16 KiB block of address space (cycling every count*16 KiB). Range
    // hashing -- NOT a mixing hash -- is deliberate: a transaction's
    // footprint is allocation-clustered, so its signature covers few
    // stripes and a writer working elsewhere in the heap lands outside
    // them; a mixed hash would smear any R>count footprint over every
    // stripe and the filter would degenerate to the single-word one. It
    // also matches the orec engine's table geometry at the defaults
    // (kOrecShift=4 + table_bits=16 - log2(64) = 14), where a stripe is a
    // contiguous range of the orec table.
    static constexpr unsigned kDefaultShift = 14;

    EpochStripes() : EpochStripes(1) {}

    explicit EpochStripes(unsigned want, unsigned shift = kDefaultShift)
        : shift_(shift) {
        unsigned n = 1;
        while (n < want && n < kMaxStripes) n <<= 1;
        count_ = n;
        mask_ = n - 1;
        stripes_ = std::make_unique<EpochStripe[]>(n);
    }

    unsigned count() const { return count_; }
    unsigned mask() const { return mask_; }
    unsigned shift() const { return shift_; }

    unsigned stripe_of(const void* p) const {
        return static_cast<unsigned>(reinterpret_cast<std::uintptr_t>(p) >>
                                     shift_) &
               mask_;
    }

    std::atomic<std::uint64_t>& operator[](unsigned i) {
        return stripes_[i].word;
    }
    const std::atomic<std::uint64_t>& operator[](unsigned i) const {
        return stripes_[i].word;
    }

    // Sum of all stripe words: the total number of epoch bumps the engine
    // has performed. With one stripe this is the PR 7 commit_epoch_ word;
    // with more it is a diagnostic aggregate (a commit bumps one counter
    // per DISTINCT stripe its write set touches). Read-only commits never
    // bump anything, so 0 still means "no update commit published".
    std::uint64_t sum() const {
        std::uint64_t s = 0;
        for (unsigned i = 0; i < count_; ++i)
            s += stripes_[i].word.load(std::memory_order_acquire);
        return s;
    }

 private:
    std::unique_ptr<EpochStripe[]> stripes_;
    unsigned count_ = 1;
    unsigned mask_ = 0;
    unsigned shift_ = kDefaultShift;
};

// Per-transaction stripe state, owned by the thread context's access sets
// so it is pooled with them (no hot-path allocation) and reset per
// attempt. snap[s] is only meaningful where the signature bit s is set,
// so reset is one store.
struct StripeScratch {
    std::uint64_t sig = 0;  // bitmap: stripes covered by the read set
    std::uint64_t snap[EpochStripes::kMaxStripes];

    void reset() { sig = 0; }
};

}  // namespace detail
}  // namespace chronostm
