// Transactional skiplist set over raw nodes. One container op = one
// transaction: the traversal's slot reads are the read set, so a commit
// is consistent with a frozen snapshot of the search path -- no marks, no
// helping, the engine's validation does the linearization work.
//
// Node layout (computed at runtime from the policy's slot size):
//
//   [ u64 key | u64 level | slot next[0] | ... | slot next[level-1] ]
//
// key and level are plain immutable words: a node is initialized privately
// and published by committing the predecessors' next-slots, so readers see
// the header through the engine's release/acquire publication. The next
// slots hold node addresses as uintptr_t (0 = null).
//
// Erase unlinks physically in one transaction and tx_frees the node; the
// epoch layer keeps it alive for concurrent doomed readers and for
// old-snapshot reads served from predecessors' history rings.
//
// Thread handles (make_handle) must not outlive the container.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>

#include <chronostm/ds/policy.hpp>

namespace chronostm {
namespace ds {

namespace detail {

inline std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

}  // namespace detail

template <typename Policy>
class SkiplistSet {
 public:
    static constexpr unsigned kMaxLevel = 20;  // ~1M keys at p=1/2
    using Handle = TxHandle<Policy>;

    explicit SkiplistSet(Policy pol)
        : pol_(std::move(pol)),
          stride_(pol_.slot_size()),
          reap_{pol_.slot_dtor(), stride_} {
        head_ = raw_node(~std::uint64_t{0} /*unused*/, kMaxLevel);
        for (unsigned i = 0; i < kMaxLevel; ++i)
            pol_.slot_init(slot_at(head_, i), 0);
    }

    SkiplistSet(const SkiplistSet&) = delete;
    SkiplistSet& operator=(const SkiplistSet&) = delete;

    ~SkiplistSet() {
        // Quiesced teardown: free the live list; limbo nodes are freed by
        // the heap's domain destructor through the same reaper.
        void* cur = reinterpret_cast<void*>(pol_.slot_peek(slot_at(head_, 0)));
        while (cur != nullptr) {
            void* next =
                reinterpret_cast<void*>(pol_.slot_peek(slot_at(cur, 0)));
            reap_node(cur, &reap_);
            cur = next;
        }
        reap_node(head_, &reap_);
    }

    Handle make_handle() {
        Handle h{pol_.make_context(), {}, 0x9e3779b97f4a7c15ull};
        heap_.attach(h.heap);
        h.rng ^= 0xd1342543de82ef95ull *
                 (handle_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
        return h;
    }

    bool contains(Handle& h, std::uint64_t key) {
        bool found = false;
        run_alloc_tx(pol_, h, [&](auto& tx) {
            found = false;
            void* pred = head_;
            std::uint64_t cur = 0;
            for (int lvl = kMaxLevel - 1; lvl >= 0; --lvl) {
                cur = tx.load(slot_at(pred, lvl));
                while (cur != 0 && key_of(as_ptr(cur)) < key) {
                    pred = as_ptr(cur);
                    cur = tx.load(slot_at(pred, lvl));
                }
                if (cur != 0 && key_of(as_ptr(cur)) == key) {
                    found = true;
                    return;
                }
            }
        });
        return found;
    }

    // True if the key was inserted (false: already present).
    bool insert(Handle& h, std::uint64_t key) {
        bool inserted = false;
        run_alloc_tx(pol_, h, [&](auto& tx) {
            inserted = false;
            void* preds[kMaxLevel];
            std::uint64_t succs[kMaxLevel];
            if (find_path(tx, key, preds, succs)) return;  // present

            const unsigned lvl = random_level(h);
            void* n = h.heap.tx_alloc(node_bytes(lvl));
            header_of(n)[0] = key;
            header_of(n)[1] = lvl;
            // Private node: plain slot init with the succs this
            // transaction read; commit-time validation of the preds'
            // slots proves they are still the right successors.
            for (unsigned i = 0; i < lvl; ++i)
                pol_.slot_init(slot_at(n, i), succs[i]);
            for (unsigned i = 0; i < lvl; ++i)
                tx.store(slot_at(preds[i], i), as_word(n));
            inserted = true;
        });
        return inserted;
    }

    // True if the key was removed (false: not present).
    bool erase(Handle& h, std::uint64_t key) {
        bool erased = false;
        run_alloc_tx(pol_, h, [&](auto& tx) {
            erased = false;
            void* preds[kMaxLevel];
            std::uint64_t succs[kMaxLevel];
            if (!find_path(tx, key, preds, succs)) return;

            void* victim = as_ptr(succs[0]);
            const unsigned lvl = level_of(victim);
            for (unsigned i = 0; i < lvl; ++i)
                tx.store(slot_at(preds[i], i),
                         tx.load(slot_at(victim, i)));
            h.heap.tx_free(victim, &reap_node, &reap_);
            erased = true;
        });
        return erased;
    }

    // Quiesced-state only.
    std::size_t unsafe_size() const {
        std::size_t n = 0;
        std::uint64_t cur = pol_.slot_peek(slot_at(head_, 0));
        while (cur != 0) {
            ++n;
            cur = pol_.slot_peek(slot_at(as_ptr(cur), 0));
        }
        return n;
    }

    stm::TxHeap& heap() { return heap_; }
    const Policy& policy() const { return pol_; }

 private:
    struct Reap {
        stm::Engine::SlotDtor slot_dtor;
        std::size_t stride;
    };

    static constexpr std::size_t kHdr = 2 * sizeof(std::uint64_t);

    static std::uint64_t* header_of(void* n) {
        return static_cast<std::uint64_t*>(n);
    }
    static std::uint64_t key_of(void* n) { return header_of(n)[0]; }
    static unsigned level_of(void* n) {
        return static_cast<unsigned>(header_of(n)[1]);
    }
    static void* as_ptr(std::uint64_t w) {
        return reinterpret_cast<void*>(static_cast<std::uintptr_t>(w));
    }
    static std::uint64_t as_word(void* p) {
        return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(p));
    }

    void* slot_at(void* n, unsigned i) const {
        return static_cast<char*>(n) + kHdr + i * stride_;
    }
    std::size_t node_bytes(unsigned level) const {
        return kHdr + level * stride_;
    }

    void* raw_node(std::uint64_t key, unsigned level) const {
        void* n = ::operator new(node_bytes(level));
        header_of(n)[0] = key;
        header_of(n)[1] = level;
        return n;
    }

    // Reclamation-time deleter: runs slot destructors over the node
    // layout, then releases the raw block. Plain function + context so it
    // can sit in epoch limbo past any call frame.
    static void reap_node(void* n, void* ctx) noexcept {
        const Reap* r = static_cast<const Reap*>(ctx);
        const unsigned lvl = level_of(n);
        for (unsigned i = 0; i < lvl; ++i)
            r->slot_dtor(static_cast<char*>(n) + kHdr + i * r->stride);
        ::operator delete(n);
    }

    // Search path for `key`: preds/succs at every level; true if present
    // (succs[0] is then the node).
    template <typename Tx>
    bool find_path(Tx& tx, std::uint64_t key, void** preds,
                   std::uint64_t* succs) {
        void* pred = head_;
        for (int lvl = kMaxLevel - 1; lvl >= 0; --lvl) {
            std::uint64_t cur = tx.load(slot_at(pred, lvl));
            while (cur != 0 && key_of(as_ptr(cur)) < key) {
                pred = as_ptr(cur);
                cur = tx.load(slot_at(pred, lvl));
            }
            preds[lvl] = pred;
            succs[lvl] = cur;
        }
        return succs[0] != 0 && key_of(as_ptr(succs[0])) == key;
    }

    unsigned random_level(Handle& h) {
        unsigned lvl = 1;
        std::uint64_t r = detail::splitmix64(h.rng);
        while ((r & 1u) != 0 && lvl < kMaxLevel) {
            ++lvl;
            r >>= 1;
        }
        return lvl;
    }

    Policy pol_;
    std::size_t stride_;
    Reap reap_;  // declared before heap_: limbo drains in ~heap_ use it
    stm::TxHeap heap_;
    void* head_;
    std::atomic<std::uint64_t> handle_seq_{0};
};

}  // namespace ds
}  // namespace chronostm
