// Access policies for the transactional containers (ds/*.hpp). Containers
// are templated over a Policy so the SAME container code runs two ways:
//
//   EnginePolicy       -- the public path: a runtime-selected type-erased
//                         stm::Engine from the registry (stm::make). One
//                         switch-on-kind per slot access.
//   DirectPolicy<A>    -- the compile-time twin over a concrete adapter;
//                         slot accesses inline into the engine's read/
//                         write fast paths. Exists so the datastructure
//                         bench can price the facade dispatch (the <= 15%
//                         gate in check_bench.py) against otherwise
//                         identical code.
//
// A policy provides: Ctx, make_context(), run(ctx, f) calling f(tx&) with
// a handle exposing load(slot)/store(slot, v), and the slot layout ops
// (slot_size/align/init/destroy/peek). Slots hold 64-bit words; pointers
// travel through them as uintptr_t values.
//
// run_alloc_tx() is the container transaction wrapper: it pins the
// caller's epoch participant for the whole run() (doomed attempts stay
// protected), rolls back the previous attempt's allocations at each
// functor (re)invocation, and settles the allocation log on commit or
// exceptional exit. Container ops return results through captured locals,
// never through run_alloc_tx.

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include <chronostm/stm/alloc.hpp>
#include <chronostm/stm/facade.hpp>

namespace chronostm {
namespace ds {

// How each concrete adapter stores and accesses one transactional word;
// the compile-time mirror of the Engine slot switch.
template <typename A>
struct SlotTraits;

template <>
struct SlotTraits<stm::LsaAdapter> {
    using Slot = stm::LsaSlot;
    static constexpr std::size_t size() { return sizeof(Slot); }
    static constexpr std::size_t align() { return alignof(Slot); }
    static void init(void* p, std::uint64_t v) { new (p) Slot(v); }
    static void destroy(void* p) { static_cast<Slot*>(p)->~Slot(); }
    static std::uint64_t peek(const void* p) {
        return static_cast<const Slot*>(p)->unsafe_peek();
    }
    static std::uint64_t load(stm::LsaAdapter::Txn& t, void* p) {
        return static_cast<Slot*>(p)->get(t.inner());
    }
    static void store(stm::LsaAdapter::Txn& t, void* p, std::uint64_t v) {
        static_cast<Slot*>(p)->set(t.inner(), v);
    }
};

template <>
struct SlotTraits<stm::OrecAdapter> {
    static constexpr std::size_t size() { return sizeof(std::uint64_t); }
    static constexpr std::size_t align() { return alignof(std::uint64_t); }
    static void init(void* p, std::uint64_t v) {
        __atomic_store_n(static_cast<std::uint64_t*>(p), v, __ATOMIC_RELAXED);
    }
    static void destroy(void*) {}
    static std::uint64_t peek(const void* p) {
        return __atomic_load_n(
            static_cast<const std::uint64_t*>(const_cast<void*>(p)),
            __ATOMIC_RELAXED);
    }
    static std::uint64_t load(stm::OrecAdapter::Txn& t, void* p) {
        return t.inner().read(static_cast<const std::uint64_t*>(p));
    }
    static void store(stm::OrecAdapter::Txn& t, void* p, std::uint64_t v) {
        t.inner().write(static_cast<std::uint64_t*>(p), v);
    }
};

namespace detail {

// TL2 and VSTM share the wstm::Var slot; glock shares the bare-word one.
template <typename A>
struct WordStmSlotTraits {
    using Slot = stm::WordSlot;
    static constexpr std::size_t size() { return sizeof(Slot); }
    static constexpr std::size_t align() { return alignof(Slot); }
    static void init(void* p, std::uint64_t v) { new (p) Slot(v); }
    static void destroy(void* p) { static_cast<Slot*>(p)->~Slot(); }
    static std::uint64_t peek(const void* p) {
        return static_cast<const Slot*>(p)->unsafe_peek();
    }
    static std::uint64_t load(typename A::Txn& t, void* p) {
        return t.read(*static_cast<Slot*>(p));
    }
    static void store(typename A::Txn& t, void* p, std::uint64_t v) {
        t.write(*static_cast<Slot*>(p), v);
    }
};

}  // namespace detail

template <>
struct SlotTraits<stm::Tl2Adapter>
    : detail::WordStmSlotTraits<stm::Tl2Adapter> {};
template <>
struct SlotTraits<stm::VstmAdapter>
    : detail::WordStmSlotTraits<stm::VstmAdapter> {};

template <>
struct SlotTraits<stm::GlobalLockAdapter> {
    static constexpr std::size_t size() { return sizeof(std::uint64_t); }
    static constexpr std::size_t align() { return alignof(std::uint64_t); }
    static void init(void* p, std::uint64_t v) {
        __atomic_store_n(static_cast<std::uint64_t*>(p), v, __ATOMIC_RELAXED);
    }
    static void destroy(void*) {}
    static std::uint64_t peek(const void* p) {
        return __atomic_load_n(
            static_cast<const std::uint64_t*>(const_cast<void*>(p)),
            __ATOMIC_RELAXED);
    }
    // The glock Txn holds the big lock; relaxed atomics keep quiesced
    // peeks race-free under TSan.
    static std::uint64_t load(stm::GlobalLockAdapter::Txn&, void* p) {
        return peek(p);
    }
    static void store(stm::GlobalLockAdapter::Txn&, void* p,
                      std::uint64_t v) {
        init(p, v);
    }
};

// The public path: one runtime-selected engine, switch-dispatched slots.
struct EnginePolicy {
    using Ctx = stm::Context;

    stm::Engine eng;

    explicit EnginePolicy(stm::Engine e) : eng(std::move(e)) {}

    Ctx make_context() const { return eng.make_context(); }

    template <typename F>
    auto run(Ctx& ctx, F&& f) const {
        return eng.run(ctx, std::forward<F>(f));
    }

    std::size_t slot_size() const { return eng.slot_size(); }
    std::size_t slot_align() const { return eng.slot_align(); }
    void slot_init(void* p, std::uint64_t v) const { eng.slot_init(p, v); }
    void slot_destroy(void* p) const { eng.slot_destroy(p); }
    std::uint64_t slot_peek(const void* p) const { return eng.slot_peek(p); }
    stm::Engine::SlotDtor slot_dtor() const { return eng.slot_dtor(); }
};

// The compile-time twin: same container code, direct template calls.
template <typename A>
struct DirectPolicy {
    using Ctx = typename A::Context;
    using Traits = SlotTraits<A>;

    A* a;

    explicit DirectPolicy(A& adapter) : a(&adapter) {}

    Ctx make_context() const { return a->make_context(); }

    // The handle the container's generic lambdas receive.
    struct Tx {
        typename A::Txn& t;
        std::uint64_t load(void* p) { return Traits::load(t, p); }
        void store(void* p, std::uint64_t v) { Traits::store(t, p, v); }
    };

    template <typename F>
    auto run(Ctx& ctx, F&& f) const {
        return a->run(ctx, [&](typename A::Txn& t) {
            Tx tx{t};
            return f(tx);
        });
    }

    std::size_t slot_size() const { return Traits::size(); }
    std::size_t slot_align() const { return Traits::align(); }
    void slot_init(void* p, std::uint64_t v) const { Traits::init(p, v); }
    void slot_destroy(void* p) const { Traits::destroy(p); }
    std::uint64_t slot_peek(const void* p) const { return Traits::peek(p); }
    stm::Engine::SlotDtor slot_dtor() const { return &Traits::destroy; }
};

// Per-thread container handle: the policy's engine context plus the
// thread's transactional-allocation context (epoch participant + logs).
template <typename Policy>
struct TxHandle {
    typename Policy::Ctx ctx;
    stm::HeapCtx heap;
    // Per-handle RNG stream (skiplist level draws, workload key picks).
    std::uint64_t rng = 0x9e3779b97f4a7c15ull;
};

// One container operation = one pinned, allocation-aware transaction.
// `f` must be idempotent up to its tx_alloc/tx_free calls (the engines
// re-invoke it on retry); results travel through captured locals.
template <typename Policy, typename F>
void run_alloc_tx(const Policy& pol, TxHandle<Policy>& h, F&& f) {
    eb::PinGuard pinned = h.heap.pin();
    try {
        pol.run(h.ctx, [&](auto& tx) {
            h.heap.begin_attempt();
            f(tx);
        });
        h.heap.commit();
    } catch (...) {
        h.heap.rollback();
        throw;
    }
}

}  // namespace ds
}  // namespace chronostm
