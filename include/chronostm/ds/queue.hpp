// Transactional FIFO queue: singly-linked list with a dummy head sentinel
// (the Michael-Scott shape, minus the lock-free subtlety -- the engine's
// transactions make enqueue/dequeue atomic). The queue object owns two
// container-level slots, head and tail; a node is
//
//   [ u64 value | slot next ]
//
// value is a plain immutable word (initialized privately, published by
// the committing enqueue). Dequeue advances head to the first real node
// -- which becomes the new sentinel; its value was just consumed -- and
// tx_frees the old sentinel through the epoch layer, so a doomed reader
// still parked on the old head keeps dereferencing live memory.
//
// Thread handles (make_handle) must not outlive the container.

#pragma once

#include <cstddef>
#include <cstdint>
#include <new>

#include <chronostm/ds/policy.hpp>

namespace chronostm {
namespace ds {

template <typename Policy>
class TxQueue {
 public:
    using Handle = TxHandle<Policy>;

    explicit TxQueue(Policy pol)
        : pol_(std::move(pol)),
          stride_(pol_.slot_size()),
          reap_{pol_.slot_dtor(), stride_} {
        // head/tail control slots live in one private block.
        anchors_ = ::operator new(2 * stride_);
        void* sentinel = raw_node(0);
        pol_.slot_init(head_slot(), as_word(sentinel));
        pol_.slot_init(tail_slot(), as_word(sentinel));
    }

    TxQueue(const TxQueue&) = delete;
    TxQueue& operator=(const TxQueue&) = delete;

    ~TxQueue() {
        void* cur = as_ptr(pol_.slot_peek(head_slot()));
        while (cur != nullptr) {
            void* next = as_ptr(pol_.slot_peek(next_slot(cur)));
            reap_node(cur, &reap_);
            cur = next;
        }
        pol_.slot_destroy(head_slot());
        pol_.slot_destroy(tail_slot());
        ::operator delete(anchors_);
    }

    Handle make_handle() {
        Handle h{pol_.make_context(), {}, 0x9e3779b97f4a7c15ull};
        heap_.attach(h.heap);
        return h;
    }

    void enqueue(Handle& h, std::uint64_t value) {
        run_alloc_tx(pol_, h, [&](auto& tx) {
            void* n = h.heap.tx_alloc(node_bytes());
            value_of(n) = value;
            pol_.slot_init(next_slot(n), 0);
            void* tail = as_ptr(tx.load(tail_slot()));
            tx.store(next_slot(tail), as_word(n));
            tx.store(tail_slot(), as_word(n));
        });
    }

    // False when the queue is empty.
    bool dequeue(Handle& h, std::uint64_t& out) {
        bool ok = false;
        run_alloc_tx(pol_, h, [&](auto& tx) {
            ok = false;
            void* sentinel = as_ptr(tx.load(head_slot()));
            const std::uint64_t first = tx.load(next_slot(sentinel));
            if (first == 0) return;  // empty
            out = value_of(as_ptr(first));
            tx.store(head_slot(), first);
            h.heap.tx_free(sentinel, &reap_node, &reap_);
            ok = true;
        });
        return ok;
    }

    // Quiesced-state only.
    std::size_t unsafe_size() const {
        std::size_t n = 0;
        void* cur = as_ptr(pol_.slot_peek(head_slot()));
        std::uint64_t next = pol_.slot_peek(next_slot(cur));
        while (next != 0) {
            ++n;
            next = pol_.slot_peek(next_slot(as_ptr(next)));
        }
        return n;
    }

    stm::TxHeap& heap() { return heap_; }
    const Policy& policy() const { return pol_; }

 private:
    struct Reap {
        stm::Engine::SlotDtor slot_dtor;
        std::size_t stride;
    };

    static constexpr std::size_t kHdr = sizeof(std::uint64_t);

    static std::uint64_t& value_of(void* n) {
        return *static_cast<std::uint64_t*>(n);
    }
    static void* as_ptr(std::uint64_t w) {
        return reinterpret_cast<void*>(static_cast<std::uintptr_t>(w));
    }
    static std::uint64_t as_word(void* p) {
        return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(p));
    }

    void* head_slot() const { return anchors_; }
    void* tail_slot() const { return static_cast<char*>(anchors_) + stride_; }
    void* next_slot(void* n) const { return static_cast<char*>(n) + kHdr; }
    std::size_t node_bytes() const { return kHdr + stride_; }

    void* raw_node(std::uint64_t value) const {
        void* n = ::operator new(node_bytes());
        value_of(n) = value;
        pol_.slot_init(next_slot(n), 0);
        return n;
    }

    static void reap_node(void* n, void* ctx) noexcept {
        const Reap* r = static_cast<const Reap*>(ctx);
        r->slot_dtor(static_cast<char*>(n) + kHdr);
        ::operator delete(n);
    }

    Policy pol_;
    std::size_t stride_;
    Reap reap_;  // declared before heap_: limbo drains in ~heap_ use it
    stm::TxHeap heap_;
    void* anchors_ = nullptr;
};

}  // namespace ds
}  // namespace chronostm
