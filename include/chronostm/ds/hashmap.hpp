// Transactional open-addressing hash map over raw nodes. The table is a
// fixed block of CELL slots (capacity chosen at construction, rounded up
// to a power of two -- no transactional rehash); each cell holds a node
// address, 0 for never-used, 1 for tombstone. A node is
//
//   [ u64 key | slot value ]
//
// key is a plain immutable word (nodes are private until the committing
// insert publishes the cell). Linear probing; erase tombstones the cell
// and tx_frees the node; insert reuses the first tombstone on its probe
// path, which keeps churny workloads from filling the table with graves.
//
// A probe transaction reads every cell it crosses, so a commit validates
// the whole probe path -- the standard price of open addressing under
// optimistic concurrency, and exactly the varied-read-set transaction
// class the datastructure bench wants.
//
// Thread handles (make_handle) must not outlive the container.

#pragma once

#include <cstddef>
#include <cstdint>
#include <new>

#include <chronostm/ds/policy.hpp>

namespace chronostm {
namespace ds {

template <typename Policy>
class TxHashMap {
 public:
    using Handle = TxHandle<Policy>;

    TxHashMap(Policy pol, std::size_t capacity)
        : pol_(std::move(pol)),
          stride_(pol_.slot_size()),
          reap_{pol_.slot_dtor(), stride_} {
        cap_ = 1;
        while (cap_ < capacity) cap_ <<= 1;
        mask_ = cap_ - 1;
        table_ = ::operator new(cap_ * stride_);
        for (std::size_t i = 0; i < cap_; ++i)
            pol_.slot_init(cell(i), kEmpty);
    }

    TxHashMap(const TxHashMap&) = delete;
    TxHashMap& operator=(const TxHashMap&) = delete;

    ~TxHashMap() {
        for (std::size_t i = 0; i < cap_; ++i) {
            const std::uint64_t w = pol_.slot_peek(cell(i));
            if (w > kTombstone) reap_node(as_ptr(w), &reap_);
            pol_.slot_destroy(cell(i));
        }
        ::operator delete(table_);
    }

    Handle make_handle() {
        Handle h{pol_.make_context(), {}, 0x9e3779b97f4a7c15ull};
        heap_.attach(h.heap);
        return h;
    }

    // Insert or update; true if a new key was inserted.
    bool put(Handle& h, std::uint64_t key, std::uint64_t value) {
        bool inserted = false;
        run_alloc_tx(pol_, h, [&](auto& tx) {
            inserted = false;
            std::size_t idx = hash(key) & mask_;
            std::size_t grave = kNone;
            for (std::size_t step = 0; step <= mask_; ++step) {
                const std::uint64_t w = tx.load(cell(idx));
                if (w == kEmpty) {
                    void* n = make_node(h, key, value);
                    tx.store(cell(grave != kNone ? grave : idx), as_word(n));
                    inserted = true;
                    return;
                }
                if (w == kTombstone) {
                    if (grave == kNone) grave = idx;
                } else if (key_of(as_ptr(w)) == key) {
                    tx.store(value_slot(as_ptr(w)), value);
                    return;  // updated in place
                }
                idx = (idx + 1) & mask_;
            }
            if (grave != kNone) {
                void* n = make_node(h, key, value);
                tx.store(cell(grave), as_word(n));
                inserted = true;
                return;
            }
            throw std::bad_alloc();  // table full: capacity undersized
        });
        return inserted;
    }

    // False when absent.
    bool get(Handle& h, std::uint64_t key, std::uint64_t& out) {
        bool found = false;
        run_alloc_tx(pol_, h, [&](auto& tx) {
            found = false;
            std::size_t idx = hash(key) & mask_;
            for (std::size_t step = 0; step <= mask_; ++step) {
                const std::uint64_t w = tx.load(cell(idx));
                if (w == kEmpty) return;
                if (w != kTombstone && key_of(as_ptr(w)) == key) {
                    out = tx.load(value_slot(as_ptr(w)));
                    found = true;
                    return;
                }
                idx = (idx + 1) & mask_;
            }
        });
        return found;
    }

    // True if the key was removed.
    bool erase(Handle& h, std::uint64_t key) {
        bool erased = false;
        run_alloc_tx(pol_, h, [&](auto& tx) {
            erased = false;
            std::size_t idx = hash(key) & mask_;
            for (std::size_t step = 0; step <= mask_; ++step) {
                const std::uint64_t w = tx.load(cell(idx));
                if (w == kEmpty) return;
                if (w != kTombstone && key_of(as_ptr(w)) == key) {
                    tx.store(cell(idx), kTombstone);
                    h.heap.tx_free(as_ptr(w), &reap_node, &reap_);
                    erased = true;
                    return;
                }
                idx = (idx + 1) & mask_;
            }
        });
        return erased;
    }

    // Quiesced-state only.
    std::size_t unsafe_size() const {
        std::size_t n = 0;
        for (std::size_t i = 0; i < cap_; ++i)
            if (pol_.slot_peek(cell(i)) > kTombstone) ++n;
        return n;
    }

    std::size_t capacity() const { return cap_; }
    stm::TxHeap& heap() { return heap_; }
    const Policy& policy() const { return pol_; }

 private:
    struct Reap {
        stm::Engine::SlotDtor slot_dtor;
        std::size_t stride;
    };

    static constexpr std::uint64_t kEmpty = 0;
    static constexpr std::uint64_t kTombstone = 1;
    static constexpr std::size_t kNone = ~std::size_t{0};
    static constexpr std::size_t kHdr = sizeof(std::uint64_t);

    static std::uint64_t key_of(void* n) {
        return *static_cast<std::uint64_t*>(n);
    }
    static void* as_ptr(std::uint64_t w) {
        return reinterpret_cast<void*>(static_cast<std::uintptr_t>(w));
    }
    static std::uint64_t as_word(void* p) {
        return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(p));
    }
    static std::uint64_t hash(std::uint64_t x) {
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdull;
        x ^= x >> 33;
        x *= 0xc4ceb9fe1a85ec53ull;
        return x ^ (x >> 33);
    }

    void* cell(std::size_t i) const {
        return static_cast<char*>(table_) + i * stride_;
    }
    void* value_slot(void* n) const { return static_cast<char*>(n) + kHdr; }
    std::size_t node_bytes() const { return kHdr + stride_; }

    void* make_node(Handle& h, std::uint64_t key, std::uint64_t value) {
        void* n = h.heap.tx_alloc(node_bytes());
        *static_cast<std::uint64_t*>(n) = key;
        pol_.slot_init(value_slot(n), value);
        return n;
    }

    static void reap_node(void* n, void* ctx) noexcept {
        const Reap* r = static_cast<const Reap*>(ctx);
        r->slot_dtor(static_cast<char*>(n) + kHdr);
        ::operator delete(n);
    }

    Policy pol_;
    std::size_t stride_;
    Reap reap_;  // declared before heap_: limbo drains in ~heap_ use it
    stm::TxHeap heap_;
    void* table_ = nullptr;
    std::size_t cap_ = 0;
    std::size_t mask_ = 0;
};

}  // namespace ds
}  // namespace chronostm
