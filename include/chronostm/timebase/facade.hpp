// Runtime-pluggable time-base facade: the paper's central claim (Section 3)
// is that the time base is a REPLACEABLE component of a time-based STM.
// Before this layer existed, replaceability was compile-time only -- every
// engine, workload, and driver was templated on a concrete base, so adding
// a base meant N x M template instantiations. tb::TimeBase / tb::ThreadClock
// type-erase the concept from timebase/common.hpp so the STM core, the
// adapter facade, the workload runner, and every bench driver hold ONE
// concrete type and select the base at runtime -- by wrapping an existing
// object (TimeBase::wrap) or by string key through the registry
// (tb::make("batched:B=16")).
//
// Dispatch: a tagged union, not a vtable. The erased ThreadClock stores the
// concrete per-thread clock inline (all in-repo clocks are small and
// trivially copyable; a static_assert guards the buffer) and get_time /
// get_new_ts switch on the kind tag into the concrete inlined bodies. The
// tag branch is perfectly predicted in any real run (one base per
// workload), so the hot calls cost a jump-table hop over the direct
// template call -- measured, not assumed, by micro_timebase's
// BM_Facade_* rows and gated by scripts/check_bench.py --facade-tolerance.
// Out-of-repo bases still fit through Kind::kExternal, which falls back to
// flat function-pointer dispatch on a heap-allocated clock
// (TimeBase::wrap_external<TB>).
//
// Registry spec grammar:  name[:key=value[,key=value...]]
//   shared                       exact shared counter
//   tl2                          CAS counter with TL2-style stamp sharing
//   batched[:B=8]                per-thread stamp blocks of B
//   sharded[:S=4,K=4]            S shard lines, watermark band K
//   adaptive[:S=4,B=8,L=4,threshold-ns=250,sample=64,trips=4]
//                                shared -> batched -> sharded escalation
//   perfect[:source=auto|tsc|steady]   synchronized hardware clock
//   mmtimer[:freq-hz=2e7,latency=7,nodes=1,offset=0]   simulated MMTimer
//   extsync[:devices=2,freq-hz=1e9,offset=0,dev=100]   ext.-sync'd clocks
// Keys are case-insensitive; unknown names and keys throw with the list of
// known alternatives, so a typo in --timebase= fails loudly at startup.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include <chronostm/timebase/adaptive.hpp>
#include <chronostm/timebase/batched_counter.hpp>
#include <chronostm/timebase/common.hpp>
#include <chronostm/timebase/ext_sync_clock.hpp>
#include <chronostm/timebase/mmtimer.hpp>
#include <chronostm/timebase/perfect_clock.hpp>
#include <chronostm/timebase/shared_counter.hpp>
#include <chronostm/timebase/sharded_counter.hpp>
#include <chronostm/timebase/tl2_shared_counter.hpp>

namespace chronostm {
namespace tb {

enum class Kind : unsigned char {
    kShared,
    kTl2,
    kBatched,
    kSharded,
    kAdaptive,
    kPerfect,
    kMMTimer,
    kExtSync,
    kExternal,
};

// Flat function-pointer dispatch for wrap_external: the escape hatch for
// bases the Kind enum does not know.
struct ExternalClockOps {
    std::uint64_t (*get_time)(void* clock);
    std::uint64_t (*get_new_ts)(void* clock);
    void (*destroy)(void* clock);
};

class TimeBase;

class ThreadClock {
    struct ExtClock {
        void* state;
        const ExternalClockOps* ops;
    };

    // A real union, not byte storage: active-member access needs no
    // std::launder, so the compiler can keep a non-escaping clock's fields
    // in registers across calls -- measurably cheaper on the counter
    // bases. Every member is trivially copyable (static_asserted below),
    // so the union copies as bits.
    union Storage {
        SharedCounterTimeBase::ThreadClock shared;
        Tl2SharedCounterTimeBase::ThreadClock tl2;
        BatchedCounterTimeBase::ThreadClock batched;
        ShardedCounterTimeBase::ThreadClock sharded;
        AdaptiveTimeBase::ThreadClock adaptive;
        PerfectClockTimeBase::ThreadClock perfect;
        MMTimerClockTimeBase::ThreadClock mmtimer;
        ExtSyncTimeBase::ThreadClock extsync;
        ExtClock ext;
        Storage() : ext{nullptr, nullptr} {}
    };

    template <typename C>
    static constexpr bool fits_inline =
        std::is_trivially_copyable_v<C> && std::is_trivially_destructible_v<C>;

 public:
    ThreadClock(ThreadClock&& o) noexcept
        : hot_counter_(o.hot_counter_), kind_(o.kind_), u_(o.u_) {
        if (kind_ == Kind::kExternal) o.u_.ext.state = nullptr;
    }
    ThreadClock& operator=(ThreadClock&& o) noexcept {
        if (this != &o) {
            destroy();
            hot_counter_ = o.hot_counter_;
            kind_ = o.kind_;
            u_ = o.u_;
            if (kind_ == Kind::kExternal) o.u_.ext.state = nullptr;
        }
        return *this;
    }
    ThreadClock(const ThreadClock&) = delete;
    ThreadClock& operator=(const ThreadClock&) = delete;
    ~ThreadClock() { destroy(); }

    // Hot dispatch: a branch ladder (every branch predicted -- a run uses
    // one base), falling to an outlined tail for the two slowest kinds. A
    // jump table looks cleaner but measures ~2ns slower on the cheapest
    // counters, which is exactly the budget the facade gate protects.
    std::uint64_t get_time() {
        if (__builtin_expect(hot_counter_ != nullptr, 1))
            return hot_counter_->load(std::memory_order_acquire);
        if (kind_ == Kind::kBatched)
            return as<BatchedCounterTimeBase::ThreadClock>().get_time();
        if (kind_ == Kind::kSharded)
            return as<ShardedCounterTimeBase::ThreadClock>().get_time();
        if (kind_ == Kind::kAdaptive)
            return as<AdaptiveTimeBase::ThreadClock>().get_time();
        if (kind_ == Kind::kTl2)
            return as<Tl2SharedCounterTimeBase::ThreadClock>().get_time();
        if (kind_ == Kind::kPerfect)
            return as<PerfectClockTimeBase::ThreadClock>().get_time();
        if (kind_ == Kind::kExtSync)
            return as<ExtSyncTimeBase::ThreadClock>().get_time();
        return get_time_cold();
    }

    std::uint64_t get_new_ts() {
        // Inline cache for the exact shared counter (the paper's baseline
        // and the dispatch-cost-sensitive base): hot_counter_ is non-null
        // iff kind_ == kShared, so the hit path is one load + fetch_add --
        // the same post-fence memory traffic as the direct template call.
        if (__builtin_expect(hot_counter_ != nullptr, 1))
            return hot_counter_->fetch_add(1, std::memory_order_acq_rel) + 1;
        if (kind_ == Kind::kBatched)
            return as<BatchedCounterTimeBase::ThreadClock>().get_new_ts();
        if (kind_ == Kind::kSharded)
            return as<ShardedCounterTimeBase::ThreadClock>().get_new_ts();
        if (kind_ == Kind::kAdaptive)
            return as<AdaptiveTimeBase::ThreadClock>().get_new_ts();
        if (kind_ == Kind::kTl2)
            return as<Tl2SharedCounterTimeBase::ThreadClock>().get_new_ts();
        if (kind_ == Kind::kPerfect)
            return as<PerfectClockTimeBase::ThreadClock>().get_new_ts();
        if (kind_ == Kind::kExtSync)
            return as<ExtSyncTimeBase::ThreadClock>().get_new_ts();
        return get_new_ts_cold();
    }

    Kind kind() const { return kind_; }

 private:
    friend class TimeBase;

    template <typename C>
    ThreadClock(Kind k, C&& concrete) : kind_(k) {
        using D = std::decay_t<C>;
        static_assert(fits_inline<D>,
                      "concrete thread clocks must be trivially copyable and "
                      "destructible to live in the erased ThreadClock's "
                      "union; route non-trivial clocks through kExternal");
        new (&as<D>()) D(std::forward<C>(concrete));
        if constexpr (std::is_same_v<D, SharedCounterTimeBase::ThreadClock>)
            hot_counter_ = u_.shared.counter();
    }

    ThreadClock(void* state, const ExternalClockOps* ops)
        : kind_(Kind::kExternal) {
        u_.ext = ExtClock{state, ops};
    }

    template <typename C>
    C& as() {
        if constexpr (std::is_same_v<C, SharedCounterTimeBase::ThreadClock>)
            return u_.shared;
        else if constexpr (std::is_same_v<
                               C, Tl2SharedCounterTimeBase::ThreadClock>)
            return u_.tl2;
        else if constexpr (std::is_same_v<
                               C, BatchedCounterTimeBase::ThreadClock>)
            return u_.batched;
        else if constexpr (std::is_same_v<
                               C, ShardedCounterTimeBase::ThreadClock>)
            return u_.sharded;
        else if constexpr (std::is_same_v<C, AdaptiveTimeBase::ThreadClock>)
            return u_.adaptive;
        else if constexpr (std::is_same_v<
                               C, PerfectClockTimeBase::ThreadClock>)
            return u_.perfect;
        else if constexpr (std::is_same_v<
                               C, MMTimerClockTimeBase::ThreadClock>)
            return u_.mmtimer;
        else if constexpr (std::is_same_v<C, ExtSyncTimeBase::ThreadClock>)
            return u_.extsync;
        else
            return u_.ext;
    }

    void destroy() {
        if (kind_ == Kind::kExternal) {
            if (u_.ext.state != nullptr) u_.ext.ops->destroy(u_.ext.state);
            u_.ext.state = nullptr;
        }
    }

    // Only the slowest kinds live out of line: MMTimer reads cost
    // hundreds of ns (simulated device latency) and external clocks pay a
    // function-pointer hop by construction.
    __attribute__((noinline)) std::uint64_t get_time_cold() {
        if (kind_ == Kind::kMMTimer)
            return as<MMTimerClockTimeBase::ThreadClock>().get_time();
        auto& c = as<ExtClock>();
        return c.ops->get_time(c.state);
    }

    __attribute__((noinline)) std::uint64_t get_new_ts_cold() {
        if (kind_ == Kind::kMMTimer)
            return as<MMTimerClockTimeBase::ThreadClock>().get_new_ts();
        auto& c = as<ExtClock>();
        return c.ops->get_new_ts(c.state);
    }

    // Non-null iff kind_ == kShared; see get_new_ts.
    std::atomic<std::uint64_t>* hot_counter_ = nullptr;
    Kind kind_;
    Storage u_;
};

// Value-semantics handle over a concrete time base: cheap to copy, shares
// ownership of registry-made bases, borrows wrapped ones (the caller keeps
// the wrapped object alive, as with the old template-parameter plumbing).
class TimeBase {
    struct ExternalVTable {
        ThreadClock (*make_clock)(void* base);
        std::uint64_t (*deviation)(const void* base);
    };

 public:
    TimeBase() = default;

    bool valid() const { return impl_ != nullptr; }
    Kind kind() const { return kind_; }
    // The normalized registry spec ("batched:B=16") or the wrap name.
    const std::string& spec() const { return spec_; }

    // ---- non-owning wraps over concrete bases ----
    static TimeBase wrap(SharedCounterTimeBase& b) {
        return TimeBase(Kind::kShared, &b, "shared");
    }
    static TimeBase wrap(Tl2SharedCounterTimeBase& b) {
        return TimeBase(Kind::kTl2, &b, "tl2");
    }
    static TimeBase wrap(BatchedCounterTimeBase& b) {
        return TimeBase(Kind::kBatched, &b,
                        "batched:B=" + std::to_string(b.block_size()));
    }
    static TimeBase wrap(ShardedCounterTimeBase& b) {
        return TimeBase(Kind::kSharded, &b,
                        "sharded:S=" + std::to_string(b.shard_count()) +
                            ",K=" + std::to_string(b.band()));
    }
    static TimeBase wrap(AdaptiveTimeBase& b) {
        return TimeBase(Kind::kAdaptive, &b, "adaptive");
    }
    static TimeBase wrap(PerfectClockTimeBase& b) {
        return TimeBase(Kind::kPerfect, &b, "perfect");
    }
    static TimeBase wrap(MMTimerClockTimeBase& b) {
        return TimeBase(Kind::kMMTimer, &b, "mmtimer");
    }
    static TimeBase wrap(ExtSyncTimeBase& b) {
        return TimeBase(Kind::kExtSync, &b, "extsync");
    }

    // Escape hatch for bases the Kind enum does not know: flat
    // function-pointer dispatch, clock on the heap. TB must model the
    // concept in timebase/common.hpp.
    template <typename TB>
    static TimeBase wrap_external(TB& base, std::string name = "external") {
        using Clk = typename TB::ThreadClock;
        struct Shim {
            static std::uint64_t gt(void* c) {
                return static_cast<Clk*>(c)->get_time();
            }
            static std::uint64_t ts(void* c) {
                return static_cast<Clk*>(c)->get_new_ts();
            }
            static void destroy(void* c) { delete static_cast<Clk*>(c); }
            static ThreadClock make(void* b) {
                static const ExternalClockOps ops{&gt, &ts, &destroy};
                return ThreadClock(
                    new Clk(static_cast<TB*>(b)->make_thread_clock()), &ops);
            }
            static std::uint64_t dev(const void* b) {
                return static_cast<const TB*>(b)->deviation();
            }
        };
        static const ExternalVTable vt{&Shim::make, &Shim::dev};
        TimeBase t(Kind::kExternal, &base, std::move(name));
        t.ext_ = &vt;
        return t;
    }

    // Forced inline so a clock held in a local (benchmarks, tight driver
    // loops) never has its address escape through the out-of-line call:
    // escape-blocked clocks SROA into registers and the ladder dispatch
    // costs one predicted compare. Called once per thread otherwise --
    // code size is irrelevant.
    __attribute__((always_inline)) inline ThreadClock make_thread_clock() {
        switch (kind_) {
            case Kind::kShared:
                return ThreadClock(
                    kind_, impl<SharedCounterTimeBase>()->make_thread_clock());
            case Kind::kTl2:
                return ThreadClock(
                    kind_,
                    impl<Tl2SharedCounterTimeBase>()->make_thread_clock());
            case Kind::kBatched:
                return ThreadClock(
                    kind_, impl<BatchedCounterTimeBase>()->make_thread_clock());
            case Kind::kSharded:
                return ThreadClock(
                    kind_, impl<ShardedCounterTimeBase>()->make_thread_clock());
            case Kind::kAdaptive:
                return ThreadClock(
                    kind_, impl<AdaptiveTimeBase>()->make_thread_clock());
            case Kind::kPerfect:
                return ThreadClock(
                    kind_, impl<PerfectClockTimeBase>()->make_thread_clock());
            case Kind::kMMTimer:
                return ThreadClock(
                    kind_, impl<MMTimerClockTimeBase>()->make_thread_clock());
            case Kind::kExtSync:
                return ThreadClock(
                    kind_, impl<ExtSyncTimeBase>()->make_thread_clock());
            case Kind::kExternal:
                return ext_->make_clock(impl_);
        }
        __builtin_unreachable();
    }

    std::uint64_t deviation() const {
        switch (kind_) {
            case Kind::kShared: return SharedCounterTimeBase::deviation();
            case Kind::kTl2: return Tl2SharedCounterTimeBase::deviation();
            case Kind::kBatched:
                return impl<BatchedCounterTimeBase>()->deviation();
            case Kind::kSharded:
                return impl<ShardedCounterTimeBase>()->deviation();
            case Kind::kAdaptive:
                return impl<AdaptiveTimeBase>()->deviation();
            case Kind::kPerfect: return PerfectClockTimeBase::deviation();
            case Kind::kMMTimer:
                return impl<MMTimerClockTimeBase>()->deviation();
            case Kind::kExtSync:
                return impl<ExtSyncTimeBase>()->deviation();
            case Kind::kExternal: return ext_->deviation(impl_);
        }
        __builtin_unreachable();
    }

    // Concrete access for drivers that report base-specific telemetry
    // (e.g. the TL2 counter's shared-stamp count, adaptive's mode).
    // Returns nullptr when the handle wraps a different kind. External
    // wraps always return nullptr: the kind tag cannot distinguish two
    // out-of-enum types, so a cast would be type confusion.
    template <typename TB>
    TB* get_if() {
        if constexpr (kind_of<TB>() == Kind::kExternal) return nullptr;
        else return kind_ == kind_of<TB>() ? static_cast<TB*>(impl_)
                                           : nullptr;
    }

 private:
    friend TimeBase make(const std::string&);

    TimeBase(Kind k, void* impl, std::string spec)
        : kind_(k), impl_(impl), spec_(std::move(spec)) {}

    // Registry path: construct TB in a shared holder and keep it alive for
    // the lifetime of every copy of the handle.
    template <typename TB, typename... Args>
    static TimeBase make_owning(Kind kind, std::string spec, Args&&... args) {
        auto holder = std::make_shared<TB>(std::forward<Args>(args)...);
        TimeBase t(kind, holder.get(), std::move(spec));
        t.owner_ = std::move(holder);
        return t;
    }

    static TimeBase adopt(Kind kind, void* impl, std::shared_ptr<void> holder,
                          std::string spec) {
        TimeBase t(kind, impl, std::move(spec));
        t.owner_ = std::move(holder);
        return t;
    }

    template <typename TB>
    TB* impl() const {
        return static_cast<TB*>(impl_);
    }

    template <typename TB>
    static constexpr Kind kind_of() {
        if constexpr (std::is_same_v<TB, SharedCounterTimeBase>)
            return Kind::kShared;
        else if constexpr (std::is_same_v<TB, Tl2SharedCounterTimeBase>)
            return Kind::kTl2;
        else if constexpr (std::is_same_v<TB, BatchedCounterTimeBase>)
            return Kind::kBatched;
        else if constexpr (std::is_same_v<TB, ShardedCounterTimeBase>)
            return Kind::kSharded;
        else if constexpr (std::is_same_v<TB, AdaptiveTimeBase>)
            return Kind::kAdaptive;
        else if constexpr (std::is_same_v<TB, PerfectClockTimeBase>)
            return Kind::kPerfect;
        else if constexpr (std::is_same_v<TB, MMTimerClockTimeBase>)
            return Kind::kMMTimer;
        else if constexpr (std::is_same_v<TB, ExtSyncTimeBase>)
            return Kind::kExtSync;
        else
            return Kind::kExternal;
    }

    Kind kind_ = Kind::kExternal;
    void* impl_ = nullptr;
    const ExternalVTable* ext_ = nullptr;
    std::shared_ptr<void> owner_;  // registry-made bases only
    std::string spec_;
};

// ---- registry -----------------------------------------------------------

// Parsed "name[:key=value,...]" spec. Keys are lower-cased; lookups by the
// consumer therefore use lower-case names ("b" for B=16).
struct TimeBaseSpec {
    std::string name;
    std::vector<std::pair<std::string, std::string>> params;

    bool has(const std::string& key) const {
        for (const auto& kv : params)
            if (kv.first == key) return true;
        return false;
    }
    // Later occurrences override earlier ones, so a driver can append
    // sweep parameters to a user-provided spec.
    double num(const std::string& key, double def) const {
        const std::string* raw = nullptr;
        for (const auto& kv : params)
            if (kv.first == key) raw = &kv.second;
        if (raw == nullptr) return def;
        try {
            std::size_t used = 0;
            const double v = std::stod(*raw, &used);
            if (used != raw->size()) throw std::invalid_argument(*raw);
            return v;
        } catch (const std::exception&) {
            throw std::invalid_argument(
                "chronostm: bad numeric value for time-base key '" + key +
                "': " + *raw);
        }
    }
    std::uint64_t u64(const std::string& key, std::uint64_t def) const {
        const double v = num(key, static_cast<double>(def));
        if (v < 0)
            throw std::invalid_argument(
                "chronostm: time-base key '" + key + "' must be >= 0");
        return static_cast<std::uint64_t>(v);
    }
    std::string str(const std::string& key, std::string def) const {
        for (const auto& kv : params)
            if (kv.first == key) def = kv.second;
        return def;
    }

    // Fail-loudly contract: every consumer of a parsed spec declares the
    // keys it understands and a typo throws instead of silently running
    // with defaults.
    void require_keys(std::initializer_list<const char*> known) const {
        for (const auto& kv : params) {
            bool ok = false;
            for (const char* k : known) ok = ok || kv.first == k;
            if (!ok)
                throw std::invalid_argument(
                    "chronostm: unknown key '" + kv.first +
                    "' for time base '" + name + "'");
        }
    }
};

inline std::string to_lower(std::string s) {
    for (auto& c : s)
        if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    return s;
}

inline TimeBaseSpec parse_spec(const std::string& spec) {
    TimeBaseSpec out;
    const auto colon = spec.find(':');
    out.name = to_lower(spec.substr(0, colon));
    if (colon == std::string::npos) return out;
    std::string rest = spec.substr(colon + 1);
    std::size_t pos = 0;
    while (pos <= rest.size()) {
        auto comma = rest.find(',', pos);
        if (comma == std::string::npos) comma = rest.size();
        const std::string kv = rest.substr(pos, comma - pos);
        if (!kv.empty()) {
            const auto eq = kv.find('=');
            if (eq == std::string::npos)
                throw std::invalid_argument(
                    "chronostm: time-base param needs key=value, got '" + kv +
                    "' in spec '" + spec + "'");
            out.params.emplace_back(to_lower(kv.substr(0, eq)),
                                    kv.substr(eq + 1));
        }
        pos = comma + 1;
    }
    return out;
}

// Splits a --timebase=a,b:K=V,c flag value into specs. A comma followed by
// key=value belongs to the preceding spec (param lists use the same
// separator), so "shared,batched:B=8,K=2,perfect" splits into three specs:
// a new spec starts at a comma only when the next segment has no '=' before
// its own ':' or ','.
inline std::vector<std::string> split_specs(const std::string& csv) {
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        // Find the end of this spec: scan comma-separated segments and
        // keep swallowing segments that look like key=value params.
        std::size_t end = csv.find(',', pos);
        while (end != std::string::npos) {
            const std::size_t seg = end + 1;
            std::size_t seg_end = csv.find(',', seg);
            if (seg_end == std::string::npos) seg_end = csv.size();
            const std::string segment = csv.substr(seg, seg_end - seg);
            const auto eq = segment.find('=');
            const auto colon = segment.find(':');
            const bool is_param =
                eq != std::string::npos &&
                (colon == std::string::npos || eq < colon);
            if (!is_param) break;
            end = seg_end == csv.size() ? std::string::npos : seg_end;
            if (end == std::string::npos) break;
        }
        if (end == std::string::npos) end = csv.size();
        const std::string spec = csv.substr(pos, end - pos);
        if (!spec.empty()) out.push_back(spec);
        pos = end + 1;
    }
    return out;
}

struct KnownBase {
    const char* name;
    const char* example;
    const char* description;
};

inline const std::vector<KnownBase>& known_bases() {
    static const std::vector<KnownBase> k = {
        {"shared", "shared", "exact shared-counter time base (paper 3.1)"},
        {"tl2", "tl2", "shared counter with TL2-style stamp sharing (4.2)"},
        {"batched", "batched:B=8", "per-thread stamp blocks of B (PR 3)"},
        {"sharded", "sharded:S=4,K=4",
         "S shard lines + watermark, band K"},
        {"adaptive", "adaptive:S=4,B=8,L=4,threshold-ns=250",
         "shared->batched->sharded escalation on sampled draw latency"},
        {"perfect", "perfect:source=auto",
         "synchronized hardware clock (TSC/steady, paper 3.2)"},
        {"mmtimer", "mmtimer:freq-hz=2e7,latency=7,nodes=1,offset=0",
         "simulated SGI MMTimer board clock (paper 3.2/4.1)"},
        {"extsync", "extsync:devices=2,freq-hz=1e9,offset=0,dev=100",
         "externally synchronized per-CPU clocks, published bound (3.3)"},
    };
    return k;
}

// One-line help text for --timebase flags.
inline std::string spec_help() {
    std::string s = "time base spec(s): ";
    for (const auto& k : known_bases()) {
        s += k.example;
        s += "; ";
    }
    s += "comma-separated for multi-series drivers";
    return s;
}

namespace detail {

// Owning bundles for registry-made bases whose concrete types need
// companions kept alive (simulated devices, wall-time sources).
struct MMTimerBundle {
    MMTimerSim sim;
    MMTimerClockTimeBase base;
    explicit MMTimerBundle(const MMTimerSim::Params& p) : sim(p), base(sim) {}
};

struct ExtSyncBundle {
    WallTimeSource src;
    std::vector<std::unique_ptr<PerfectDevice>> devices;
    std::unique_ptr<ExtSyncTimeBase> base;
    ExtSyncBundle(std::size_t n, std::uint64_t freq_hz, std::int64_t offset,
                  std::uint64_t dev) {
        std::vector<ClockDevice*> ptrs;
        for (std::size_t i = 0; i < n; ++i) {
            devices.push_back(std::make_unique<PerfectDevice>(src, freq_hz));
            ptrs.push_back(devices.back().get());
        }
        base = ExtSyncTimeBase::with_static_params(ptrs, offset, dev);
    }
};

}  // namespace detail

// The string-keyed registry: constructs an OWNING TimeBase from a spec.
// Throws std::invalid_argument on unknown names/keys so drivers fail loudly.
inline TimeBase make(const std::string& spec_str) {
    const TimeBaseSpec spec = parse_spec(spec_str);
    const auto reject_unknown_keys =
        [&](std::initializer_list<const char*> known) {
            spec.require_keys(known);
        };

    if (spec.name == "shared") {
        reject_unknown_keys({});
        return TimeBase::make_owning<SharedCounterTimeBase>(Kind::kShared,
                                                             "shared");
    }
    if (spec.name == "tl2") {
        reject_unknown_keys({});
        return TimeBase::make_owning<Tl2SharedCounterTimeBase>(Kind::kTl2,
                                                                "tl2");
    }
    if (spec.name == "batched") {
        reject_unknown_keys({"b"});
        const auto b = spec.u64("b", 8);
        return TimeBase::make_owning<BatchedCounterTimeBase>(
            Kind::kBatched, "batched:B=" + std::to_string(b), b);
    }
    if (spec.name == "sharded") {
        reject_unknown_keys({"s", "k"});
        const auto s = spec.u64("s", 4);
        const auto k = spec.u64("k", 4);
        return TimeBase::make_owning<ShardedCounterTimeBase>(
            Kind::kSharded,
            "sharded:S=" + std::to_string(s) + ",K=" + std::to_string(k), s,
            k);
    }
    if (spec.name == "adaptive") {
        reject_unknown_keys(
            {"s", "b", "l", "threshold-ns", "sample", "trips"});
        AdaptiveTimeBase::Params p;
        p.shards = spec.u64("s", p.shards);
        p.block = spec.u64("b", p.block);
        p.band = spec.u64("l", p.band);
        p.threshold_ns = spec.u64("threshold-ns", p.threshold_ns);
        p.sample_every =
            static_cast<std::uint32_t>(spec.u64("sample", p.sample_every));
        p.trips = static_cast<std::uint32_t>(spec.u64("trips", p.trips));
        return TimeBase::make_owning<AdaptiveTimeBase>(
            Kind::kAdaptive,
            "adaptive:S=" + std::to_string(p.shards) +
                ",B=" + std::to_string(p.block) +
                ",L=" + std::to_string(p.band),
            p);
    }
    if (spec.name == "perfect") {
        reject_unknown_keys({"source"});
        const std::string src = to_lower(spec.str("source", "auto"));
        PerfectSource s = PerfectSource::Auto;
        if (src == "tsc") s = PerfectSource::Tsc;
        else if (src == "steady") s = PerfectSource::Steady;
        else if (src != "auto")
            throw std::invalid_argument(
                "chronostm: perfect clock source must be auto|tsc|steady, "
                "got '" + src + "'");
        return TimeBase::make_owning<PerfectClockTimeBase>(
            Kind::kPerfect, "perfect:source=" + src, s);
    }
    if (spec.name == "mmtimer") {
        reject_unknown_keys({"freq-hz", "latency", "nodes", "offset"});
        MMTimerSim::Params p;
        p.freq_hz = spec.num("freq-hz", p.freq_hz);
        p.read_latency_ticks = static_cast<unsigned>(
            spec.u64("latency", p.read_latency_ticks));
        p.nodes = static_cast<unsigned>(spec.u64("nodes", p.nodes));
        p.max_node_offset_ticks = static_cast<std::int64_t>(
            spec.num("offset", 0.0));
        auto holder = std::make_shared<detail::MMTimerBundle>(p);
        auto* base = &holder->base;
        return TimeBase::adopt(Kind::kMMTimer, base, std::move(holder),
                               spec_str);
    }
    if (spec.name == "extsync") {
        reject_unknown_keys({"devices", "freq-hz", "offset", "dev"});
        auto holder = std::make_shared<detail::ExtSyncBundle>(
            static_cast<std::size_t>(spec.u64("devices", 2)),
            spec.u64("freq-hz", 1'000'000'000),
            static_cast<std::int64_t>(spec.num("offset", 0.0)),
            spec.u64("dev", 100));
        auto* base = holder->base.get();
        return TimeBase::adopt(Kind::kExtSync, base, std::move(holder),
                               spec_str);
    }

    std::string known;
    for (const auto& k : known_bases()) {
        if (!known.empty()) known += ", ";
        known += k.name;
    }
    throw std::invalid_argument("chronostm: unknown time base '" + spec.name +
                                "' (known: " + known + ")");
}

}  // namespace tb
}  // namespace chronostm
