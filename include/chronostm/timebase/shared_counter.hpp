// The paper's baseline time base: one shared integer counter (Section 3.1).
// get_time is a plain load; get_new_ts is a fetch-and-increment. Stamps are
// globally unique and totally ordered, but every committer serializes on a
// single exclusive cache line -- the scalability wall the clock-based time
// bases exist to remove.

#pragma once

#include <atomic>
#include <cstdint>

#include <chronostm/timebase/common.hpp>

namespace chronostm {
namespace tb {

class SharedCounterTimeBase {
 public:
    class ThreadClock {
     public:
        explicit ThreadClock(std::atomic<std::uint64_t>* counter)
            : counter_(counter) {}

        std::uint64_t get_time() const {
            return counter_->load(std::memory_order_acquire);
        }

        std::uint64_t get_new_ts() {
            return counter_->fetch_add(1, std::memory_order_acq_rel) + 1;
        }

        // The facade's inline cache pins the counter line directly.
        std::atomic<std::uint64_t>* counter() const { return counter_; }

     private:
        std::atomic<std::uint64_t>* counter_;
    };

    SharedCounterTimeBase() = default;
    SharedCounterTimeBase(const SharedCounterTimeBase&) = delete;
    SharedCounterTimeBase& operator=(const SharedCounterTimeBase&) = delete;

    ThreadClock make_thread_clock() { return ThreadClock(&counter_); }

    static constexpr std::uint64_t deviation() { return 0; }

 private:
    alignas(64) std::atomic<std::uint64_t> counter_{0};
};

}  // namespace tb
}  // namespace chronostm
