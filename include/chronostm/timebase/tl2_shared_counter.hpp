// Shared counter with TL2-style timestamp sharing (paper Section 4.2: "an
// optimization for the counter similar to the one used by TL2 showed no
// advantages on our hardware").
//
// Instead of an unconditional fetch-and-increment, a committer attempts a
// CAS; if the CAS fails because another committer just advanced the
// counter, it adopts that freshly produced value instead of retrying. This
// trades stamp uniqueness (two commits may share a timestamp, which a
// time-based STM tolerates: ties are resolved by the per-object locks) for
// one less RMW under contention.
//
// Stamps are still monotonic per thread: a failed CAS observes a counter
// value at least one past the value loaded, which itself is at least the
// previously returned stamp.

#pragma once

#include <atomic>
#include <cstdint>

#include <chronostm/timebase/common.hpp>

namespace chronostm {
namespace tb {

class Tl2SharedCounterTimeBase {
 public:
    class ThreadClock {
     public:
        ThreadClock(std::atomic<std::uint64_t>* counter,
                    std::atomic<std::uint64_t>* shares)
            : counter_(counter), shares_(shares) {}

        std::uint64_t get_time() const {
            return counter_->load(std::memory_order_acquire);
        }

        std::uint64_t get_new_ts() {
            std::uint64_t cur = counter_->load(std::memory_order_relaxed);
            if (counter_->compare_exchange_strong(cur, cur + 1,
                                                  std::memory_order_acq_rel)) {
                return cur + 1;
            }
            // cur now holds a value >= (loaded value + 1) that some other
            // committer just produced: share it.
            shares_->fetch_add(1, std::memory_order_relaxed);
            return cur;
        }

     private:
        std::atomic<std::uint64_t>* counter_;
        std::atomic<std::uint64_t>* shares_;
    };

    Tl2SharedCounterTimeBase() = default;
    Tl2SharedCounterTimeBase(const Tl2SharedCounterTimeBase&) = delete;
    Tl2SharedCounterTimeBase& operator=(const Tl2SharedCounterTimeBase&) =
        delete;

    ThreadClock make_thread_clock() { return ThreadClock(&counter_, &shares_); }

    static constexpr std::uint64_t deviation() { return 0; }

    // How often sharing actually triggered (the ablation in
    // bench/tab_counter_opt.cpp reports this alongside throughput).
    std::uint64_t shared_stamps() const {
        return shares_.load(std::memory_order_relaxed);
    }

 private:
    alignas(64) std::atomic<std::uint64_t> counter_{0};
    alignas(64) std::atomic<std::uint64_t> shares_{0};
};

}  // namespace tb
}  // namespace chronostm
