// Runtime-adaptive time base: starts on an exact-ish shared counter and
// escalates to batched blocks and then to a sharded multi-line counter
// when a sampled get_new_ts latency threshold trips -- the ROADMAP's
// "adaptive time-base selection at runtime", motivated by the competitive-
// analysis observation that the best mechanism is workload-dependent
// (PAPERS.md: Sharma & Busch): a single shared line is unbeatable at low
// commit rates, batching wins once the line's RMW rate saturates it, and
// sharding wins once even block draws contend.
//
// Escalation ladder (one-way, mode_ is the epoch):
//   kSingle  -- every clock draws fetch_add(1) on shard 0
//   kBatched -- every clock draws blocks of B from shard 0
//   kSharded -- every clock draws fetch_add(1) on its own shard
//
// THE SWITCH PROTOCOL, and why monotonicity, uniqueness, and the deviation
// bound survive it (the correctness-interesting part):
//
//  * One stamp space for every mode. All three modes draw from the same
//    shard array and emit stamp = v * S + shard; kSingle and kBatched are
//    just "everyone on shard 0". A mode change never re-bases the stamp
//    space, so there is no translation step to race with.
//  * Uniqueness is structural, not fenced. Values are reserved by
//    fetch_add on a shard (singly or in blocks) and tagged with the shard
//    residue, so any interleaving of draws across a switch -- including a
//    thread that loaded the old mode, was preempted for a second, and
//    emits afterwards -- yields distinct stamps.
//  * The deviation bound is enforced per emission, not per mode. Every
//    emission (every mode) re-checks its value v against the CURRENT
//    watermark W and discards-and-redraws unless v + L > W, where L is
//    the fixed band. W is monotone, so a stamp emitted after a reader
//    sampled u = W_sample * S satisfies v > W_now - L >= W_sample - L:
//    the published bound holds across a switch with NO stop-the-world
//    fence, because it never depended on which mode drew the stamp. A
//    stale-mode straggler (at most one in-flight call per thread -- mode
//    is reloaded on every call) passes the same check against the same W.
//    This is also why deviation() is a constant: it must cover every mode
//    the base may ever be in, since contexts cache the bound at creation
//    and a bound that tightened after a switch-back could admit a version
//    stamped under the looser regime.
//  * Per-thread monotonicity is a per-clock floor. When a clock moves
//    from shard 0 to its own shard, the new shard's counter may be far
//    behind the values it emitted on shard 0; each clock therefore
//    remembers its last emitted value and, on a draw at or below it,
//    lifts the shard to that floor (CAS max) and redraws -- fetch_add
//    then hands it something strictly larger. Uniqueness is unaffected
//    (the redraw is a fresh reservation).
//  * Abandoned block tails are dropped on the mode reload at the next
//    call; they waste stamp space, never uniqueness or monotonicity, and
//    the emission-time watermark check (not a shard-0 check) is what
//    keeps a tail emission inside the bound even if shard 0 goes idle
//    while other shards advance W.
//
// Published deviation: every emission -- block-local values included, the
// watermark check runs once per call, not once per block -- lags W by
// less than the band L, so the bound is ceil(S * (L + 1) / 2), the same
// centered form sharded_counter publishes and independent of B.
//
// Triggering: every `sample_every`-th get_new_ts on a clock is timed with
// the steady clock; `trips` consecutive samples over `threshold_ns`
// escalate the mode one step (CAS, idempotent). A contended shared line
// IS a slow draw, so the latency trigger subsumes a commit-rate one.
// escalate() is public for tests and for drivers that know their phase.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include <chronostm/timebase/common.hpp>
#include <chronostm/timebase/sharded_counter.hpp>

namespace chronostm {
namespace tb {

class AdaptiveTimeBase {
 public:
    enum Mode : int { kSingle = 0, kBatched = 1, kSharded = 2 };

    struct Params {
        std::uint64_t shards = 4;        // S: shard lines in the final mode
        std::uint64_t block = 8;         // B: block size in kBatched
        std::uint64_t band = 4;          // L: watermark lag/publish band
        std::uint64_t threshold_ns = 250;  // sampled-draw latency trigger
        std::uint32_t sample_every = 64;   // draws between latency samples
        std::uint32_t trips = 4;           // consecutive hot samples to trip
    };

    class ThreadClock {
     public:
        ThreadClock(AdaptiveTimeBase* base, std::uint64_t shard)
            : base_(base), shard_(shard) {}

        std::uint64_t get_time() const {
            return base_->watermark_.load(std::memory_order_acquire) *
                   base_->p_.shards;
        }

        std::uint64_t get_new_ts() {
            const bool timed = base_->p_.threshold_ns > 0 &&
                               ++since_sample_ >= base_->p_.sample_every;
            if (!timed) return draw();
            since_sample_ = 0;
            const auto t0 = std::chrono::steady_clock::now();
            const std::uint64_t ts = draw();
            const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
            if (static_cast<std::uint64_t>(ns) > base_->p_.threshold_ns) {
                if (++hot_streak_ >= base_->p_.trips) {
                    hot_streak_ = 0;
                    base_->escalate();
                }
            } else {
                hot_streak_ = 0;
            }
            return ts;
        }

     private:
        std::uint64_t draw() {
            auto* b = base_;
            const std::uint64_t S = b->p_.shards;
            for (;;) {
                // The mode is the epoch: reloaded on every call, so at most
                // the current call can run under a stale mode -- and every
                // emission below re-validates against the live watermark.
                const int m = b->mode_.load(std::memory_order_acquire);
                const std::uint64_t shard = m == kSharded ? shard_ : 0;
                std::uint64_t v;
                if (m == kBatched) {
                    if (next_ == end_) {
                        const std::uint64_t s =
                            b->shards_[0].value.fetch_add(
                                b->p_.block, std::memory_order_acq_rel);
                        next_ = s + 1;
                        end_ = s + b->p_.block + 1;
                    }
                    v = next_++;
                } else {
                    next_ = end_ = 0;  // drop any stale block tail
                    v = b->shards_[shard].value.fetch_add(
                            1, std::memory_order_acq_rel) +
                        1;
                }
                // Per-clock floor: keeps this clock's stamps strictly
                // increasing across shard moves (see header).
                if (v <= last_v_) {
                    next_ = end_ = 0;
                    detail::fetch_max(b->shards_[shard].value, last_v_);
                    continue;
                }
                const std::uint64_t w =
                    b->watermark_.load(std::memory_order_acquire);
                if (v > w + b->p_.band) {
                    detail::fetch_max(b->watermark_, v);
                } else if (v + b->p_.band <= w) {
                    // Lagging: drop the block, lift the shard, redraw.
                    next_ = end_ = 0;
                    detail::fetch_max(b->shards_[shard].value, w);
                    continue;
                }
                last_v_ = v;
                return v * S + shard;
            }
        }

        AdaptiveTimeBase* base_;
        std::uint64_t shard_;
        std::uint64_t next_ = 0;   // batched-mode block cursor
        std::uint64_t end_ = 0;    // one past the block's last value
        std::uint64_t last_v_ = 0;  // per-clock monotonicity floor
        std::uint32_t since_sample_ = 0;
        std::uint32_t hot_streak_ = 0;
    };

    AdaptiveTimeBase() : AdaptiveTimeBase(Params{}) {}
    explicit AdaptiveTimeBase(Params p) : p_(sanitize(p)) {
        shards_ = std::make_unique<detail::ShardLine[]>(p_.shards);
    }
    AdaptiveTimeBase(const AdaptiveTimeBase&) = delete;
    AdaptiveTimeBase& operator=(const AdaptiveTimeBase&) = delete;

    ThreadClock make_thread_clock() {
        const auto n = next_clock_.fetch_add(1, std::memory_order_relaxed);
        return ThreadClock(this, n % p_.shards);
    }

    // Constant across mode switches by design (see header): the per-call
    // watermark check bounds every emission's lag below the band L in
    // every mode, so the bound matches sharded_counter's form.
    std::uint64_t deviation() const {
        return (p_.shards * (p_.band + 1) + 1) / 2;
    }

    // One-way escalation; safe to call from any thread, idempotent at the
    // top of the ladder.
    void escalate() {
        int m = mode_.load(std::memory_order_acquire);
        while (m < kSharded &&
               !mode_.compare_exchange_weak(m, m + 1,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
        }
    }

    Mode mode() const {
        return static_cast<Mode>(mode_.load(std::memory_order_acquire));
    }
    const Params& params() const { return p_; }

 private:
    static Params sanitize(Params p) {
        if (p.shards == 0) p.shards = 1;
        if (p.block == 0) p.block = 1;
        if (p.band == 0) p.band = 1;
        if (p.sample_every == 0) p.sample_every = 1;
        if (p.trips == 0) p.trips = 1;
        return p;
    }

    friend class ThreadClock;
    const Params p_;
    std::unique_ptr<detail::ShardLine[]> shards_;
    alignas(64) std::atomic<std::uint64_t> watermark_{0};
    alignas(64) std::atomic<int> mode_{kSingle};
    std::atomic<std::uint64_t> next_clock_{0};
};

}  // namespace tb
}  // namespace chronostm
