// Sharded multi-cache-line counter: S independent shard lines plus one
// mostly-read watermark line, so committers on different shards never touch
// the same cache line -- the ROADMAP's "sharded (multi-line) counter"
// scaling direction, built (like batched_counter) on the paper's
// imprecise-time-base contract: stamps may deviate from true time by a
// published bound; the STM shrinks validity ranges and loses only
// freshness, never correctness.
//
// Layout:
//  * shard s holds a private counter c[s] on its own cache line; a thread
//    clock is bound to one shard (round-robin by clock id) and draws with
//    fetch_add(1) there;
//  * stamp = v * S + s for drawn value v -- residues keep stamps from
//    different shards disjoint, and per-shard fetch_add keeps same-shard
//    stamps distinct, so GLOBAL UNIQUENESS holds by construction with no
//    cross-shard coordination;
//  * the watermark W is a lower bound on global progress, published
//    lazily: a drawer that finds its value v > W + K raises W to v (CAS
//    max), and a drawer that finds v + K <= W first lifts its own shard to
//    W and redraws. get_time() is one acquire load of W (scaled to stamp
//    units) -- a mostly-read line that stays in shared state, unlike the
//    exclusively-owned RMW line every committer fights over in the plain
//    shared counter.
//
// Deviation bound (published like batched_counter's, derivation mirrors
// its header comment):
//  * Safety needs exactly this: a commit stamp emitted AFTER a reader
//    sampled u = get_time() must exceed u - 2*deviation(), so the shrunk
//    admission test (wv + 2*dev <= u) can never accept a version that was
//    still uncommitted when the snapshot was taken. Every emission checks
//    its drawn value v against the CURRENT watermark and redraws unless
//    v + K > W -- and W is monotone -- so an emission after the reader's
//    sample satisfies v > W_now - K >= W_sample - K, i.e. the stamp
//    v*S + s > u - K*S - S. Centering the notional true time between the
//    lagging stamps and get_time gives deviation() = ceil(S*(K+1)/2),
//    and the core's pairwise 2x shrink (>= S*(K+1)) is exactly the bound
//    the emission check enforces.
//  * The leading side (a stamp ahead of W by up to K plus in-flight
//    draws) never threatens safety: a too-new version simply fails
//    admission and costs a freshness abort.
//
// What is given up vs the plain shared counter:
//  * freshly committed data is unreadable until W advances ~S*(K+1) stamp
//    units past it (at most ~K draws on the committing shard) -- the
//    imprecision-vs-aborts trade, tunable via K;
//  * stamps are not totally ordered against concurrent get_time()
//    observations; per-thread monotonicity and global uniqueness are kept.
//
// Progress note: W only moves when stamps are drawn (a drawer exceeding
// W + K raises it). The core's retry loop draws-and-discards a stamp on
// repeated aborts, which advances the drawer's shard and, within K draws,
// the watermark -- the same livelock defense batched_counter relies on.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

#include <chronostm/timebase/common.hpp>
#include <chronostm/util/affinity.hpp>

namespace chronostm {
namespace tb {

namespace detail {

// One counter line per shard; the padding keeps neighbouring shards from
// false-sharing regardless of the allocator's placement.
struct alignas(64) ShardLine {
    std::atomic<std::uint64_t> value{0};
};

// Contiguous partition of `shards` shard indices into `nodes` groups:
// group g covers [shards*g/nodes, shards*(g+1)/nodes). Sizes differ by at
// most one and every shard belongs to exactly one group; a group may be
// empty when shards < nodes (callers fall back to global assignment
// then). Returns {base, size}.
inline std::pair<std::uint64_t, std::uint64_t> shard_group(
    std::uint64_t node, std::uint64_t nodes, std::uint64_t shards) {
    const std::uint64_t base = shards * node / nodes;
    const std::uint64_t end = shards * (node + 1) / nodes;
    return {base, end - base};
}

// Raise `a` to at least `floor` (atomic max via CAS; no-op when already
// past it). Used for shard catch-up and watermark publication.
inline void fetch_max(std::atomic<std::uint64_t>& a, std::uint64_t floor) {
    std::uint64_t cur = a.load(std::memory_order_relaxed);
    while (cur < floor &&
           !a.compare_exchange_weak(cur, floor, std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
    }
}

}  // namespace detail

class ShardedCounterTimeBase {
 public:
    class ThreadClock {
     public:
        ThreadClock(detail::ShardLine* shards, std::atomic<std::uint64_t>* wm,
                    std::uint64_t shard, std::uint64_t nshards,
                    std::uint64_t band)
            : shards_(shards),
              wm_(wm),
              shard_(shard),
              nshards_(nshards),
              band_(band) {}

        std::uint64_t get_time() const {
            return wm_->load(std::memory_order_acquire) * nshards_;
        }

        std::uint64_t get_new_ts() {
            auto& c = shards_[shard_].value;
            for (;;) {
                const std::uint64_t v =
                    c.fetch_add(1, std::memory_order_acq_rel) + 1;
                const std::uint64_t w = wm_->load(std::memory_order_acquire);
                if (v > w + band_) {
                    // Leading: publish progress so readers see time move.
                    detail::fetch_max(*wm_, v);
                } else if (v + band_ <= w) {
                    // Lagging past the band: lift the shard to the
                    // watermark and redraw. The emission check against the
                    // CURRENT W is what makes deviation() a real bound.
                    detail::fetch_max(c, w);
                    continue;
                }
                return v * nshards_ + shard_;
            }
        }

     private:
        detail::ShardLine* shards_;
        std::atomic<std::uint64_t>* wm_;
        std::uint64_t shard_;
        std::uint64_t nshards_;
        std::uint64_t band_;
    };

    // Band default of 4 keeps the freshness horizon (~2*deviation stamp
    // units, i.e. K + ceil((K+1)/1) shard draws) close to batched:B=8's
    // while still cutting watermark-line RMWs to ~1/K per draw; raise K
    // for less watermark traffic, lower it for fresher reads.
    explicit ShardedCounterTimeBase(std::uint64_t shards = 4,
                                    std::uint64_t band = 4)
        : nshards_(shards == 0 ? 1 : shards),
          band_(band == 0 ? 1 : band),
          shards_(std::make_unique<detail::ShardLine[]>(nshards_)),
          node_next_(std::make_unique<detail::ShardLine[]>(
              static_cast<std::uint64_t>(numa_node_count()))) {}
    ShardedCounterTimeBase(const ShardedCounterTimeBase&) = delete;
    ShardedCounterTimeBase& operator=(const ShardedCounterTimeBase&) = delete;

    // Thread -> shard by CPU topology: shards are partitioned into
    // contiguous per-NUMA-node groups and a thread draws round-robin
    // within its node's group, so a shard's counter line only ever
    // bounces between cores of one memory domain (a cross-socket RMW
    // costs several times a local one). Falls back to the PR 5 global
    // round-robin when topology is unavailable, on single-node hosts, or
    // when there are fewer shards than nodes. Any thread->shard map is
    // CORRECT (uniqueness and the deviation bound never depend on the
    // assignment); this is purely a locality play.
    ThreadClock make_thread_clock() {
        return ThreadClock(shards_.get(), &watermark_, pick_shard(),
                           nshards_, band_);
    }

    // Centered bound over the emission check's one-sided lag of < K*S + S
    // stamp units (see the derivation in the header comment). S=1, K=1
    // degenerates to a near-exact counter and publishes the honest 1.
    std::uint64_t deviation() const {
        return (nshards_ * (band_ + 1) + 1) / 2;
    }

    std::uint64_t shard_count() const { return nshards_; }
    std::uint64_t band() const { return band_; }

 private:
    std::uint64_t pick_shard() {
        const int node = numa_node_of_cpu(current_cpu());
        const auto nodes = static_cast<std::uint64_t>(numa_node_count());
        if (node >= 0 && nodes > 1 && nshards_ >= nodes) {
            const auto [base, size] = detail::shard_group(
                static_cast<std::uint64_t>(node), nodes, nshards_);
            if (size > 0) {
                const auto k = node_next_[node].value.fetch_add(
                    1, std::memory_order_relaxed);
                return base + k % size;
            }
        }
        return next_.fetch_add(1, std::memory_order_relaxed) % nshards_;
    }

    const std::uint64_t nshards_;
    const std::uint64_t band_;
    std::unique_ptr<detail::ShardLine[]> shards_;
    // Per-node round-robin cursors (reuses the padded line type so
    // cursors on different nodes never share a line).
    std::unique_ptr<detail::ShardLine[]> node_next_;
    alignas(64) std::atomic<std::uint64_t> watermark_{0};
    alignas(64) std::atomic<std::uint64_t> next_{0};
};

}  // namespace tb
}  // namespace chronostm
