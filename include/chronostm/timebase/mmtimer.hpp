// Simulated SGI Altix MMTimer (paper Section 3.2 / 4.1): a multiprocessor
// board timer, hardware-synchronized across nodes, with a fixed read
// latency that dominates its cost (the paper measures ~7 ticks at 20 MHz,
// i.e. ~350 ns per read -- slower than a counter load, but contention-free).
//
// MMTimerSim models the device: a global tick counter derived from the
// host's monotonic clock at the configured frequency, optional static
// per-node offsets (for the Figure-1 clock-sync experiments, where ground
// truth must be known), and a busy-wait that reproduces the read latency.
// MMTimerClockTimeBase is the time-base adapter over one simulated device;
// thread clocks are assigned to nodes round-robin.

#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include <chronostm/timebase/common.hpp>

namespace chronostm {
namespace tb {

class MMTimerSim {
 public:
    struct Params {
        double freq_hz = 20e6;            // paper's 20 MHz board timer
        unsigned read_latency_ticks = 7;  // ~350 ns per read
        unsigned nodes = 1;
        // Static per-node offset injected into readings, in ticks. Node 0
        // is the reference and always reads true (the Figure-1 probe
        // estimates offsets *relative to node 0*, so ground truth must be
        // anchored there); node i > 0 gets +max on odd i, -max on even i.
        // Zero models the hardware-synchronized device.
        std::int64_t max_node_offset_ticks = 0;
    };

    MMTimerSim() : MMTimerSim(Params{}) {}
    explicit MMTimerSim(const Params& p) : params_(p) {
        if (params_.nodes == 0) params_.nodes = 1;
        offsets_.reserve(params_.nodes);
        for (unsigned i = 0; i < params_.nodes; ++i) {
            offsets_.push_back(i == 0 ? 0
                               : (i % 2 == 1)
                                   ? params_.max_node_offset_ticks
                                   : -params_.max_node_offset_ticks);
        }
        epoch_ = std::chrono::steady_clock::now();
    }

    // One timer read from `node`: pays the simulated read latency, then
    // returns the global tick count shifted by the node's static offset.
    std::uint64_t read(unsigned node) const {
        spin_latency();
        const auto off = offsets_[node % params_.nodes];
        const std::int64_t ticks = static_cast<std::int64_t>(now_ticks()) + off;
        return ticks > 0 ? static_cast<std::uint64_t>(ticks) : 0;
    }

    unsigned nodes() const { return params_.nodes; }
    const Params& params() const { return params_; }
    std::int64_t node_offset(unsigned node) const {
        return offsets_[node % params_.nodes];
    }

 private:
    std::uint64_t now_ticks() const {
        const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - epoch_)
                            .count();
        return static_cast<std::uint64_t>(
            static_cast<double>(ns) * params_.freq_hz / 1e9);
    }

    void spin_latency() const {
        const auto latency = std::chrono::nanoseconds(static_cast<long>(
            params_.read_latency_ticks / params_.freq_hz * 1e9));
        const auto until = std::chrono::steady_clock::now() + latency;
        while (std::chrono::steady_clock::now() < until) cpu_relax();
    }

    Params params_;
    std::vector<std::int64_t> offsets_;
    std::chrono::steady_clock::time_point epoch_;
};

class MMTimerClockTimeBase {
 public:
    class ThreadClock {
     public:
        ThreadClock(const MMTimerSim* sim, unsigned node, std::uint64_t id)
            : sim_(sim), node_(node), id_(id) {}

        std::uint64_t get_time() const { return sim_->read(node_) << kIdBits; }

        std::uint64_t get_new_ts() {
            return (mono_.bump(sim_->read(node_)) << kIdBits) | id_;
        }

     private:
        const MMTimerSim* sim_;
        unsigned node_;
        std::uint64_t id_;
        MonotonicRaw mono_;
    };

    explicit MMTimerClockTimeBase(MMTimerSim& sim) : sim_(&sim) {}

    ThreadClock make_thread_clock() {
        const auto n = next_node_.fetch_add(1, std::memory_order_relaxed);
        return ThreadClock(sim_, static_cast<unsigned>(n % sim_->nodes()),
                           ids_.next());
    }

    // Published sync-error bound: the injected node offsets, in stamp units.
    // Zero for the hardware-synchronized configuration the paper measures
    // (its residual errors hide below the read latency).
    std::uint64_t deviation() const {
        const auto off = sim_->params().max_node_offset_ticks;
        const std::uint64_t mag =
            static_cast<std::uint64_t>(off < 0 ? -off : off);
        return mag << kIdBits;
    }

 private:
    const MMTimerSim* sim_;
    std::atomic<std::uint64_t> next_node_{0};
    ClockIdAllocator ids_;
};

}  // namespace tb
}  // namespace chronostm
