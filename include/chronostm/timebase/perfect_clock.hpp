// "Perfect clock" time base (paper Section 3.2): a synchronized hardware
// clock that every processor can read locally -- no shared cache line, so
// get_new_ts scales with the processor count. On x86 we read the invariant
// TSC; elsewhere (or on request) std::chrono::steady_clock stands in.
//
// Hardware clocks are coarse relative to concurrent committers, so stamps
// follow the (raw << kIdBits) | id layout from timebase/common.hpp: get_time
// leaves the id field zero and get_new_ts tags stamps with the per-clock id,
// which keeps commit stamps unique and strictly above any earlier get_time
// observation.

#pragma once

#include <chrono>
#include <cstdint>

#include <chronostm/timebase/common.hpp>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace chronostm {
namespace tb {

enum class PerfectSource {
    Auto,    // TSC where available, steady_clock otherwise
    Tsc,     // invariant rdtsc
    Steady,  // std::chrono::steady_clock
};

class PerfectClockTimeBase {
 public:
    class ThreadClock {
     public:
        ThreadClock(PerfectSource src, std::uint64_t id)
            : src_(src), id_(id) {}

        std::uint64_t get_time() const { return read_raw() << kIdBits; }

        std::uint64_t get_new_ts() {
            return (mono_.bump(read_raw()) << kIdBits) | id_;
        }

     private:
        std::uint64_t read_raw() const {
#if defined(__x86_64__) || defined(__i386__)
            if (src_ != PerfectSource::Steady) return __rdtsc();
#endif
            return static_cast<std::uint64_t>(
                std::chrono::steady_clock::now().time_since_epoch().count());
        }

        PerfectSource src_;
        std::uint64_t id_;
        MonotonicRaw mono_;
    };

    explicit PerfectClockTimeBase(PerfectSource src = PerfectSource::Auto)
        : src_(resolve(src)) {}

    ThreadClock make_thread_clock() { return ThreadClock(src_, ids_.next()); }

    static constexpr std::uint64_t deviation() { return 0; }

    PerfectSource source() const { return src_; }

 private:
    static PerfectSource resolve(PerfectSource src) {
        if (src != PerfectSource::Auto) return src;
#if defined(__x86_64__) || defined(__i386__)
        return PerfectSource::Tsc;
#else
        return PerfectSource::Steady;
#endif
    }

    PerfectSource src_;
    ClockIdAllocator ids_;
};

}  // namespace tb
}  // namespace chronostm
