// Shared plumbing for the time-base layer.
//
// Every time base models the same concept (paper Section 3: the time base is
// a replaceable component of a time-based STM):
//
//   class SomeTimeBase {
//     using ThreadClock = ...;
//     ThreadClock make_thread_clock();      // per-thread access handle
//     std::uint64_t deviation() const;      // sync-error bound, ts units
//   };
//   class ThreadClock {
//     std::uint64_t get_time();             // current time, for snapshots
//     std::uint64_t get_new_ts();           // fresh commit timestamp
//   };
//
// Counter bases hand out raw counter values. Clock bases (perfect clock,
// MMTimer, externally synchronized devices) cannot rely on the hardware to
// produce distinct stamps for concurrent committers, so they widen raw
// readings by kIdBits and tag get_new_ts stamps with a nonzero per-clock id:
//
//   get_time()   = raw << kIdBits            (id field zero)
//   get_new_ts() = (raw << kIdBits) | id     (id in [1, kMaxClockIds])
//
// Two invariants the STM core depends on fall out of this layout:
//  * a commit stamp taken at raw tick t is strictly greater than any
//    get_time() observation at tick <= t (the id field is nonzero), which
//    makes snapshot extension safe even on coarse clocks;
//  * stamps from different thread clocks never collide as long as each
//    clock bumps its raw reading monotonically (see monotonic_raw below).

#pragma once

#include <atomic>
#include <cstdint>

#include <chronostm/util/pause.hpp>

namespace chronostm {
namespace tb {

inline constexpr unsigned kIdBits = 6;
inline constexpr std::uint64_t kMaxClockIds = (1u << kIdBits) - 1;  // 63

// Round-robin nonzero clock ids. Uniqueness of stamps is only guaranteed
// while at most kMaxClockIds thread clocks of one time base are live, which
// covers every driver in this repo; wrap-around degrades uniqueness, never
// monotonicity.
class ClockIdAllocator {
 public:
    std::uint64_t next() {
        return (next_.fetch_add(1, std::memory_order_relaxed) % kMaxClockIds) +
               1;
    }

 private:
    std::atomic<std::uint64_t> next_{0};
};

// Per-thread monotonic bump: returns max(raw, last + 1) and remembers it, so
// repeated get_new_ts calls within one coarse clock tick still move forward.
class MonotonicRaw {
 public:
    std::uint64_t bump(std::uint64_t raw) {
        if (raw <= last_) raw = last_ + 1;
        last_ = raw;
        return raw;
    }

 private:
    std::uint64_t last_ = 0;
};

}  // namespace tb
}  // namespace chronostm
