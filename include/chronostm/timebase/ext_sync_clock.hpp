// Externally synchronized clock devices (paper Section 3.3): every
// processor owns a clock device whose deviation from real time is bounded
// by a known, published synchronization error. Timestamps from such a time
// base are only comparable up to that bound, so the STM core shrinks object
// versions' validity ranges by the deviation at both ends -- correctness is
// never affected (commit-time lock validation is exact), only the abort
// rate (Section 4.3).
//
// ClockDevice is the device abstraction; PerfectDevice is a device driven
// by a shared WallTimeSource at a configurable frequency. with_static_params
// builds a time base whose sync parameters are fixed up front: a per-device
// injected offset (ground truth for tests; alternating sign across devices)
// and the published deviation bound the STM must respect.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include <chronostm/timebase/common.hpp>

#include <chrono>

namespace chronostm {
namespace tb {

// Monotonic nanosecond source shared by a set of clock devices, standing in
// for "real time" in the simulation.
class WallTimeSource {
 public:
    WallTimeSource() : epoch_(std::chrono::steady_clock::now()) {}

    std::uint64_t now_ns() const {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - epoch_)
                .count());
    }

 private:
    std::chrono::steady_clock::time_point epoch_;
};

class ClockDevice {
 public:
    virtual ~ClockDevice() = default;
    virtual std::uint64_t read_ticks() const = 0;
    virtual std::uint64_t freq_hz() const = 0;
};

// A drift-free device: ticks at freq_hz against the shared source.
class PerfectDevice : public ClockDevice {
 public:
    PerfectDevice(const WallTimeSource& src, std::uint64_t freq_hz)
        : src_(&src), freq_hz_(freq_hz) {}

    std::uint64_t read_ticks() const override {
        const unsigned __int128 ns = src_->now_ns();
        return static_cast<std::uint64_t>(ns * freq_hz_ / 1'000'000'000u);
    }

    std::uint64_t freq_hz() const override { return freq_hz_; }

 private:
    const WallTimeSource* src_;
    std::uint64_t freq_hz_;
};

class ExtSyncTimeBase {
 public:
    class ThreadClock {
     public:
        ThreadClock(const ClockDevice* dev, std::int64_t offset_ticks,
                    std::uint64_t id)
            : dev_(dev), offset_(offset_ticks), id_(id) {}

        std::uint64_t get_time() const { return read_raw() << kIdBits; }

        std::uint64_t get_new_ts() {
            return (mono_.bump(read_raw()) << kIdBits) | id_;
        }

     private:
        std::uint64_t read_raw() const {
            const std::int64_t t =
                static_cast<std::int64_t>(dev_->read_ticks()) + offset_;
            return t > 0 ? static_cast<std::uint64_t>(t) : 0;
        }

        const ClockDevice* dev_;
        std::int64_t offset_;
        std::uint64_t id_;
        MonotonicRaw mono_;
    };

    // Statically configured synchronization: device i reads are skewed by
    // +injected_offset_ticks (even i) or -injected_offset_ticks (odd i),
    // and the published per-stamp deviation bound is deviation_ticks. The
    // injected offsets must stay within the published bound for the time
    // base to honour its contract; callers injecting zero study the pure
    // effect of the published bound on the STM (bench/tab_sync_error.cpp).
    static std::unique_ptr<ExtSyncTimeBase> with_static_params(
        std::vector<ClockDevice*> devices, std::int64_t injected_offset_ticks,
        std::uint64_t deviation_ticks) {
        return std::unique_ptr<ExtSyncTimeBase>(new ExtSyncTimeBase(
            std::move(devices), injected_offset_ticks, deviation_ticks));
    }

    // Thread clocks bind to devices round-robin: each "processor" reads its
    // own clock, never a shared line.
    ThreadClock make_thread_clock() {
        const auto n = next_dev_.fetch_add(1, std::memory_order_relaxed);
        const auto i = static_cast<unsigned>(n % devices_.size());
        const std::int64_t off =
            (i % 2 == 0) ? injected_offset_ : -injected_offset_;
        return ThreadClock(devices_[i], off, ids_.next());
    }

    // Published sync-error bound in stamp units; the STM core shrinks each
    // version's validity range by this much at both ends.
    std::uint64_t deviation() const { return deviation_ticks_ << kIdBits; }

    std::uint64_t deviation_ticks() const { return deviation_ticks_; }
    std::size_t device_count() const { return devices_.size(); }

 private:
    ExtSyncTimeBase(std::vector<ClockDevice*> devices,
                    std::int64_t injected_offset_ticks,
                    std::uint64_t deviation_ticks)
        : devices_(std::move(devices)),
          injected_offset_(injected_offset_ticks),
          deviation_ticks_(deviation_ticks) {}

    std::vector<ClockDevice*> devices_;
    std::int64_t injected_offset_;
    std::uint64_t deviation_ticks_;
    std::atomic<std::uint64_t> next_dev_{0};
    ClockIdAllocator ids_;
};

}  // namespace tb
}  // namespace chronostm
