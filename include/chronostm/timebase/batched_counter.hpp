// Scalable shared counter: threads draw timestamp BLOCKS of size B with one
// fetch-and-add instead of one RMW per commit, so the counter cache line is
// touched 1/B as often -- the ROADMAP's "sharded/batched counters" scaling
// direction, built on the paper's imprecise-time-base contract (Section 3:
// a time base may return stamps that deviate from true time by a published
// bound; the STM shrinks every validity range by that bound and loses only
// freshness, never correctness).
//
// Contract and why the bound holds:
//  * get_time() is an exact read of the shared counter.
//  * get_new_ts() hands out stamps from a thread-private block [s+1, s+B]
//    drawn with fetch_add(B). A cached stamp may lag the counter other
//    threads have advanced, so before emitting one we reload the counter
//    and refetch a fresh block unless counter < stamp + B. Every emitted
//    stamp t therefore satisfies t > c - B for the counter value c observed
//    at the emission's freshness check, and stamps never lead the counter
//    (our own fetch_add already advanced it past the block): the error is
//    ONE-SIDED, stamps lag by less than B and get_time is exact.
//  * Published deviation() = ceil(B/2): center the time base's notional
//    "true time" at counter - B/2 and both get_time (+B/2) and stamps
//    (-B/2..+B/2) sit within ceil(B/2) of it. The LSA core shrinks
//    validity ranges by twice the published bound -- 2*ceil(B/2) >= B --
//    which is exactly what safety needs: a commit whose stamp t was drawn
//    or freshness-checked after a reader sampled u satisfies t > u - B
//    (the check's counter load c >= u, t > c - B), so the shrunk admission
//    test wv + 2*deviation() <= u can never accept a version that was
//    still uncommitted when the snapshot was taken. Publishing the naive
//    symmetric bound B would double the shrink and with it the freshness
//    latency below, for no additional safety.
//
// What is given up vs the plain shared counter:
//  * a freshly committed version is unreadable until the counter moves
//    ~B past its stamp (the shrunk validity range), so workloads that
//    re-read data committed within the last ~B stamps pay freshness
//    aborts -- the paper's imprecision-vs-aborts trade, tunable via B.
//    The default B=8 keeps that horizon well under typical re-access
//    distances while still cutting the shared-line RMW rate 8x; raise B
//    for raw get_new_ts throughput, lower it for fresh-read latency.
//  * per-thread monotonicity and global uniqueness are kept (blocks are
//    disjoint and refetch only moves forward), but stamps are NOT totally
//    ordered against concurrent get_time() observations the way the exact
//    counter's are.
//
// Progress note: counter time only moves when stamps are drawn. A reader
// that aborts on freshness (version within 2B of its snapshot) must see
// time advance before its retry can succeed, which is why the core's retry
// loop draws-and-discards a stamp after repeated aborts -- on this time
// base that drains blocks and bumps the shared counter, on clock bases it
// is a harmless read. Abandoned block tails only waste stamp space (the
// counter is 64-bit), never uniqueness or monotonicity.

#pragma once

#include <atomic>
#include <cstdint>

#include <chronostm/timebase/common.hpp>

namespace chronostm {
namespace tb {

class BatchedCounterTimeBase {
 public:
    class ThreadClock {
     public:
        ThreadClock(std::atomic<std::uint64_t>* counter, std::uint64_t block)
            : counter_(counter), block_(block) {}

        std::uint64_t get_time() const {
            return counter_->load(std::memory_order_acquire);
        }

        std::uint64_t get_new_ts() {
            std::uint64_t t = next_;
            // Refetch when the block is drained OR the cached stamp would
            // be >= B behind the counter (the freshness reload that makes
            // deviation() = B a real bound rather than a hope). The reload
            // is a shared read, not an RMW: it scales like get_time.
            if (t == end_ ||
                counter_->load(std::memory_order_acquire) >= t + block_) {
                const std::uint64_t s = counter_->fetch_add(
                    block_, std::memory_order_acq_rel);
                t = s + 1;
                end_ = s + block_ + 1;  // stamps s+1 .. s+B
            }
            next_ = t + 1;
            return t;
        }

     private:
        std::atomic<std::uint64_t>* counter_;
        std::uint64_t block_;
        std::uint64_t next_ = 0;  // next stamp to emit; == end_ -> drained
        std::uint64_t end_ = 0;   // one past the block's last stamp
    };

    explicit BatchedCounterTimeBase(std::uint64_t block_size = 8)
        : block_(block_size == 0 ? 1 : block_size) {}
    BatchedCounterTimeBase(const BatchedCounterTimeBase&) = delete;
    BatchedCounterTimeBase& operator=(const BatchedCounterTimeBase&) = delete;

    ThreadClock make_thread_clock() { return ThreadClock(&counter_, block_); }

    // Per-stamp deviation bound published to the STM core (which shrinks
    // validity ranges by twice this, the pairwise uncertainty): ceil(B/2)
    // under the centered-clock convention derived in the header comment.
    // B=1 degenerates to the exact shared counter (every draw refetches),
    // so it honestly publishes zero.
    std::uint64_t deviation() const {
        return block_ == 1 ? 0 : (block_ + 1) / 2;
    }

    std::uint64_t block_size() const { return block_; }

 private:
    const std::uint64_t block_;
    alignas(64) std::atomic<std::uint64_t> counter_{0};
};

}  // namespace tb
}  // namespace chronostm
