// Figure 2 workload (paper Section 4.2): disjoint update transactions.
// Every thread owns a private partition of objects, so transactions never
// conflict and throughput isolates the fixed costs -- which, for update
// transactions, is dominated by the time base's get_new_ts at commit.

#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include <chronostm/util/rng.hpp>

namespace chronostm {
namespace wl {

template <typename A>
class DisjointWorkload {
    using Var = typename A::template Var<long>;

 public:
    DisjointWorkload(unsigned threads, unsigned objects_per_thread)
        : objects_per_thread_(objects_per_thread) {
        vars_.reserve(static_cast<std::size_t>(threads) * objects_per_thread);
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(threads) * objects_per_thread; ++i)
            vars_.push_back(std::make_unique<Var>(0));
    }

    // One update transaction touching `accesses` distinct objects of
    // `tid`'s partition: read-increment-write each (the paper's update
    // transactions of 10/50/100 accesses).
    void run_txn(A& a, typename A::Context& ctx, unsigned tid,
                 unsigned accesses, Rng& rng) {
        if (accesses > objects_per_thread_)
            throw std::invalid_argument(
                "disjoint: accesses exceeds partition size");
        const std::size_t base =
            static_cast<std::size_t>(tid) * objects_per_thread_;
        const unsigned start =
            static_cast<unsigned>(rng.below(objects_per_thread_));
        a.run(ctx, [&](typename A::Txn& tx) {
            for (unsigned k = 0; k < accesses; ++k) {
                auto& var =
                    *vars_[base + (start + k) % objects_per_thread_];
                tx.write(var, tx.read(var) + 1);
            }
        });
    }

    // Quiesced-state check: total increments == accesses summed over all
    // committed transactions.
    std::uint64_t unsafe_sum() const {
        std::uint64_t sum = 0;
        for (const auto& v : vars_)
            sum += static_cast<std::uint64_t>(v->unsafe_peek());
        return sum;
    }

 private:
    unsigned objects_per_thread_;
    std::vector<std::unique_ptr<Var>> vars_;
};

}  // namespace wl
}  // namespace chronostm
