// Read-dominated integer-set workload over a fixed-shape open hash table:
// the paper's "short transactions" counterpart to the whole-bank audit.
// Buckets are fixed arrays of slots (key or kEmpty), so membership tests
// read at most slots_per_bucket vars and updates write exactly one.

#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

namespace chronostm {
namespace wl {

template <typename A>
class IntsetHash {
    using Var = typename A::template Var<long>;

 public:
    static constexpr long kEmpty = std::numeric_limits<long>::min();

    explicit IntsetHash(unsigned buckets, unsigned slots_per_bucket = 16)
        : buckets_(buckets), slots_(slots_per_bucket) {
        vars_.reserve(static_cast<std::size_t>(buckets) * slots_per_bucket);
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(buckets) * slots_per_bucket; ++i)
            vars_.push_back(std::make_unique<Var>(kEmpty));
    }

    // Insert returns false if the key is present (or the bucket is full --
    // size the table so that cannot happen in a measured run).
    bool insert(A& a, typename A::Context& ctx, long key) {
        const std::size_t base = bucket_of(key);
        return a.run(ctx, [&](typename A::Txn& tx) {
            long free_slot = -1;
            for (unsigned s = 0; s < slots_; ++s) {
                const long v = tx.read(*vars_[base + s]);
                if (v == key) return false;
                if (v == kEmpty && free_slot < 0) free_slot = s;
            }
            if (free_slot < 0) return false;
            tx.write(*vars_[base + static_cast<unsigned>(free_slot)], key);
            return true;
        });
    }

    bool remove(A& a, typename A::Context& ctx, long key) {
        const std::size_t base = bucket_of(key);
        return a.run(ctx, [&](typename A::Txn& tx) {
            for (unsigned s = 0; s < slots_; ++s) {
                if (tx.read(*vars_[base + s]) == key) {
                    tx.write(*vars_[base + s], kEmpty);
                    return true;
                }
            }
            return false;
        });
    }

    bool contains(A& a, typename A::Context& ctx, long key) {
        const std::size_t base = bucket_of(key);
        return a.run(ctx, [&](typename A::Txn& tx) {
            for (unsigned s = 0; s < slots_; ++s)
                if (tx.read(*vars_[base + s]) == key) return true;
            return false;
        });
    }

    // Quiesced-state census.
    std::size_t unsafe_size() const {
        std::size_t n = 0;
        for (const auto& v : vars_)
            if (v->unsafe_peek() != kEmpty) ++n;
        return n;
    }

 private:
    std::size_t bucket_of(long key) const {
        const auto h = static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ull;
        return static_cast<std::size_t>(h % buckets_) * slots_;
    }

    unsigned buckets_;
    unsigned slots_;
    std::vector<std::unique_ptr<Var>> vars_;
};

}  // namespace wl
}  // namespace chronostm
