// Fixed-duration throughput runner shared by every paper-table driver:
// spawns the worker threads, pins them (best effort), runs a warmup phase
// that is not counted, then a measured window, and aggregates per-thread
// operation counts. The factory is invoked ON the worker thread, so
// per-thread STM contexts and RNGs are created where they will be used.
//
// Driver-facing flags all map onto RunSpec: --threads -> RunSpec::threads,
// --duration-ms -> RunSpec::duration_ms (warmup defaults to a fifth of the
// measured window in every driver). Time-base selection is uniform across
// drivers: flag_timebase declares --timebase=, validate_timebase_flag
// fails loudly on typos right after parse, and each measurement cell then
// calls tb::make(spec) itself so every cell starts from a FRESH base with
// zeroed counters.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <chronostm/stm/facade.hpp>
#include <chronostm/timebase/facade.hpp>
#include <chronostm/util/affinity.hpp>
#include <chronostm/util/cli.hpp>

namespace chronostm {
namespace wl {

// Declares the uniform --timebase flag with a driver-appropriate default
// (single spec for single-base drivers, comma-separated list for series
// drivers).
inline Cli& flag_timebase(Cli& cli, const std::string& def) {
    return cli.flag_str("timebase", def, tb::spec_help());
}

// Resolve-and-discard for use INSIDE the driver's parse try/catch: a typo
// in --timebase then exits 2 with the registry's one-line message instead
// of terminating mid-run on an uncaught exception.
inline void validate_timebase_flag(const Cli& cli) {
    for (const auto& spec : tb::split_specs(cli.str("timebase")))
        tb::make(spec);
}

// Index of the first spec whose base NAME matches, or -1: drivers anchor
// base-specific shape checks ("does the sweep include shared?") on this.
inline long find_timebase_spec(const std::vector<std::string>& specs,
                               const char* name) {
    for (std::size_t i = 0; i < specs.size(); ++i)
        if (tb::parse_spec(specs[i]).name == name)
            return static_cast<long>(i);
    return -1;
}

// Engine selection is uniform like time-base selection, and goes through
// the stm::make() registry: --engine= takes full engine specs
// ("orec:bits=14,irrev=32"), comma-separated for one-series-per-engine
// sweeps, same grammar rules as --timebase (case-insensitive keys,
// later-key-wins, loud unknown-name/key errors). validate_engine_flag
// resolves every spec right after parse so a typo exits 2 with the
// registry's message instead of terminating mid-run.
inline Cli& flag_engine(Cli& cli, const std::string& def = "lsa") {
    return cli.flag_str("engine", def, stm::engine_spec_help());
}

inline std::vector<std::string> engine_specs(const Cli& cli) {
    return stm::split_engine_specs(cli.str("engine"));
}

inline void validate_engine_flag(const Cli& cli) {
    for (const auto& spec : stm::split_engine_specs(cli.str("engine")))
        stm::make(spec);
}

// First spec's engine name; legacy single-engine drivers branch on this.
inline bool engine_is_orec(const Cli& cli) {
    const auto specs = stm::split_engine_specs(cli.str("engine"));
    return !specs.empty() &&
           stm::parse_engine_spec(specs.front()).name == "orec";
}

// Append registry params to an engine spec (later key wins, so driver
// flags like --epoch-filter=off can override whatever the spec said).
inline std::string engine_spec_with(std::string spec,
                                    const std::string& extra) {
    if (!extra.empty()) {
        spec += spec.find(':') == std::string::npos ? ':' : ',';
        spec += extra;
    }
    return spec;
}

// Commit-epoch filter toggle, uniform across drivers that expose it:
// --epoch-filter=on|off maps onto StmConfig::epoch_filter /
// OrecConfig::epoch_filter so CI can exercise the filter-off walk path.
inline Cli& flag_epoch_filter(Cli& cli) {
    return cli.flag_str("epoch-filter", "on",
                        "commit-epoch validation filter: on|off");
}

inline bool epoch_filter_enabled(const Cli& cli) {
    const std::string& v = cli.str("epoch-filter");
    if (v == "on") return true;
    if (v == "off") return false;
    throw std::invalid_argument(
        "unknown --epoch-filter '" + v + "' (expected: on, off)");
}

// Epoch-filter stripe count, uniform across drivers that expose it:
// --filter-stripes= maps onto stm::CommonConfig::filter_stripes (rounded
// up to a power of two, clamped to [1, 64] by the engines; 1 reproduces
// the single-word filter). Comma-separated for sweep drivers.
inline Cli& flag_filter_stripes(Cli& cli, const std::string& def = "64") {
    return cli.flag_str(
        "filter-stripes", def,
        "epoch-filter stripe count(s), power of two in [1,64]; 1 = "
        "single-word filter (comma-separated for sweeps)");
}

inline std::vector<unsigned> filter_stripes_flag(const Cli& cli) {
    std::vector<unsigned> out;
    std::string cur;
    const std::string& raw = cli.str("filter-stripes");
    for (std::size_t i = 0; i <= raw.size(); ++i) {
        if (i == raw.size() || raw[i] == ',') {
            if (!cur.empty()) {
                const long v = std::stol(cur);
                if (v < 1 || v > 64)
                    throw std::invalid_argument(
                        "--filter-stripes wants values in [1,64], got '" +
                        cur + "'");
                out.push_back(static_cast<unsigned>(v));
                cur.clear();
            }
        } else {
            cur += raw[i];
        }
    }
    if (out.empty())
        throw std::invalid_argument("--filter-stripes needs a value");
    return out;
}

// Degradation-ladder knob, uniform across engine drivers:
// --irrevocable-threshold= maps onto StmConfig::irrevocable_threshold /
// OrecConfig::irrevocable_threshold (consecutive aborts before run()
// escalates a transaction to irrevocable serial mode; 0 disables).
inline Cli& flag_irrevocable_threshold(Cli& cli, long long def = 64) {
    return cli.flag_i64(
        "irrevocable-threshold", def,
        "consecutive aborts before escalating to irrevocable serial mode "
        "(0 = never escalate; retry exhaustion throws RetryExhausted)");
}

inline unsigned irrevocable_threshold_flag(const Cli& cli) {
    const long long v = cli.i64("irrevocable-threshold");
    if (v < 0)
        throw std::invalid_argument(
            "--irrevocable-threshold must be >= 0");
    return static_cast<unsigned>(v);
}

// Failpoint seed, uniform across drivers in chaos-enabled builds:
// --chaos-seed= reseeds the per-thread failpoint RNG streams so a chaos
// run is replayable (util/failpoints.hpp). Parsed in every build; it only
// has an effect when the binary was compiled with CHRONOSTM_FAILPOINTS.
inline Cli& flag_chaos_seed(Cli& cli, long long def = 0) {
    return cli.flag_i64(
        "chaos-seed", def,
        "failpoint RNG seed for CHRONOSTM_FAILPOINTS builds (0 = default "
        "stream; no effect in builds without failpoints)");
}

// Emit the engine counter block every stats-bearing driver appends to its
// --json rows: the snapshot/commit fast-path counters next to
// false_conflicts, plus the degradation-ladder and chaos counters
// (irrevocable escalations/commits, stall detection, injected faults).
// Templated on the stats and JSON emitter types so this header needs
// neither core include.
template <typename Json, typename Stats>
inline Json& tx_stats_json(Json& json, const Stats& s) {
    json.kv("false_conflicts", s.false_conflicts)
        .kv("extensions", s.extensions)
        .kv("extension_fast_hits", s.extension_fast_hits)
        .kv("validation_fast_hits", s.validation_fast_hits)
        .kv("stripe_fast_hits", s.stripe_fast_hits)
        .kv("stripe_walks", s.stripe_walks)
        .kv("ro_commits", s.ro_commits)
        .kv("backoff_us", s.backoff_us)
        .kv("irrevocable_commits", s.irrevocable_commits)
        .kv("escalations", s.escalations)
        .kv("stall_waits", s.stall_waits)
        .kv("stalled_aborts", s.stalled_aborts)
        .kv("injected_faults", s.injected_faults);
    return json;
}


struct RunSpec {
    unsigned threads = 1;
    double warmup_ms = 50;    // uncounted ramp-up
    double duration_ms = 250;  // measured window
    bool pin_threads = true;   // best-effort CPU pinning (Linux)
};

// Fixed log2-bucket latency histogram: bucket b holds samples whose
// nanosecond value has bit width b (i.e. ns in [2^(b-1), 2^b - 1]), so
// recording is a count-leading-zeros plus one increment -- no allocation
// and no data-dependent branches on the measured path. Percentiles are
// resolved to the bucket's upper bound, an at-most-2x overestimate,
// which is the right bias for latency SLO gates.
struct LatencyHistogram {
    static constexpr unsigned kBuckets = 64;
    std::uint64_t count[kBuckets] = {};
    std::uint64_t total = 0;

    void record(std::uint64_t ns) {
        unsigned b =
            ns == 0 ? 0
                    : 64u - static_cast<unsigned>(__builtin_clzll(ns));
        if (b >= kBuckets) b = kBuckets - 1;
        ++count[b];
        ++total;
    }

    void merge(const LatencyHistogram& o) {
        for (unsigned b = 0; b < kBuckets; ++b) count[b] += o.count[b];
        total += o.total;
    }

    // Smallest bucket upper bound covering fraction `p` of the samples
    // (p in [0,1]); 0 when no samples were recorded.
    std::uint64_t percentile(double p) const {
        if (total == 0) return 0;
        std::uint64_t target =
            static_cast<std::uint64_t>(p * static_cast<double>(total));
        if (target >= total) target = total - 1;
        std::uint64_t seen = 0;
        for (unsigned b = 0; b < kBuckets; ++b) {
            seen += count[b];
            if (seen > target)
                return b == 0 ? 0 : (std::uint64_t{1} << b) - 1;
        }
        return ~std::uint64_t{0};
    }
};

struct RunResult {
    std::vector<std::uint64_t> per_thread;  // measured ops per worker
    std::uint64_t total_ops = 0;
    double seconds = 0;        // actual measured-window length
    double mops_per_sec = 0;   // total_ops / seconds / 1e6
    // Per-operation latency over the measured window, merged across
    // workers, with the canonical percentiles pre-resolved.
    LatencyHistogram latency;
    std::uint64_t p50_ns = 0;
    std::uint64_t p99_ns = 0;
    std::uint64_t p999_ns = 0;
};

// Emit the per-txn latency keys every driver appends to its --json rows.
// Duck-typed on R so drivers can pass either the RunResult itself or their
// own per-cell structs that copied the three percentiles out of one.
template <typename Json, typename R>
inline Json& latency_json(Json& json, const R& r) {
    json.kv("p50_ns", r.p50_ns)
        .kv("p99_ns", r.p99_ns)
        .kv("p999_ns", r.p999_ns);
    return json;
}

// make_op(tid) must return a callable executed in a tight loop; whatever
// state it needs (context, rng) should live in the closure. Phases are
// fenced with one shared atomic the workers poll between operations.
template <typename Factory>
RunResult run_throughput(const RunSpec& spec, Factory&& make_op) {
    enum Phase : int { kSetup, kWarmup, kMeasure, kStop };
    std::atomic<int> phase{kSetup};
    std::atomic<unsigned> ready{0};

    const unsigned n = spec.threads == 0 ? 1 : spec.threads;
    std::vector<std::uint64_t> counts(n, 0);
    std::vector<LatencyHistogram> hists(n);
    std::vector<std::thread> workers;
    workers.reserve(n);

    for (unsigned tid = 0; tid < n; ++tid) {
        workers.emplace_back([&, tid] {
            if (spec.pin_threads) pin_to_cpu(tid);
            auto op = make_op(tid);
            LatencyHistogram hist;
            ready.fetch_add(1, std::memory_order_acq_rel);
            while (phase.load(std::memory_order_acquire) == kSetup)
                std::this_thread::yield();
            std::uint64_t measured = 0;
            // One clock read per op: each iteration's end timestamp is
            // the next one's start, so per-op latency costs a single
            // steady_clock::now() and a log2-bucket increment.
            auto t_prev = std::chrono::steady_clock::now();
            for (;;) {
                const int p = phase.load(std::memory_order_relaxed);
                if (p == kStop) break;
                op();
                const auto t_now = std::chrono::steady_clock::now();
                if (p == kMeasure) {
                    ++measured;
                    hist.record(static_cast<std::uint64_t>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            t_now - t_prev)
                            .count()));
                }
                t_prev = t_now;
            }
            counts[tid] = measured;
            hists[tid] = hist;
        });
    }

    while (ready.load(std::memory_order_acquire) < n)
        std::this_thread::yield();

    const auto sleep_ms = [](double ms) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            ms > 0 ? ms : 0));
    };
    phase.store(kWarmup, std::memory_order_release);
    sleep_ms(spec.warmup_ms);
    const auto t0 = std::chrono::steady_clock::now();
    phase.store(kMeasure, std::memory_order_release);
    sleep_ms(spec.duration_ms);
    phase.store(kStop, std::memory_order_release);
    const auto t1 = std::chrono::steady_clock::now();
    for (auto& w : workers) w.join();

    RunResult res;
    res.per_thread = std::move(counts);
    for (const auto c : res.per_thread) res.total_ops += c;
    res.seconds = std::chrono::duration<double>(t1 - t0).count();
    if (res.seconds > 0)
        res.mops_per_sec =
            static_cast<double>(res.total_ops) / res.seconds / 1e6;
    for (const auto& h : hists) res.latency.merge(h);
    res.p50_ns = res.latency.percentile(0.50);
    res.p99_ns = res.latency.percentile(0.99);
    res.p999_ns = res.latency.percentile(0.999);
    return res;
}

// The paper's Figure 2 sweeps 1..16 processors; we keep the canonical
// power-of-two points. max_threads caps the sweep (0 = the paper's 16,
// the default for simulated sweeps that need no real CPUs).
inline std::vector<unsigned> figure2_thread_sweep(unsigned max_threads = 0) {
    const unsigned cap = max_threads == 0 ? 16 : max_threads;
    std::vector<unsigned> sweep;
    for (const unsigned n : {1u, 2u, 4u, 8u, 16u})
        if (n <= cap) sweep.push_back(n);
    if (sweep.empty()) sweep.push_back(1);
    return sweep;
}

}  // namespace wl
}  // namespace chronostm
