// The paper's bank workload: short transfer transactions (two accounts)
// racing whole-bank audits (one long read-only transaction over every
// account). Transfers conserve the total by construction, so
// unsafe_total() == expected_total() after a quiesced run is the
// end-to-end atomicity check every driver reports. Optional Zipf skew
// concentrates transfers on hot accounts for the contention studies.

#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include <chronostm/util/rng.hpp>

namespace chronostm {
namespace wl {

template <typename A>
class Bank {
    using Var = typename A::template Var<long>;

 public:
    // `zipf_s` = 0 draws accounts uniformly; larger values skew access
    // toward low-numbered accounts with Zipf exponent s.
    Bank(unsigned accounts, long initial, double zipf_s = 0.0)
        : initial_(initial) {
        accounts_.reserve(accounts);
        for (unsigned i = 0; i < accounts; ++i)
            accounts_.push_back(std::make_unique<Var>(initial));
        if (zipf_s > 0) {
            cdf_.reserve(accounts);
            double mass = 0;
            for (unsigned i = 0; i < accounts; ++i) {
                mass += 1.0 / std::pow(static_cast<double>(i + 1), zipf_s);
                cdf_.push_back(mass);
            }
            for (auto& c : cdf_) c /= mass;
        }
    }

    unsigned size() const { return static_cast<unsigned>(accounts_.size()); }

    // Move a small random amount between two distinct accounts.
    void transfer(A& a, typename A::Context& ctx, Rng& rng) {
        const unsigned src = pick(rng);
        unsigned dst = pick(rng);
        if (dst == src) dst = (dst + 1) % size();
        const long amount = static_cast<long>(rng.below(10)) + 1;
        a.run(ctx, [&](typename A::Txn& tx) {
            tx.write(*accounts_[src], tx.read(*accounts_[src]) - amount);
            tx.write(*accounts_[dst], tx.read(*accounts_[dst]) + amount);
        });
    }

    // Whole-bank audit: one read-only transaction over every account.
    // Multi-version LSA serves these from consistent-but-old snapshots;
    // validation-based STMs pay O(accounts^2) validation work.
    long audit(A& a, typename A::Context& ctx) {
        return a.run(ctx, [&](typename A::Txn& tx) {
            long sum = 0;
            for (auto& acct : accounts_) sum += tx.read(*acct);
            return sum;
        });
    }

    // Quiesced-state checks (threads joined).
    long unsafe_total() const {
        long sum = 0;
        for (const auto& acct : accounts_) sum += acct->unsafe_peek();
        return sum;
    }

    long expected_total() const {
        return initial_ * static_cast<long>(accounts_.size());
    }

 private:
    unsigned pick(Rng& rng) {
        if (cdf_.empty())
            return static_cast<unsigned>(rng.below(accounts_.size()));
        const double u = rng.real01();
        // Binary search the precomputed Zipf CDF.
        unsigned lo = 0, hi = static_cast<unsigned>(cdf_.size()) - 1;
        while (lo < hi) {
            const unsigned mid = (lo + hi) / 2;
            if (cdf_[mid] < u)
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    }

    long initial_;
    std::vector<std::unique_ptr<Var>> accounts_;
    std::vector<double> cdf_;
};

}  // namespace wl
}  // namespace chronostm
