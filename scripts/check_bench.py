#!/usr/bin/env python3
"""Bench-regression gate: compare google-benchmark --json blobs against
BENCH_baseline.json.

CI's Release job runs micro_stm / micro_timebase with --json and feeds the
blobs through this script. The committed baseline was recorded on a
different host than the CI runners, so the tolerance is deliberately
generous (default 3x): the gate exists to catch order-of-magnitude
regressions -- an accidentally reintroduced per-access allocation, an O(n)
scan where the hot path had O(1) -- not single-digit-percent noise.
Improvements never fail the gate. Multi-threaded (/threads:N) rows are
excluded unless --gate-threads is given: contended costs depend on real
core count and cache topology, so they don't compare across hosts. A
benchmark present in the baseline but missing from the current run fails
the gate (coverage loss must update the baseline in the same PR).

Two more SAME-RUN gates ride on the micro_stm blob. --orec-tolerance pairs
every BM_Orec_<X> row with its per-TVar LSA twin BM_<X> (drop "Orec_"):
the orec engine runs the identical workload through the same time base, so
the ratio isolates what the orec table costs over per-var metadata. The
design target is 1.15x on the read-only and update shapes; the gate bound
is 1.30x because the same-binary ratio measurement spreads ~±0.06 on the
1-CPU CI host (see --orec-tolerance help) -- the gate catches structural
lookup regressions, the committed baseline documents the actual ratio.
Pairs whose LSA side is below --orec-min-ns are skipped for the same
reason --facade-min-ns exists: a short transaction is mostly the
begin/commit constant plus loop microstructure (unroll/branch luck,
build-layout placement of the hot loop), which swamps the RELATIVE
per-access ratio while the absolute cost stays covered by the cross-run
gate. The /1000 read-only rows exist precisely to carry the read-only
shape's ratio coverage above that floor. Run the blob with
--benchmark_repetitions (CI uses 7) -- load_benchmarks keeps the min of
the repetitions per row, which cancels one-sided scheduler interference
before any ratio is formed. 3 reps proved too few on a 1-CPU runner: one
noise window can contaminate every rep of one row while leaving its
same-run ratio twin clean, flipping a true ~1.1x ratio past 1.5x.
--tl2-margin checks the paper-facing ordering: BM_Orec_Update_Batched8
must beat its BM_Tl2_Update counterpart (both pay per-location versioned
locks; orec draws stamps from the batched scalable counter instead of a
CAS on the global clock, which is the whole point of the comparison).
Rows without a counterpart in the run are skipped, not failed -- the
cross-run MISSING check still protects against silently dropping them.

Three commit-epoch-filter gates (PR 7) also run SAME-RUN on the micro_stm
blob. --epoch-gate pairs every BM_<X>_NoFilter row with its filter-on twin
BM_<X> (strip "_NoFilter") and requires the filter to speed the R=8192
extension rows up by at least the given factor (default 2.0): the filter
turns the O(R) read-set walk into one epoch comparison, so anything less
means the fast path is not being taken. Smaller-R rows are reported but
not gated (the walk is too cheap there for a robust ratio). --ro-margin
requires BM_ReadOnly_Commit_<E> at or below its BM_Update_Commit_<E> twin
(default 1.0): a read-only commit draws no stamp and takes no locks, so
it must not cost more than the single-var update that does.
--writeback-gate bounds BM_Orec_Update_Counter/100 against
BM_Orec_Update_NoBatch/100 (default 1.05): batched write-back (one fence
for the whole write set) must not lose more than noise to the per-orec
release-store publish it replaced.

A fourth same-run gate covers the striped filter (PR 10). --stripe-gate
pairs every BM_<X>_Stripe1 row with its striped twin BM_<X> (strip
"_Stripe1") and requires the 64-stripe configuration to speed the R=8192
disjoint-writer extension rows up by at least the given factor (default
2.0): those rows run a background writer committing OUTSIDE the reader's
read set, the exact shape where a single epoch word degrades to the O(R)
walk on every extension while the striped filter keeps the O(1) fast path.

In addition to the cross-run regression gate, --facade-tolerance gates the
time-base facade's dispatch overhead WITHIN the current run: every
BM_Facade_<X> row is paired with its direct-template twin BM_<X> from the
same blob and their ratio must stay under the bound. Same-run ratios are
immune to host differences, so this tolerance is tight (default 1.15, the
facade's documented <= 15% budget). Direct rows cheaper than
--facade-min-ns are skipped for the same reason --min-ns exists: at ~2ns
the dispatch's roughly constant ~0.5-1.5ns cost is a large RELATIVE ratio
while the absolute effect is bounded and separately covered in context by
the micro_stm gate.

Skipped facade pairs are still REPORTED, so the absolute dispatch cost on
the cheapest counters stays visible in every CI log.

Missing-benchmark detection runs on the UNFILTERED row sets: a baseline
row that no longer exists in the fresh run fails the gate even when it is
a /threads: row excluded from time gating -- renames cannot silently
shrink coverage.

Usage:
    check_bench.py --baseline BENCH_baseline.json [--tolerance 3.0] \
        micro_stm=path/to/micro_stm.json [micro_timebase=path.json ...]

Each positional argument pairs a driver name (a key under "drivers" in the
baseline) with that driver's fresh --json output. Exit codes: 0 all within
tolerance, 1 at least one regression, 2 usage/file errors.
"""

import argparse
import json
import sys


def load_benchmarks(blob):
    """name -> cpu_time in ns, per-iteration rows only (no aggregates).

    When the run used --benchmark_repetitions=N, the same name appears N
    times; keep the MINIMUM. Scheduler interference on shared runners only
    ever slows a row down, so min-of-reps is the robust estimator of the
    undisturbed cost and is what every ratio gate below should compare.
    """
    out = {}
    for row in blob.get("benchmarks", []):
        if row.get("run_type", "iteration") != "iteration":
            continue
        unit = row.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
        if scale is None:
            print(f"warning: unknown time_unit {unit!r} for "
                  f"{row.get('name')}, skipping", file=sys.stderr)
            continue
        ns = float(row["cpu_time"]) * scale
        name = row["name"]
        out[name] = min(out[name], ns) if name in out else ns
    return out


def main():
    ap = argparse.ArgumentParser(
        description="Compare bench --json output against BENCH_baseline.json")
    ap.add_argument("--baseline", required=True,
                    help="path to BENCH_baseline.json")
    ap.add_argument("--tolerance", type=float, default=3.0,
                    help="fail when current/baseline exceeds this ratio "
                         "(default: 3.0)")
    ap.add_argument("--min-ns", type=float, default=2.0,
                    help="skip rows whose baseline cpu_time is below this "
                         "(default: 2.0). Sub-ns rows (a single atomic "
                         "load) are dominated by benchmark-loop overhead, "
                         "where host/toolchain differences alone approach "
                         "the tolerance")
    ap.add_argument("--facade-tolerance", type=float, default=1.15,
                    help="fail when a BM_Facade_<X> row exceeds this ratio "
                         "of its direct BM_<X> twin in the SAME run "
                         "(default: 1.15)")
    ap.add_argument("--facade-min-ns", type=float, default=8.0,
                    help="skip facade pairs whose direct row is below this "
                         "(default: 8.0): the dispatch adds a bounded "
                         "~1-2ns constant (one predicted branch plus loop "
                         "placement around a lock-prefixed RMW), which "
                         "swamps the RELATIVE ratio on near-empty "
                         "operations while the absolute effect stays "
                         "covered by the micro_stm end-to-end gate")
    ap.add_argument("--orec-tolerance", type=float, default=1.30,
                    help="fail when a BM_Orec_<X> row exceeds this ratio "
                         "of its per-TVar LSA twin BM_<X> in the SAME run "
                         "(default: 1.30). The design target is 1.15x; "
                         "the gate adds headroom for measured same-binary "
                         "noise: on the 1-CPU CI host the /1000 read-only "
                         "ratio of a FIXED binary spreads 1.14-1.25 "
                         "across runs (min-of-7, interleaved), so a 1.15 "
                         "bound flakes on unchanged code. 1.30 still "
                         "catches what the gate exists for -- a "
                         "structural lookup regression (accidental O(n) "
                         "probe, false sharing) lands at 2x+")
    ap.add_argument("--orec-min-ns", type=float, default=600.0,
                    help="skip orec-vs-LSA pairs whose LSA side is below "
                         "this (default: 600). Short rows (the /1-/100 "
                         "read-only shapes at ~50-500ns) are dominated by "
                         "the per-txn begin/commit constant and loop "
                         "microstructure, not the per-access metadata "
                         "lookup the gate isolates: on a 1-CPU host a ~7% "
                         "build-layout swing on either side flips their "
                         "ratio across 1.15x even when the orec absolute "
                         "cost is unchanged. The /1000 read-only and /100 "
                         "update rows sit above the floor and carry the "
                         "shape coverage; the short rows' absolute cost "
                         "stays covered by the cross-run regression gate")
    ap.add_argument("--tl2-margin", type=float, default=1.0,
                    help="fail when BM_Orec_Update_Batched8 exceeds this "
                         "ratio of its BM_Tl2_Update counterpart in the "
                         "SAME run (default: 1.0 -- orec on the batched "
                         "time base must outright beat TL2)")
    ap.add_argument("--epoch-gate", type=float, default=2.0,
                    help="fail when a filter-on extension row is not at "
                         "least this many times faster than its _NoFilter "
                         "twin on the R=8192 rows in the SAME run "
                         "(default: 2.0 -- the O(1) epoch check vs the "
                         "O(R) walk)")
    ap.add_argument("--stripe-gate", type=float, default=2.0,
                    help="fail when a striped disjoint-writer extension row "
                         "is not at least this many times faster than its "
                         "_Stripe1 twin on the R=8192 rows in the SAME run "
                         "(default: 2.0). With one epoch word, an unrelated "
                         "writer's bump forces the O(R) walk on every "
                         "extension; with 64 range-hashed stripes the "
                         "writer's stripe stays outside the reader's "
                         "signature and the extension stays O(stripes "
                         "touched)")
    ap.add_argument("--ro-margin", type=float, default=1.0,
                    help="fail when BM_ReadOnly_Commit_<E> exceeds this "
                         "ratio of BM_Update_Commit_<E> in the SAME run "
                         "(default: 1.0 -- a read-only commit draws no "
                         "stamp, so it must not cost more than an update)")
    ap.add_argument("--writeback-gate", type=float, default=1.05,
                    help="fail when BM_Orec_Update_Counter/100 exceeds "
                         "this ratio of BM_Orec_Update_NoBatch/100 in the "
                         "SAME run (default: 1.05 -- batched write-back "
                         "must not lose more than noise to the per-orec "
                         "publish it replaced)")
    ap.add_argument("--failpoints-blob", default=None,
                    help="micro_stm --json blob from a CHRONOSTM_FAILPOINTS "
                         "build (same host, same CI run). Pairs every "
                         "BM_Update_Commit_* row by IDENTICAL name across "
                         "the two blobs and requires the instrumented "
                         "build within --failpoints-gate of the plain "
                         "micro_stm blob: unarmed failpoints must cost "
                         "noise at most, and the OFF build compiles the "
                         "sites out entirely (the macro expands to the "
                         "constant false)")
    ap.add_argument("--failpoints-gate", type=float, default=1.05,
                    help="fail when a failpoints-build commit row exceeds "
                         "this ratio of its plain-build twin (default: "
                         "1.05)")
    ap.add_argument("--ds-blob", default=None,
                    help="tab_datastructures --json blob. Two SAME-RUN "
                         "gates ride on it. (1) Every facade row pairs "
                         "with its direct twin by (structure, engine_spec, "
                         "threads, update_pct); per-cell ratios are "
                         "reported and the GEOMEAN per engine must stay "
                         "under --ds-facade-tolerance -- per-cell gating "
                         "would flake on the short queue cells, but the "
                         "dispatch cost is a constant per slot access, so "
                         "the engine-level geomean is the stable signal. "
                         "The glock baseline is reported, not gated: its "
                         "near-empty transactions make the bounded "
                         "dispatch constant a large relative cost (the "
                         "--facade-min-ns phenomenon at engine "
                         "granularity) while lsa/orec gate the identical "
                         "dispatch machinery. "
                         "(2) The orec skiplist must beat the glock "
                         "baseline by --ds-glock-margin on every "
                         "threads>=2 cell (facade dispatch on both sides); "
                         "skipped with a notice when the blob's "
                         "host_threads < 2 -- a 1-CPU host never pays the "
                         "big lock's real convoy cost")
    ap.add_argument("--ds-facade-tolerance", type=float, default=1.15,
                    help="fail when an engine's geomean direct/facade "
                         "throughput ratio exceeds this (default: 1.15, "
                         "the facade's documented <= 15% dispatch budget)")
    ap.add_argument("--ds-glock-margin", type=float, default=1.0,
                    help="fail when glock skiplist throughput exceeds this "
                         "ratio of orec's on a threads>=2 cell (default: "
                         "1.0 -- orec must outright win under contention)")
    ap.add_argument("--gate-threads", action="store_true",
                    help="also gate multi-threaded (/threads:N) rows. Off "
                         "by default: contended costs are machine-shaped "
                         "(a 1-CPU baseline host never pays real cache-line "
                         "ping-pong), so cross-host ratios on those rows "
                         "measure the hardware, not the code")
    ap.add_argument("pairs", nargs="*", metavar="driver=current.json",
                    help="driver name (key under baseline 'drivers') and its "
                         "fresh --json blob; may be empty when only "
                         "--ds-blob gates are wanted")
    args = ap.parse_args()

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read baseline: {e}", file=sys.stderr)
        return 2

    regressions = 0
    compared = 0
    for pair in args.pairs:
        if "=" not in pair:
            print(f"error: expected driver=path, got {pair!r}",
                  file=sys.stderr)
            return 2
        driver, path = pair.split("=", 1)
        base_driver = baseline.get("drivers", {}).get(driver)
        if base_driver is None:
            print(f"error: driver {driver!r} not in baseline",
                  file=sys.stderr)
            return 2
        try:
            with open(path) as f:
                current = json.load(f)
        except (OSError, ValueError) as e:
            print(f"error: cannot read {path}: {e}", file=sys.stderr)
            return 2

        base = load_benchmarks(base_driver)
        cur = load_benchmarks(current)
        # A benchmark that exists in the baseline but not in the fresh run
        # is coverage loss, not noise: renaming or #ifdef-ing out a gated
        # benchmark must update BENCH_baseline.json in the same PR. This
        # runs BEFORE the /threads: filter on purpose -- a renamed
        # contended row is coverage loss too, even though its time is not
        # gated across hosts.
        for name in sorted(set(base) - set(cur)):
            print(f"{driver}: baseline benchmark {name!r} is missing from "
                  f"the current run -- renamed or removed? Update "
                  f"BENCH_baseline.json in the same PR.  MISSING",
                  file=sys.stderr)
            regressions += 1
        if not args.gate_threads:
            base = {k: v for k, v in base.items() if "/threads:" not in k}
            cur = {k: v for k, v in cur.items() if "/threads:" not in k}

        # Facade dispatch gate: same-run BM_Facade_<X> vs BM_<X> pairs.
        facade_pairs = sorted(
            n for n in cur
            if n.startswith("BM_Facade_") and
            "BM_" + n[len("BM_Facade_"):] in cur)
        if facade_pairs:
            print(f"\n{driver} facade dispatch "
                  f"(tolerance {args.facade_tolerance:g}x, same run):")
            print(f"  {'benchmark':<44} {'direct ns':>10} {'facade ns':>10} "
                  f"{'ratio':>7}")
        for name in facade_pairs:
            direct = cur["BM_" + name[len("BM_Facade_"):]]
            erased = cur[name]
            if direct <= 0:
                continue
            if direct < args.facade_min_ns:
                print(f"  {name:<44} {direct:>10.2f} {erased:>10.2f} "
                      f"{'—':>7}  skipped (< --facade-min-ns)")
                continue
            ratio = erased / direct
            verdict = ("REGRESSION" if ratio > args.facade_tolerance
                       else "ok")
            if verdict != "ok":
                regressions += 1
            compared += 1
            print(f"  {name:<44} {direct:>10.2f} {erased:>10.2f} "
                  f"{ratio:>6.2f}x  {verdict}")

        # Orec-vs-LSA gate: same-run BM_Orec_<X> vs BM_<X> pairs. The
        # batched-time-base row has no LSA twin (its counterpart is TL2,
        # gated below), so unpaired rows are simply not listed here.
        orec_pairs = sorted(
            n for n in cur
            if n.startswith("BM_Orec_") and
            "BM_" + n[len("BM_Orec_"):] in cur)
        if orec_pairs:
            print(f"\n{driver} orec vs per-TVar LSA "
                  f"(tolerance {args.orec_tolerance:g}x, same run):")
            print(f"  {'benchmark':<44} {'lsa ns':>10} {'orec ns':>10} "
                  f"{'ratio':>7}")
        for name in orec_pairs:
            lsa = cur["BM_" + name[len("BM_Orec_"):]]
            orec = cur[name]
            if lsa <= 0:
                continue
            if lsa < args.orec_min_ns:
                print(f"  {name:<44} {lsa:>10.2f} {orec:>10.2f} "
                      f"{'—':>7}  skipped (< --orec-min-ns)")
                continue
            ratio = orec / lsa
            verdict = ("REGRESSION" if ratio > args.orec_tolerance
                       else "ok")
            if verdict != "ok":
                regressions += 1
            compared += 1
            print(f"  {name:<44} {lsa:>10.2f} {orec:>10.2f} "
                  f"{ratio:>6.2f}x  {verdict}")

        # Orec-beats-TL2 gate: the paper-facing ordering, same run.
        tl2_pairs = sorted(
            n for n in cur
            if n.startswith("BM_Orec_Update_Batched8") and
            "BM_Tl2_Update" + n[len("BM_Orec_Update_Batched8"):] in cur)
        if tl2_pairs:
            print(f"\n{driver} orec/batched vs TL2 "
                  f"(margin {args.tl2_margin:g}x, same run):")
            print(f"  {'benchmark':<44} {'tl2 ns':>10} {'orec ns':>10} "
                  f"{'ratio':>7}")
        for name in tl2_pairs:
            tl2 = cur["BM_Tl2_Update" +
                      name[len("BM_Orec_Update_Batched8"):]]
            orec = cur[name]
            if tl2 <= 0:
                continue
            ratio = orec / tl2
            verdict = "REGRESSION" if ratio > args.tl2_margin else "ok"
            if verdict != "ok":
                regressions += 1
            compared += 1
            print(f"  {name:<44} {tl2:>10.2f} {orec:>10.2f} "
                  f"{ratio:>6.2f}x  {verdict}")

        # Epoch-filter gate: same-run BM_<X>_NoFilter vs BM_<X> pairs.
        # Only the R=8192 rows are gated (the walk must dominate for the
        # ratio to be robust); smaller-R pairs are reported for context.
        epoch_pairs = sorted(
            n for n in cur
            if "_NoFilter" in n and n.replace("_NoFilter", "") in cur)
        if epoch_pairs:
            print(f"\n{driver} epoch filter on vs off "
                  f"(speedup >= {args.epoch_gate:g}x at /8192, same run):")
            print(f"  {'benchmark':<44} {'on ns':>10} {'off ns':>10} "
                  f"{'speedup':>8}")
        for name in epoch_pairs:
            on = cur[name.replace("_NoFilter", "")]
            off = cur[name]
            if on <= 0:
                continue
            speedup = off / on
            if not name.endswith("/8192"):
                print(f"  {name:<44} {on:>10.2f} {off:>10.2f} "
                      f"{speedup:>7.2f}x  reported (gate is /8192 only)")
                continue
            verdict = ("REGRESSION" if speedup < args.epoch_gate else "ok")
            if verdict != "ok":
                regressions += 1
            compared += 1
            print(f"  {name:<44} {on:>10.2f} {off:>10.2f} "
                  f"{speedup:>7.2f}x  {verdict}")

        # Stripe gate: same-run BM_<X>_Stripe1 vs BM_<X> pairs. The
        # disjoint-writer rows are the shape the striping exists for: a
        # background writer outside the read set defeats the single-word
        # filter but not the striped one. Gated at /8192 like the epoch
        # gate; smaller-R rows (if any) are reported for context.
        stripe_pairs = sorted(
            n for n in cur
            if "_Stripe1" in n and n.replace("_Stripe1", "") in cur)
        if stripe_pairs:
            print(f"\n{driver} striped vs single-word epoch filter "
                  f"(speedup >= {args.stripe_gate:g}x at /8192, same run):")
            print(f"  {'benchmark':<44} {'striped ns':>10} "
                  f"{'stripe1 ns':>10} {'speedup':>8}")
        for name in stripe_pairs:
            striped = cur[name.replace("_Stripe1", "")]
            one = cur[name]
            if striped <= 0:
                continue
            speedup = one / striped
            if not name.endswith("/8192"):
                print(f"  {name:<44} {striped:>10.2f} {one:>10.2f} "
                      f"{speedup:>7.2f}x  reported (gate is /8192 only)")
                continue
            verdict = ("REGRESSION" if speedup < args.stripe_gate else "ok")
            if verdict != "ok":
                regressions += 1
            compared += 1
            print(f"  {name:<44} {striped:>10.2f} {one:>10.2f} "
                  f"{speedup:>7.2f}x  {verdict}")

        # Read-only commit gate: no stamp, no locks -> must not cost more
        # than the single-var update twin.
        ro_pairs = sorted(
            n for n in cur
            if n.startswith("BM_ReadOnly_Commit_") and
            "BM_Update_Commit_" + n[len("BM_ReadOnly_Commit_"):] in cur)
        if ro_pairs:
            print(f"\n{driver} read-only vs update commit "
                  f"(margin {args.ro_margin:g}x, same run):")
            print(f"  {'benchmark':<44} {'update ns':>10} {'ro ns':>10} "
                  f"{'ratio':>7}")
        for name in ro_pairs:
            upd = cur["BM_Update_Commit_" +
                      name[len("BM_ReadOnly_Commit_"):]]
            ro = cur[name]
            if upd <= 0:
                continue
            ratio = ro / upd
            verdict = "REGRESSION" if ratio > args.ro_margin else "ok"
            if verdict != "ok":
                regressions += 1
            compared += 1
            print(f"  {name:<44} {upd:>10.2f} {ro:>10.2f} "
                  f"{ratio:>6.2f}x  {verdict}")

        # Write-back batching gate: batched publish vs the per-orec
        # release-store twin, same run.
        wb_pairs = sorted(
            n for n in cur
            if n.startswith("BM_Orec_Update_Counter/") and
            "BM_Orec_Update_NoBatch" +
            n[len("BM_Orec_Update_Counter"):] in cur)
        if wb_pairs:
            print(f"\n{driver} batched vs unbatched write-back "
                  f"(gate {args.writeback_gate:g}x, same run):")
            print(f"  {'benchmark':<44} {'nobatch ns':>10} "
                  f"{'batched ns':>10} {'ratio':>7}")
        for name in wb_pairs:
            nobatch = cur["BM_Orec_Update_NoBatch" +
                          name[len("BM_Orec_Update_Counter"):]]
            batched = cur[name]
            if nobatch <= 0:
                continue
            ratio = batched / nobatch
            verdict = ("REGRESSION" if ratio > args.writeback_gate
                       else "ok")
            if verdict != "ok":
                regressions += 1
            compared += 1
            print(f"  {name:<44} {nobatch:>10.2f} {batched:>10.2f} "
                  f"{ratio:>6.2f}x  {verdict}")

        # Failpoints overhead gate: CROSS-BLOB, same host and CI run. The
        # second blob comes from a CHRONOSTM_FAILPOINTS build with no site
        # armed; its commit rows carry whatever the per-site checks cost.
        # Rows pair by identical name, commit shapes only (the sites sit
        # on the commit and read paths; the single-var commit rows are the
        # most sensitive to a constant per-site cost).
        if driver == "micro_stm" and args.failpoints_blob:
            try:
                with open(args.failpoints_blob) as f:
                    fp_cur = load_benchmarks(json.load(f))
            except (OSError, ValueError) as e:
                print(f"error: cannot read {args.failpoints_blob}: {e}",
                      file=sys.stderr)
                return 2
            fp_pairs = sorted(
                n for n in cur
                if n.startswith("BM_Update_Commit_") and n in fp_cur)
            if not fp_pairs:
                print("error: --failpoints-blob shares no "
                      "BM_Update_Commit_* rows with the micro_stm blob",
                      file=sys.stderr)
                return 2
            print(f"\n{driver} failpoints build vs plain build "
                  f"(gate {args.failpoints_gate:g}x, same host):")
            print(f"  {'benchmark':<44} {'plain ns':>10} {'fp ns':>10} "
                  f"{'ratio':>7}")
            for name in fp_pairs:
                plain = cur[name]
                fp_ns = fp_cur[name]
                if plain <= 0:
                    continue
                ratio = fp_ns / plain
                verdict = ("REGRESSION" if ratio > args.failpoints_gate
                           else "ok")
                if verdict != "ok":
                    regressions += 1
                compared += 1
                print(f"  {name:<44} {plain:>10.2f} {fp_ns:>10.2f} "
                      f"{ratio:>6.2f}x  {verdict}")

        print(f"\n{driver} (tolerance {args.tolerance:g}x):")
        print(f"  {'benchmark':<44} {'base ns':>12} {'now ns':>12} "
              f"{'ratio':>7}")
        for name in sorted(set(base) & set(cur)):
            if base[name] <= 0:
                continue
            if base[name] < args.min_ns:
                print(f"  {name:<44} {base[name]:>12.1f} {cur[name]:>12.1f} "
                      f"{'—':>7}  skipped (< --min-ns)")
                continue
            ratio = cur[name] / base[name]
            verdict = "REGRESSION" if ratio > args.tolerance else "ok"
            if verdict != "ok":
                regressions += 1
            compared += 1
            print(f"  {name:<44} {base[name]:>12.1f} {cur[name]:>12.1f} "
                  f"{ratio:>6.2f}x  {verdict}")

    # Datastructure gates: SAME-RUN pairs inside the tab_datastructures
    # blob; no cross-host baseline is involved.
    if args.ds_blob:
        try:
            with open(args.ds_blob) as f:
                ds = json.load(f)
        except (OSError, ValueError) as e:
            print(f"error: cannot read {args.ds_blob}: {e}", file=sys.stderr)
            return 2
        rows = ds.get("rows", [])
        if not rows:
            print("error: --ds-blob has no rows", file=sys.stderr)
            return 2
        mops = {}
        for r in rows:
            key = (r["structure"], r["engine_spec"], r["dispatch"],
                   r["threads"], r["update_pct"])
            mops[key] = float(r["mops"])

        # Gate 1: facade within --ds-facade-tolerance of its direct twin,
        # geomean per engine. Per-cell ratios are printed so a single bad
        # cell is visible even when the geomean absorbs it.
        print(f"\ntab_datastructures facade dispatch (geomean per engine "
              f"<= {args.ds_facade_tolerance:g}x, same run):")
        print(f"  {'cell':<52} {'direct':>8} {'facade':>8} {'ratio':>7}")
        per_engine = {}
        for (st, espec, disp, thr, pct), facade_mops in sorted(mops.items()):
            if disp != "facade":
                continue
            direct_mops = mops.get((st, espec, "direct", thr, pct))
            if direct_mops is None or facade_mops <= 0:
                continue
            ratio = direct_mops / facade_mops  # >1 means the facade lost
            per_engine.setdefault(espec, []).append(ratio)
            cell = f"{st}/{espec}/t{thr}/u{pct}"
            print(f"  {cell:<52} {direct_mops:>8.3f} {facade_mops:>8.3f} "
                  f"{ratio:>6.2f}x")
        if not per_engine:
            print("error: --ds-blob has no facade/direct pairs",
                  file=sys.stderr)
            return 2
        gated_engines = 0
        for espec, ratios in sorted(per_engine.items()):
            geo = 1.0
            for r in ratios:
                geo *= r
            geo **= 1.0 / len(ratios)
            # The big-lock baseline is the --facade-min-ns phenomenon at
            # engine granularity: its transactions are near-empty (mutex
            # plus a couple of word accesses), so the dispatch's bounded
            # per-access constant is a large RELATIVE cost while the
            # engines people actually run stay gated on the identical
            # dispatch machinery. Reported, not gated.
            if espec.split(":")[0] in ("glock", "globallock", "lock"):
                print(f"  geomean {espec:<44} {'':>8} {'':>8} {geo:>6.2f}x  "
                      f"reported (baseline engine, near-empty ops)")
                continue
            verdict = ("REGRESSION" if geo > args.ds_facade_tolerance
                       else "ok")
            if verdict != "ok":
                regressions += 1
            compared += 1
            gated_engines += 1
            print(f"  geomean {espec:<44} {'':>8} {'':>8} {geo:>6.2f}x  "
                  f"{verdict}")
        if gated_engines == 0:
            print("error: --ds-blob gated no engines (only baseline "
                  "engines present?)", file=sys.stderr)
            return 2

        # Gate 2: the orec skiplist beats the glock baseline wherever the
        # host can actually run two threads. Both sides use the facade
        # dispatch (the public path; dispatch cost cancels in the ratio).
        host_threads = int(ds.get("host_threads", 0))
        orec_cells = sorted(
            (thr, pct, espec) for (st, espec, disp, thr, pct) in mops
            if st == "skiplist" and disp == "facade" and thr >= 2 and
            espec.split(":")[0] == "orec")
        glock_by_cell = {
            (thr, pct): mops[(st, espec, disp, thr, pct)]
            for (st, espec, disp, thr, pct) in mops
            if st == "skiplist" and disp == "facade" and
            espec.split(":")[0] == "glock"}
        if host_threads < 2:
            print(f"\ntab_datastructures orec vs glock skiplist: SKIPPED "
                  f"(host_threads={host_threads} < 2; the big lock never "
                  f"pays real contention on one CPU)")
        elif not orec_cells or not glock_by_cell:
            print("error: --ds-blob lacks orec or glock skiplist rows at "
                  ">= 2 threads", file=sys.stderr)
            return 2
        else:
            print(f"\ntab_datastructures orec vs glock skiplist "
                  f"(margin {args.ds_glock_margin:g}x at >= 2 threads, "
                  f"same run):")
            print(f"  {'cell':<52} {'glock':>8} {'orec':>8} {'ratio':>7}")
            for thr, pct, espec in orec_cells:
                glock = glock_by_cell.get((thr, pct))
                if glock is None:
                    continue
                orec = mops[("skiplist", espec, "facade", thr, pct)]
                if orec <= 0:
                    continue
                ratio = glock / orec  # >margin means glock won
                verdict = ("REGRESSION" if ratio > args.ds_glock_margin
                           else "ok")
                if verdict != "ok":
                    regressions += 1
                compared += 1
                cell = f"skiplist/{espec}-vs-glock/t{thr}/u{pct}"
                print(f"  {cell:<52} {glock:>8.3f} {orec:>8.3f} "
                      f"{ratio:>6.2f}x  {verdict}")

    if regressions:
        print(f"\nFAIL: {regressions} benchmarks regressed past "
              f"{args.tolerance:g}x or went missing ({compared} compared)",
              file=sys.stderr)
        return 1
    if compared == 0:
        print("error: nothing compared (no benchmark names in common)",
              file=sys.stderr)
        return 2
    print(f"\nOK: {compared} benchmarks within {args.tolerance:g}x of "
          f"baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
