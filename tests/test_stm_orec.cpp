// Tier-1 suite for the orec-table engine's OWN machinery -- everything
// that per-TVar LSA does not exercise:
//
//  * raw-memory transactions: structs and arrays with no Var wrapper at
//    all, accessed via tx_read/tx_write on arbitrary interior pointers,
//    including sub-word and granule-straddling fields;
//  * table aliasing: a tiny table (table_bits=2 -> 4 orecs) forces many
//    distinct addresses onto each versioned lock. Transactions must stay
//    serializable under every collision pattern (locking dedups via the
//    ownership index instead of self-deadlocking; commit validation must
//    not confuse "locked by me" with a foreign lock on the same version);
//  * the false_conflicts counter: distinct-granule aliasing is observable
//    in TxStats and zero when the table is big enough to avoid it;
//  * partial-granule write-back: bytes a transaction did NOT write must
//    survive its commit merging the ones it did;
//  * single-version semantics: a word-sized WordVar is metadata-free
//    (sizeof == 8) and reads after failed extension abort rather than
//    serve stale data -- exercised implicitly by the concurrency runs.

#include <cstdint>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <chronostm/core/orec_stm.hpp>
#include <chronostm/util/rng.hpp>

#include "test_util.hpp"

using namespace chronostm;

namespace {

// --- raw-struct transactions -------------------------------------------

struct Account {
    long balance;
    std::uint32_t version;  // sub-word field
    std::uint16_t flags;    // shares a granule with version
};

void raw_struct_single_thread() {
    OrecStm stm(tb::make("shared"));
    auto ctx = stm.make_context();

    Account a{100, 1, 0x11};
    Account b{100, 1, 0x22};

    ctx.run([&](OrecTransaction& tx) {
        const long ab = tx_read(tx, &a.balance);
        tx_write(tx, &a.balance, ab - 30);
        tx_write(tx, &b.balance, tx_read(tx, &b.balance) + 30);
        tx_write(tx, &a.version, tx_read(tx, &a.version) + 1);
    });

    CHECK(a.balance == 70);
    CHECK(b.balance == 130);
    CHECK(a.version == 2);
    // Bytes the transaction never wrote survive the masked write-back.
    CHECK(a.flags == 0x11);
    CHECK(b.flags == 0x22);
    CHECK(stm.collected_stats().commits() == 1);

    // Whole-struct read/write (16 bytes: spans two granules).
    ctx.run([&](OrecTransaction& tx) {
        Account cur = tx_read(tx, &a);
        cur.balance += 5;
        cur.flags = 0x33;
        tx_write(tx, &a, cur);
    });
    CHECK(a.balance == 75);
    CHECK(a.version == 2);
    CHECK(a.flags == 0x33);
}

// --- raw-array transfers under forced collisions ------------------------

constexpr int kSlots = 64;
constexpr long kInitial = 1000;
constexpr unsigned kThreads = 4;
constexpr int kPerThread = 4000;

// table_bits is clamped to >= 2, i.e. 4 orecs for 64 slots: every commit
// locks orecs that dozens of other addresses hash to, and most
// transactions collide with most others. Serializability must hold
// anyway; only throughput may suffer.
void array_bank(unsigned table_bits, const char* tb_spec) {
    OrecConfig cfg;
    cfg.table_bits = table_bits;
    OrecStm stm(tb::make(tb_spec), cfg);

    auto slots = std::make_unique<long[]>(kSlots);
    for (int i = 0; i < kSlots; ++i) slots[i] = kInitial;

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&stm, &slots, t] {
            auto ctx = stm.make_context();
            Rng rng(t * 7919 + 13);
            for (int i = 0; i < kPerThread; ++i) {
                const auto a = rng.below(kSlots);
                auto b = rng.below(kSlots);
                if (a == b) b = (b + 1) % kSlots;
                const long amount = static_cast<long>(rng.below(10)) + 1;
                ctx.run([&](OrecTransaction& tx) {
                    tx_write(tx, &slots[a], tx_read(tx, &slots[a]) - amount);
                    tx_write(tx, &slots[b], tx_read(tx, &slots[b]) + amount);
                });
            }
        });
    }
    for (auto& th : threads) th.join();

    long total = 0;
    for (int i = 0; i < kSlots; ++i)
        total += __atomic_load_n(&slots[i], __ATOMIC_ACQUIRE);
    CHECK_MSG(total == kInitial * kSlots,
              "table_bits=%u tb=%s: total %ld (expected %ld)", table_bits,
              tb_spec, total, kInitial * kSlots);

    const auto stats = stm.collected_stats();
    CHECK_MSG(stats.commits() ==
                  static_cast<std::uint64_t>(kThreads) * kPerThread,
              "table_bits=%u tb=%s: commits %llu", table_bits, tb_spec,
              static_cast<unsigned long long>(stats.commits()));
    if (table_bits <= 4) {
        // 64 granules over <= 16 orecs: aliasing is certain; the counter
        // must see it.
        CHECK_MSG(stats.false_conflicts > 0,
                  "table_bits=%u: false_conflicts %llu", table_bits,
                  static_cast<unsigned long long>(stats.false_conflicts));
    }
    std::printf("orec bank table_bits=%u tb=%s: %llu commits, %llu aborts, "
                "%llu false conflicts\n",
                table_bits, tb_spec,
                static_cast<unsigned long long>(stats.commits()),
                static_cast<unsigned long long>(stats.aborts()),
                static_cast<unsigned long long>(stats.false_conflicts));
}

// Same-orec collisions inside ONE transaction: with 4 orecs, a transaction
// touching 16 consecutive slots repeatedly locks every orec through
// aliased granules -- the dedup path, not the foreign-lock path.
void same_orec_self_collision() {
    OrecConfig cfg;
    cfg.table_bits = 2;
    OrecStm stm(tb::make("shared"), cfg);
    CHECK(stm.table_size() == 4);

    long arr[16] = {0};
    auto ctx = stm.make_context();
    ctx.run([&](OrecTransaction& tx) {
        for (int i = 0; i < 16; ++i) tx_write(tx, &arr[i], long{i});
    });
    for (int i = 0; i < 16; ++i) CHECK(arr[i] == i);
    CHECK(stm.collected_stats().commits() == 1);
    // 16 distinct granules, 4 orecs: at least 12 aliased lock requests.
    CHECK(stm.collected_stats().false_conflicts >= 12);

    // Read path aliasing: one reader over all 16 slots dedups to <= 4
    // read-set entries and flags the aliasing once per extra granule.
    ctx.run([&](OrecTransaction& tx) {
        long sum = 0;
        for (int i = 0; i < 16; ++i) sum += tx_read(tx, &arr[i]);
        CHECK(tx.read_set_size() <= 4);
        return sum;
    });
}

// A roomy table on 16-byte-strided slots: zero false conflicts expected.
// (Each slot occupies its own orec granule -- the orec hash drops the low
// kOrecShift=4 bits, so packed longs would share orec granules pairwise;
// padding to 16 bytes puts consecutive slots in consecutive table entries
// of the default 2^16 table, where none collide.)
void no_false_conflicts_when_roomy() {
    OrecStm stm(tb::make("shared"));
    struct alignas(16) Slot {
        long v;
    };
    Slot arr[16] = {};
    auto ctx = stm.make_context();
    ctx.run([&](OrecTransaction& tx) {
        for (int i = 0; i < 16; ++i) tx_write(tx, &arr[i].v, long{1});
    });
    CHECK(stm.collected_stats().false_conflicts == 0);
}

// --- WordVar basics -----------------------------------------------------

void wordvar_basics() {
    static_assert(sizeof(WordVar<long>) == 8,
                  "WordVar must carry no metadata");
    static_assert(sizeof(WordVar<char>) == 8,
                  "WordVar pads to one granule");

    OrecStm stm(tb::make("shared"));
    auto ctx = stm.make_context();
    WordVar<long> v(41);
    WordVar<std::uint16_t> small(7);

    const long got = ctx.run([&](OrecTransaction& tx) {
        v.set(tx, v.get(tx) + 1);
        small.set(tx, static_cast<std::uint16_t>(small.get(tx) * 2));
        return v.get(tx);  // read-after-write through the buffered image
    });
    CHECK(got == 42);
    CHECK(v.unsafe_peek() == 42);
    CHECK(small.unsafe_peek() == 14);

    // Explicit abort leaves no trace.
    bool threw = false;
    try {
        auto tx = ctx.txn_begin();
        tx.write(v.raw(), long{999});
        tx.abort();
    } catch (const detail::AbortTx&) {
        threw = true;
    }
    CHECK(threw);
    CHECK(v.unsafe_peek() == 42);
}

// Granule-straddling write: a misaligned 8-byte field inside a packed
// byte buffer crosses two granules; both partial masks must land and the
// surrounding bytes must survive.
void straddling_write() {
    OrecStm stm(tb::make("shared"));
    auto ctx = stm.make_context();

    alignas(8) unsigned char buf[24];
    for (int i = 0; i < 24; ++i) buf[i] = static_cast<unsigned char>(i);

    std::uint64_t val = 0xAABBCCDDEEFF0011ull;
    ctx.run([&](OrecTransaction& tx) {
        tx.write(reinterpret_cast<std::uint64_t*>(buf + 5), val);
    });

    std::uint64_t out;
    std::memcpy(&out, buf + 5, 8);
    CHECK(out == val);
    for (int i = 0; i < 5; ++i)
        CHECK(buf[i] == static_cast<unsigned char>(i));
    for (int i = 13; i < 24; ++i)
        CHECK(buf[i] == static_cast<unsigned char>(i));

    // And reading it back transactionally reassembles the same value.
    const std::uint64_t rd = ctx.run([&](OrecTransaction& tx) {
        return tx.read(reinterpret_cast<const std::uint64_t*>(buf + 5));
    });
    CHECK(rd == val);
}

}  // namespace

int main() {
    raw_struct_single_thread();
    wordvar_basics();
    straddling_write();
    same_orec_self_collision();
    no_false_conflicts_when_roomy();

    // Concurrency under collision pressure, across the CI time-base
    // shapes: exact counter, batched, sharded (the imprecise bases cost
    // freshness aborts, never atomicity -- same bar as the TVar core).
    array_bank(2, "shared");
    array_bank(4, "shared");
    array_bank(16, "shared");
    array_bank(2, "batched:B=8");
    array_bank(4, "sharded:S=4,K=8");

    std::printf("test_stm_orec: PASS\n");
    return 0;
}
