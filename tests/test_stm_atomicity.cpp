// Tier-1 STM semantics: atomicity of concurrent bank-style transfers.
// Threads move money between accounts through transactions; if any
// transfer is torn or lost the total changes.
//
// Two layers are exercised:
//  * the LSA core directly, over three distinct time bases (the pluggable
//    time-base layer), cross-checking the commit count against the work
//    actually submitted;
//  * the stm/adapter.hpp facade, over every engine behind it -- LSA-RT,
//    TL2, the validation STM with and without the commit-counter
//    heuristic, and the global lock -- so all comparison baselines pass
//    the same atomicity bar as the paper's system.

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <chronostm/core/lsa_stm.hpp>
#include <chronostm/stm/adapter.hpp>
#include <chronostm/timebase/batched_counter.hpp>
#include <chronostm/timebase/ext_sync_clock.hpp>
#include <chronostm/timebase/perfect_clock.hpp>
#include <chronostm/timebase/shared_counter.hpp>
#include <chronostm/util/rng.hpp>
#include <chronostm/workload/bank.hpp>

#include "test_util.hpp"

using namespace chronostm;

namespace {

constexpr unsigned kThreads = 8;
constexpr int kAccounts = 32;
constexpr long kInitial = 100;
constexpr int kTransfersPerThread = 3000;

template <typename TB>
void check_bank(TB& tbase, const char* name) {
    LsaStm<TB> stm(tbase);
    std::vector<std::unique_ptr<TVar<long, TB>>> acct;
    for (int i = 0; i < kAccounts; ++i)
        acct.push_back(std::make_unique<TVar<long, TB>>(kInitial));

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&stm, &acct, t] {
            auto ctx = stm.make_context();
            Rng rng(t * 977 + 11);
            for (int i = 0; i < kTransfersPerThread; ++i) {
                const auto a = rng.below(kAccounts);
                auto b = rng.below(kAccounts);
                if (a == b) b = (b + 1) % kAccounts;
                const long amount = static_cast<long>(rng.below(10)) + 1;
                ctx.run([&](Transaction<TB>& tx) {
                    acct[a]->set(tx, acct[a]->get(tx) - amount);
                    acct[b]->set(tx, acct[b]->get(tx) + amount);
                });
            }
        });
    }
    for (auto& th : threads) th.join();

    long total = 0;
    for (const auto& a : acct) total += a->unsafe_peek();
    CHECK_MSG(total == kInitial * kAccounts, "time base %s: total %ld", name,
              total);

    const auto stats = stm.collected_stats();
    CHECK_MSG(stats.commits() ==
                  static_cast<std::uint64_t>(kThreads) * kTransfersPerThread,
              "time base %s: commits %llu", name,
              static_cast<unsigned long long>(stats.commits()));
}

// The same bar through the adapter facade, generic over the engine, using
// the actual workload the comparison benches measure (wl::Bank).
constexpr unsigned kFacadeThreads = 4;
constexpr int kFacadePerThread = 1200;

template <typename A>
void check_bank_facade(A& adapter, const char* name) {
    wl::Bank<A> bank(kAccounts, kInitial);

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kFacadeThreads; ++t) {
        threads.emplace_back([&adapter, &bank, t] {
            auto ctx = adapter.make_context();
            Rng rng(t * 461 + 29);
            for (int i = 0; i < kFacadePerThread; ++i)
                bank.transfer(adapter, ctx, rng);
        });
    }
    for (auto& th : threads) th.join();

    CHECK_MSG(bank.unsafe_total() == bank.expected_total(),
              "engine %s: total %ld", name, bank.unsafe_total());
    const auto stats = adapter.collected_stats();
    CHECK_MSG(stats.commits() == static_cast<std::uint64_t>(kFacadeThreads) *
                                     kFacadePerThread,
              "engine %s: commits %llu", name,
              static_cast<unsigned long long>(stats.commits()));
}

}  // namespace

int main() {
    {
        tb::SharedCounterTimeBase tbase;
        check_bank(tbase, "SharedCounter");
    }
    {
        tb::PerfectClockTimeBase tbase(tb::PerfectSource::Auto);
        check_bank(tbase, "PerfectClock");
    }
    {
        // Tiny blocks force constant stale-stamp refetches and
        // deviation-shrunk snapshots: imprecision may cost retries but
        // never atomicity.
        tb::BatchedCounterTimeBase tbase(8);
        check_bank(tbase, "BatchedCounter(B=8)");
    }
    {
        static tb::WallTimeSource src;
        static std::vector<std::unique_ptr<tb::PerfectDevice>> devs;
        std::vector<tb::ClockDevice*> ptrs;
        for (unsigned i = 0; i < kThreads; ++i) {
            devs.push_back(
                std::make_unique<tb::PerfectDevice>(src, 1'000'000'000));
            ptrs.push_back(devs.back().get());
        }
        // A fat 10us deviation bound: hurts freshness, never atomicity.
        auto tbase = tb::ExtSyncTimeBase::with_static_params(ptrs, 0, 10'000);
        check_bank(*tbase, "ExtSync(dev=10us)");
    }

    // Every engine behind the facade passes the same suite.
    {
        tb::SharedCounterTimeBase tbase;
        stm::LsaAdapter<tb::SharedCounterTimeBase> a(tbase);
        check_bank_facade(a, "LSA-RT/SharedCounter");
    }
    {
        tb::PerfectClockTimeBase tbase(tb::PerfectSource::Auto);
        stm::LsaAdapter<tb::PerfectClockTimeBase> a(tbase);
        check_bank_facade(a, "LSA-RT/HardwareClock");
    }
    {
        tb::BatchedCounterTimeBase tbase(64);
        stm::LsaAdapter<tb::BatchedCounterTimeBase> a(tbase);
        check_bank_facade(a, "LSA-RT/BatchedCounter");
    }
    {
        stm::Tl2Adapter a;
        check_bank_facade(a, "TL2");
    }
    {
        stm::VstmAdapter a;
        check_bank_facade(a, "VSTM/cc-heuristic");
    }
    {
        stm::VstmConfig cfg;
        cfg.commit_counter_heuristic = false;
        stm::VstmAdapter a(cfg);
        check_bank_facade(a, "VSTM/always-validate");
    }
    {
        stm::GlobalLockAdapter a;
        check_bank_facade(a, "GlobalLock");
    }

    // Explicit txn_begin/txn_commit facade path (single-threaded sanity).
    {
        tb::SharedCounterTimeBase tbase;
        stm::LsaAdapter<tb::SharedCounterTimeBase> a(tbase);
        auto ctx = a.make_context();
        TVar<long, tb::SharedCounterTimeBase> v(5);
        auto tx = a.txn_begin(ctx);
        stm::LsaAdapter<tb::SharedCounterTimeBase>::Txn h(tx);
        h.write(v, h.read(v) + 1);
        CHECK(a.txn_commit(ctx, tx));
        CHECK(v.unsafe_peek() == 6);
        CHECK(ctx.stats().commits() == 1);
    }
    {
        stm::Tl2Adapter a;
        auto ctx = a.make_context();
        stm::Tl2Adapter::Var<long> v(5);
        auto tx = a.txn_begin(ctx);
        tx.write(v, tx.read(v) + 1);
        CHECK(a.txn_commit(ctx, tx));
        CHECK(v.unsafe_peek() == 6);
    }
    {
        stm::VstmAdapter a;
        auto ctx = a.make_context();
        stm::VstmAdapter::Var<long> v(5);
        auto tx = a.txn_begin(ctx);
        tx.write(v, tx.read(v) + 1);
        CHECK(a.txn_commit(ctx, tx));
        CHECK(v.unsafe_peek() == 6);
    }
    {
        stm::GlobalLockAdapter a;
        auto ctx = a.make_context();
        stm::GlobalLockAdapter::Var<long> v(5);
        auto tx = a.txn_begin(ctx);
        tx.write(v, tx.read(v) + 1);
        CHECK(a.txn_commit(ctx, tx));
        CHECK(v.unsafe_peek() == 6);
        CHECK(ctx.stats().commits() == 1);
    }

    std::printf("test_stm_atomicity: PASS\n");
    return 0;
}
