// Tier-1 STM semantics: atomicity of concurrent bank-style transfers.
// Threads move money between accounts through transactions; if any
// transfer is torn or lost the total changes.
//
// Two layers are exercised:
//  * the LSA core directly, over time bases selected BY STRING KEY through
//    the runtime-pluggable facade (tb::make) -- counters exact, batched,
//    sharded, and adaptive included -- plus a wrapped custom-device
//    ExtSync base, cross-checking the commit count against the work
//    actually submitted;
//  * the stm/adapter.hpp facade, over every engine behind it -- LSA-RT,
//    the orec-table engine (over the full CI time-base matrix plus the
//    CHRONOSTM_TIMEBASE spec), TL2, the validation STM with and without
//    the commit-counter heuristic, and the global lock -- so all
//    comparison baselines pass the same atomicity bar as the paper's
//    system.
//
// The CHRONOSTM_TIMEBASE env var (CI's tier-1 time-base sweep) adds one
// more registry spec to the core pass.

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <chronostm/core/lsa_stm.hpp>
#include <chronostm/stm/adapter.hpp>
#include <chronostm/util/rng.hpp>
#include <chronostm/workload/bank.hpp>

#include "test_util.hpp"

using namespace chronostm;

namespace {

constexpr unsigned kThreads = 8;
constexpr int kAccounts = 32;
constexpr long kInitial = 100;
constexpr int kTransfersPerThread = 3000;

void check_bank(tb::TimeBase tbase, const char* name) {
    LsaStm stm(std::move(tbase));
    std::vector<std::unique_ptr<TVar<long>>> acct;
    for (int i = 0; i < kAccounts; ++i)
        acct.push_back(std::make_unique<TVar<long>>(kInitial));

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&stm, &acct, t] {
            auto ctx = stm.make_context();
            Rng rng(t * 977 + 11);
            for (int i = 0; i < kTransfersPerThread; ++i) {
                const auto a = rng.below(kAccounts);
                auto b = rng.below(kAccounts);
                if (a == b) b = (b + 1) % kAccounts;
                const long amount = static_cast<long>(rng.below(10)) + 1;
                ctx.run([&](Transaction& tx) {
                    acct[a]->set(tx, acct[a]->get(tx) - amount);
                    acct[b]->set(tx, acct[b]->get(tx) + amount);
                });
            }
        });
    }
    for (auto& th : threads) th.join();

    long total = 0;
    for (const auto& a : acct) total += a->unsafe_peek();
    CHECK_MSG(total == kInitial * kAccounts, "time base %s: total %ld", name,
              total);

    const auto stats = stm.collected_stats();
    CHECK_MSG(stats.commits() ==
                  static_cast<std::uint64_t>(kThreads) * kTransfersPerThread,
              "time base %s: commits %llu", name,
              static_cast<unsigned long long>(stats.commits()));
}

// The same bar through the adapter facade, generic over the engine, using
// the actual workload the comparison benches measure (wl::Bank).
constexpr unsigned kFacadeThreads = 4;
constexpr int kFacadePerThread = 1200;

template <typename A>
void check_bank_facade(A& adapter, const char* name) {
    wl::Bank<A> bank(kAccounts, kInitial);

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kFacadeThreads; ++t) {
        threads.emplace_back([&adapter, &bank, t] {
            auto ctx = adapter.make_context();
            Rng rng(t * 461 + 29);
            for (int i = 0; i < kFacadePerThread; ++i)
                bank.transfer(adapter, ctx, rng);
        });
    }
    for (auto& th : threads) th.join();

    CHECK_MSG(bank.unsafe_total() == bank.expected_total(),
              "engine %s: total %ld", name, bank.unsafe_total());
    const auto stats = adapter.collected_stats();
    CHECK_MSG(stats.commits() == static_cast<std::uint64_t>(kFacadeThreads) *
                                     kFacadePerThread,
              "engine %s: commits %llu", name,
              static_cast<unsigned long long>(stats.commits()));
}

}  // namespace

int main() {
    // Every counter family and the hardware clock, by registry key. The
    // imprecise bases (batched/sharded/adaptive) may cost retries but
    // never atomicity; adaptive additionally crosses its escalation ladder
    // mid-run on a 1-CPU host only if the latency trigger trips -- the
    // deterministic mid-switch schedule lives in test_timebase_facade.
    for (const char* spec :
         {"shared", "perfect", "batched:B=8", "sharded:S=4,K=8",
          "adaptive:S=4,B=8,L=16"})
        check_bank(tb::make(spec), spec);
    if (const char* env = std::getenv("CHRONOSTM_TIMEBASE"))
        for (const auto& spec : tb::split_specs(env))
            check_bank(tb::make(spec), spec.c_str());
    {
        // Custom simulated devices cannot come from the registry: wrap the
        // concrete base instead (the facade's second construction path).
        static tb::WallTimeSource src;
        static std::vector<std::unique_ptr<tb::PerfectDevice>> devs;
        std::vector<tb::ClockDevice*> ptrs;
        for (unsigned i = 0; i < kThreads; ++i) {
            devs.push_back(
                std::make_unique<tb::PerfectDevice>(src, 1'000'000'000));
            ptrs.push_back(devs.back().get());
        }
        // A fat 10us deviation bound: hurts freshness, never atomicity.
        static auto tbase =
            tb::ExtSyncTimeBase::with_static_params(ptrs, 0, 10'000);
        check_bank(tb::TimeBase::wrap(*tbase), "ExtSync(dev=10us)");
    }

    // Every engine behind the facade passes the same suite. The orec
    // engine runs the CI tier-1 time-base matrix (same specs as the core
    // pass) -- its commit protocol touches the time base at the same
    // points, so an imprecise base must cost only retries there too.
    for (const char* spec : {"shared", "perfect", "batched:B=64",
                             "sharded:S=2,K=4", "adaptive:S=2"}) {
        stm::LsaAdapter a(tb::make(spec));
        check_bank_facade(a, spec);
    }
    for (const char* spec : {"shared", "perfect", "batched:B=8",
                             "sharded:S=4,K=8", "adaptive:S=4,B=8,L=16"}) {
        stm::OrecAdapter a(tb::make(spec));
        check_bank_facade(a, (std::string("orec/") + spec).c_str());
    }
    if (const char* env = std::getenv("CHRONOSTM_TIMEBASE"))
        for (const auto& spec : tb::split_specs(env)) {
            stm::OrecAdapter a(tb::make(spec));
            check_bank_facade(a, ("orec/" + spec).c_str());
        }
    {
        stm::Tl2Adapter a;
        check_bank_facade(a, "TL2");
    }
    {
        stm::VstmAdapter a;
        check_bank_facade(a, "VSTM/cc-heuristic");
    }
    {
        stm::VstmConfig cfg;
        cfg.commit_counter_heuristic = false;
        stm::VstmAdapter a(cfg);
        check_bank_facade(a, "VSTM/always-validate");
    }
    {
        stm::GlobalLockAdapter a;
        check_bank_facade(a, "GlobalLock");
    }

    // Explicit txn_begin/txn_commit facade path (single-threaded sanity).
    {
        stm::LsaAdapter a(tb::make("shared"));
        auto ctx = a.make_context();
        TVar<long> v(5);
        auto tx = a.txn_begin(ctx);
        stm::LsaAdapter::Txn h(tx);
        h.write(v, h.read(v) + 1);
        CHECK(a.txn_commit(ctx, tx));
        CHECK(v.unsafe_peek() == 6);
        CHECK(ctx.stats().commits() == 1);
    }
    {
        stm::OrecAdapter a(tb::make("shared"));
        auto ctx = a.make_context();
        stm::OrecAdapter::Var<long> v(5);
        auto tx = a.txn_begin(ctx);
        stm::OrecAdapter::Txn h(tx);
        h.write(v, h.read(v) + 1);
        CHECK(a.txn_commit(ctx, tx));
        CHECK(v.unsafe_peek() == 6);
        CHECK(ctx.stats().commits() == 1);
    }
    {
        stm::Tl2Adapter a;
        auto ctx = a.make_context();
        stm::Tl2Adapter::Var<long> v(5);
        auto tx = a.txn_begin(ctx);
        tx.write(v, tx.read(v) + 1);
        CHECK(a.txn_commit(ctx, tx));
        CHECK(v.unsafe_peek() == 6);
    }
    {
        stm::VstmAdapter a;
        auto ctx = a.make_context();
        stm::VstmAdapter::Var<long> v(5);
        auto tx = a.txn_begin(ctx);
        tx.write(v, tx.read(v) + 1);
        CHECK(a.txn_commit(ctx, tx));
        CHECK(v.unsafe_peek() == 6);
    }
    {
        stm::GlobalLockAdapter a;
        auto ctx = a.make_context();
        stm::GlobalLockAdapter::Var<long> v(5);
        auto tx = a.txn_begin(ctx);
        tx.write(v, tx.read(v) + 1);
        CHECK(a.txn_commit(ctx, tx));
        CHECK(v.unsafe_peek() == 6);
        CHECK(ctx.stats().commits() == 1);
    }

    std::printf("test_stm_atomicity: PASS\n");
    return 0;
}
