// Tier-1 STM semantics: atomicity of concurrent bank-style transfers.
// 8 threads move money between 32 accounts through transactions; if any
// transfer is torn or lost the total changes. Run over three distinct time
// bases to exercise the pluggable layer, and cross-check the commit count
// against the work actually submitted.

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/lsa_stm.hpp"
#include "timebase/ext_sync_clock.hpp"
#include "timebase/perfect_clock.hpp"
#include "timebase/shared_counter.hpp"
#include "util/rng.hpp"

#include "test_util.hpp"

using namespace chronostm;

namespace {

constexpr unsigned kThreads = 8;
constexpr int kAccounts = 32;
constexpr long kInitial = 100;
constexpr int kTransfersPerThread = 3000;

template <typename TB>
void check_bank(TB& tbase, const char* name) {
    LsaStm<TB> stm(tbase);
    std::vector<std::unique_ptr<TVar<long, TB>>> acct;
    for (int i = 0; i < kAccounts; ++i)
        acct.push_back(std::make_unique<TVar<long, TB>>(kInitial));

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&stm, &acct, t] {
            auto ctx = stm.make_context();
            Rng rng(t * 977 + 11);
            for (int i = 0; i < kTransfersPerThread; ++i) {
                const auto a = rng.below(kAccounts);
                auto b = rng.below(kAccounts);
                if (a == b) b = (b + 1) % kAccounts;
                const long amount = static_cast<long>(rng.below(10)) + 1;
                ctx.run([&](Transaction<TB>& tx) {
                    acct[a]->set(tx, acct[a]->get(tx) - amount);
                    acct[b]->set(tx, acct[b]->get(tx) + amount);
                });
            }
        });
    }
    for (auto& th : threads) th.join();

    long total = 0;
    for (const auto& a : acct) total += a->unsafe_peek();
    CHECK_MSG(total == kInitial * kAccounts, "time base %s: total %ld", name,
              total);

    const auto stats = stm.collected_stats();
    CHECK_MSG(stats.commits() ==
                  static_cast<std::uint64_t>(kThreads) * kTransfersPerThread,
              "time base %s: commits %llu", name,
              static_cast<unsigned long long>(stats.commits()));
}

}  // namespace

int main() {
    {
        tb::SharedCounterTimeBase tbase;
        check_bank(tbase, "SharedCounter");
    }
    {
        tb::PerfectClockTimeBase tbase(tb::PerfectSource::Auto);
        check_bank(tbase, "PerfectClock");
    }
    {
        static tb::WallTimeSource src;
        static std::vector<std::unique_ptr<tb::PerfectDevice>> devs;
        std::vector<tb::ClockDevice*> ptrs;
        for (unsigned i = 0; i < kThreads; ++i) {
            devs.push_back(
                std::make_unique<tb::PerfectDevice>(src, 1'000'000'000));
            ptrs.push_back(devs.back().get());
        }
        // A fat 10us deviation bound: hurts freshness, never atomicity.
        auto tbase = tb::ExtSyncTimeBase::with_static_params(ptrs, 0, 10'000);
        check_bank(*tbase, "ExtSync(dev=10us)");
    }
    std::printf("test_stm_atomicity: PASS\n");
    return 0;
}
