// Tier-1 STM semantics: the multi-version history and lazy snapshot
// extension, staged deterministically.
//
//  1. With history (max_versions=4) and extension off, a reader whose
//     snapshot predates a concurrent commit reads the OLD version and
//     commits on the first attempt -- a consistent-but-old snapshot.
//  2. With no history (max_versions=1, TL2-like) the same schedule aborts
//     the reader once and retries into a fresh snapshot.
//  3. With extension on, the same schedule extends the snapshot instead
//     (the read set is still the most recent) and sees the new value
//     without aborting.

#include <atomic>
#include <thread>

#include <chronostm/core/lsa_stm.hpp>

#include "test_util.hpp"

using namespace chronostm;

namespace {

using Tx = Transaction;

struct Staged {
    int attempts = 0;
    long a = -1, b = -1;
    std::uint64_t aborts = 0;
};

// Reader reads A, parks while a writer commits B=20, then reads B.
Staged run_schedule(unsigned max_versions, bool read_extension) {
    StmConfig cfg;
    cfg.max_versions = max_versions;
    cfg.read_extension = read_extension;
    LsaStm stm(tb::make("shared"), cfg);
    TVar<long> va(1), vb(10);

    std::atomic<bool> reader_started{false}, writer_done{false};
    std::thread writer([&] {
        auto ctx = stm.make_context();
        while (!reader_started.load(std::memory_order_acquire))
            std::this_thread::yield();
        ctx.run([&](Tx& tx) { vb.set(tx, 20); });
        writer_done.store(true, std::memory_order_release);
    });

    Staged out;
    auto ctx = stm.make_context();
    ctx.run([&](Tx& tx) {
        ++out.attempts;
        out.a = va.get(tx);
        if (out.attempts == 1) {
            reader_started.store(true, std::memory_order_release);
            while (!writer_done.load(std::memory_order_acquire))
                std::this_thread::yield();
        }
        out.b = vb.get(tx);
    });
    writer.join();
    out.aborts = ctx.stats().aborts();
    return out;
}

}  // namespace

int main() {
    {
        const Staged r = run_schedule(/*max_versions=*/4,
                                      /*read_extension=*/false);
        CHECK_MSG(r.attempts == 1, "attempts %d", r.attempts);
        CHECK(r.a == 1);
        CHECK_MSG(r.b == 10, "old version not served: b=%ld", r.b);
        CHECK(r.aborts == 0);
    }
    {
        const Staged r = run_schedule(/*max_versions=*/1,
                                      /*read_extension=*/false);
        CHECK_MSG(r.attempts == 2, "attempts %d", r.attempts);
        CHECK_MSG(r.b == 20, "retry did not see fresh value: b=%ld", r.b);
        CHECK(r.aborts == 1);
    }
    {
        const Staged r = run_schedule(/*max_versions=*/1,
                                      /*read_extension=*/true);
        CHECK_MSG(r.attempts == 1, "attempts %d", r.attempts);
        CHECK_MSG(r.b == 20, "extension did not reach the present: b=%ld",
                  r.b);
        CHECK(r.aborts == 0);
    }
    std::printf("test_stm_multiversion: PASS\n");
    return 0;
}
