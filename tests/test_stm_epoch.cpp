// Tier-1: the commit-epoch validation filter (PR 7, striped since PR 10).
// A writer bumps the epoch stripes its write set covers while holding its
// locks; a reader whose touched-stripe snapshots are unchanged skips the
// O(R) read-set walk when extending or validating. The single-var cells
// here behave identically at any stripe count (one write = one stripe
// bump), so they pin the protocol itself; stripe-specific behavior lives
// in test_stm_stripes.cpp. These tests force both sides of the filter:
//
//   * a deterministic forced fast hit on the LSA read path (batched
//     counter, too-new version, time advanced by side stamps only), with
//     the per-TVar version recheck delivering the latest committed value
//   * the same O(1) extension on the orec engine via try_extend_now()
//   * commit-time validation fast hits when no writer interleaved
//   * read-only commits that draw no stamp, bump no epoch
//   * the freshness-only draw-and-discard in run(): a batched-counter
//     reader stuck behind an interior-of-block stamp must make progress
//     (the original livelock), while conflict aborts must NOT drain the
//     stamp blocks
//   * bounded backoff actually runs on conflict retries (backoff_us)
//   * commit-side epoch race: a read-x/write-y copier racing an
//     incrementer of x must never certify a stale x through the commit
//     fast path (the post-stamp-draw epoch re-check), caught by a
//     cross-snapshot monotonicity oracle
//   * adversarial writer-vs-reader invariant sweeps over shared, batched
//     and sharded time bases on both engines, filter on and off; filter
//     off must report zero fast hits (the walk runs every time)

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <chronostm/core/lsa_stm.hpp>
#include <chronostm/core/orec_stm.hpp>
#include <chronostm/stm/adapter.hpp>
#include <chronostm/util/rng.hpp>

#include "test_util.hpp"

using namespace chronostm;

namespace {

using Tx = Transaction;

// Batched counter, B=8: the writer's second commit stamp is interior to
// its block, so a fresh reader (upper = block end, dev_ = 8) finds the
// version too new. Side stamps advance time without bumping the epoch;
// the read-path extension must take the O(1) fast hit and the re-read of
// the var's version must then admit the LATEST committed value.
void check_forced_fast_hit_lsa() {
    LsaStm stm(tb::make("batched:B=8"));
    TVar<long> v(1);
    auto wctx = stm.make_context();
    wctx.run([&](Tx& tx) { v.set(tx, 41); });
    wctx.run([&](Tx& tx) { v.set(tx, 42); });  // interior-of-block stamp

    auto rctx = stm.make_context();
    Transaction tx = rctx.txn_begin();  // anchors epoch AFTER both bumps
    // Time moves (fresh blocks), the epoch does not.
    auto side = stm.time_base().make_thread_clock();
    for (int i = 0; i < 4; ++i) side.get_new_ts();

    const long got = v.get(tx);
    CHECK_MSG(got == 42, "fast-hit extension admitted %ld", got);
    CHECK(rctx.txn_commit(tx));

    const auto st = rctx.stats();
    CHECK_MSG(st.extension_fast_hits >= 1, "no fast hit (extensions %llu)",
              static_cast<unsigned long long>(st.extensions));
    CHECK(st.extensions >= 1);
    CHECK(st.ro_commits == 1);
    CHECK(got == v.unsafe_peek());
}

// Orec twin, driven through the public try_extend_now(): one side stamp
// moves the shared counter, no writer commits, so the extension must be
// an epoch fast hit.
void check_fast_hit_orec() {
    OrecStm stm(tb::make("shared"));
    WordVar<long> v(5);
    auto ctx = stm.make_context();
    OrecTransaction tx = ctx.txn_begin();
    CHECK(v.get(tx) == 5);

    auto side = stm.time_base().make_thread_clock();
    side.get_new_ts();
    CHECK(tx.try_extend_now());
    CHECK(v.get(tx) == 5);
    CHECK(ctx.txn_commit(tx));

    const auto st = ctx.stats();
    CHECK_MSG(st.extension_fast_hits == 1, "fast hits %llu",
              static_cast<unsigned long long>(st.extension_fast_hits));
    CHECK(st.ro_commits == 1);
}

// A solo updater never races another bump between begin and commit, so
// its commit-time validation is always the epoch fast path.
void check_validation_fast_hit() {
    {
        LsaStm stm(tb::make("shared"));
        TVar<long> v(0);
        auto ctx = stm.make_context();
        for (int i = 0; i < 3; ++i)
            ctx.run([&](Tx& tx) { v.set(tx, v.get(tx) + 1); });
        CHECK(v.unsafe_peek() == 3);
        const auto st = ctx.stats();
        CHECK_MSG(st.validation_fast_hits == 3, "lsa fast validations %llu",
                  static_cast<unsigned long long>(st.validation_fast_hits));
        CHECK(stm.commit_epoch() == 3);  // one bump per writer commit
    }
    {
        OrecStm stm(tb::make("shared"));
        WordVar<long> v(0);
        auto ctx = stm.make_context();
        for (int i = 0; i < 3; ++i)
            ctx.run([&](OrecTransaction& tx) { v.set(tx, v.get(tx) + 1); });
        CHECK(v.unsafe_peek() == 3);
        const auto st = ctx.stats();
        CHECK_MSG(st.validation_fast_hits == 3, "orec fast validations %llu",
                  static_cast<unsigned long long>(st.validation_fast_hits));
        CHECK(stm.commit_epoch() == 3);
    }
}

// Read-only commits: no stamp drawn (the shared counter only moves on
// get_new_ts, so it must not move), no epoch bump, counted as ro_commits.
void check_ro_commit_no_stamp() {
    {
        LsaStm stm(tb::make("shared"));
        TVar<long> v(5);
        auto ctx = stm.make_context();
        auto side = stm.time_base().make_thread_clock();
        const auto before = side.get_time();
        long sum = 0;
        for (int i = 0; i < 100; ++i)
            sum += ctx.run([&](Tx& tx) { return v.get(tx); });
        CHECK(sum == 500);
        CHECK_MSG(side.get_time() == before,
                  "lsa read-only commits drew %llu stamps",
                  static_cast<unsigned long long>(side.get_time() - before));
        CHECK(stm.commit_epoch() == 0);
        const auto st = ctx.stats();
        CHECK(st.ro_commits == 100);
        CHECK(st.commits() == 100);
    }
    {
        OrecStm stm(tb::make("shared"));
        WordVar<long> v(5);
        auto ctx = stm.make_context();
        auto side = stm.time_base().make_thread_clock();
        const auto before = side.get_time();
        long sum = 0;
        for (int i = 0; i < 100; ++i)
            sum += ctx.run([&](OrecTransaction& tx) { return v.get(tx); });
        CHECK(sum == 500);
        CHECK_MSG(side.get_time() == before,
                  "orec read-only commits drew %llu stamps",
                  static_cast<unsigned long long>(side.get_time() - before));
        CHECK(stm.commit_epoch() == 0);
        const auto st = ctx.stats();
        CHECK(st.ro_commits == 100);
        CHECK(st.commits() == 100);
    }
}

// The original livelock: on the batched counter an interior-of-block
// commit stamp is unreadable until someone draws the counter past
// version + 2*dev -- with no history to fall back on, a reader retries
// forever unless run() drains stamps on freshness aborts. max_versions=1
// removes the fallback and a tight retry bound turns a recurrence into a
// clean test failure (run() would throw its retry-bound error).
void check_freshness_draw_unsticks_batched_reader() {
    StmConfig cfg;
    cfg.max_versions = 1;
    cfg.max_retries = 50;
    LsaStm stm(tb::make("batched:B=8"), cfg);
    TVar<long> v(1);
    auto c1 = stm.make_context();
    c1.run([&](Tx& tx) { v.set(tx, 41); });
    c1.run([&](Tx& tx) { v.set(tx, 42); });  // interior-of-block stamp

    auto c2 = stm.make_context();
    const long got = c2.run([&](Tx& tx) { return v.get(tx); });
    CHECK_MSG(got == 42, "reader admitted %ld", got);
    const auto st = c2.stats();
    CHECK(st.commits() == 1);
    CHECK_MSG(st.aborts() >= 1, "expected freshness aborts, saw %llu",
              static_cast<unsigned long long>(st.aborts()));
    // The converse of the backoff check below: freshness aborts are not
    // contention and must retry immediately -- the draw, not a sleep, is
    // what unsticks them.
    CHECK_MSG(st.backoff_us == 0,
              "freshness aborts spent %llu us in backoff",
              static_cast<unsigned long long>(st.backoff_us));
}

// Conflict aborts must NOT drain the stamp blocks (that is the other half
// of the run() fix), and the bounded backoff between retries must be
// observable via the backoff_us counter.
void check_conflict_aborts_draw_nothing() {
    StmConfig cfg;
    cfg.max_retries = 50;
    LsaStm stm(tb::make("batched:B=8"), cfg);
    TVar<long> v(7);
    auto ctx = stm.make_context();
    auto side = stm.time_base().make_thread_clock();
    // Warm the counter past 2*deviation: at time 0 even the initial
    // version is outside the deviation-shrunk validity range, and the
    // resulting freshness abort would legitimately draw stamps.
    side.get_new_ts();
    const auto before = side.get_time();

    int calls = 0;
    const long got = ctx.run([&](Tx& tx) {
        if (++calls <= 25) tx.abort();  // conflict abort, not freshness
        return v.get(tx);
    });
    CHECK(got == 7);
    CHECK_MSG(side.get_time() == before,
              "conflict aborts drew %llu stamps from the batched counter",
              static_cast<unsigned long long>(side.get_time() - before));
    const auto st = ctx.stats();
    CHECK(st.aborts() == 25);
    CHECK_MSG(st.backoff_us > 0, "no backoff time over %llu retries",
              static_cast<unsigned long long>(st.aborts()));
}

// Adversarial sweep: a writer keeps x + y == kTotal while a side thread
// hammers the time base (time moves without epoch bumps -> extension fast
// hits race real conflicts) and readers re-read under forced extension
// pressure. Opacity means no reader ever observes a torn total. Returns
// the engine-wide stats so callers can assert on the filter counters.
constexpr long kTotal = 1000;

template <typename A, typename Cfg>
TxStats adversarial_cell(const std::string& spec, Cfg cfg) {
    A adapter(tb::make(spec), cfg);
    typename A::template Var<long> x(kTotal / 2), y(kTotal / 2);

    std::atomic<bool> stop{false};
    std::atomic<int> violations{0};
    std::vector<std::thread> threads;
    threads.emplace_back([&] {  // writer
        auto ctx = adapter.make_context();
        Rng rng(11);
        while (!stop.load(std::memory_order_acquire)) {
            const long amt = static_cast<long>(rng.below(9)) + 1;
            adapter.run(ctx, [&](typename A::Txn& tx) {
                tx.write(x, tx.read(x) - amt);
                tx.write(y, tx.read(y) + amt);
            });
        }
    });
    threads.emplace_back([&] {  // stamp pressure, no commits
        auto clk = adapter.stm().time_base().make_thread_clock();
        while (!stop.load(std::memory_order_acquire)) clk.get_new_ts();
    });
    for (int r = 0; r < 2; ++r) {
        threads.emplace_back([&] {
            auto ctx = adapter.make_context();
            while (!stop.load(std::memory_order_acquire)) {
                adapter.run(ctx, [&](typename A::Txn& tx) {
                    const long a = tx.read(x);
                    for (volatile int i = 0; i < 64; ++i) {
                    }
                    const long b = tx.read(y);
                    if (a + b != kTotal)
                        violations.fetch_add(1, std::memory_order_relaxed);
                });
            }
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    stop.store(true, std::memory_order_release);
    for (auto& t : threads) t.join();

    CHECK_MSG(violations.load() == 0, "%d stale snapshots on %s",
              violations.load(), spec.c_str());
    CHECK(x.unsafe_peek() + y.unsafe_peek() == kTotal);
    const auto st = adapter.collected_stats();
    CHECK(st.commits() > 0);
    return st;
}

// Commit-side epoch race (the REVIEW fix): a copier reads x and writes y
// (disjoint write sets, so locks never order it against the x-writer)
// while an incrementer bumps x. The unsound fast path decided epoch
// cleanliness at the bump but serialized at a stamp drawn later; a
// writer bumping in that window could draw a SMALLER stamp and publish
// into the copier's read set below its commit stamp, letting the copier
// certify a stale x. Oracle: a checker snapshots (a=x, b=y) -- x first,
// then y, so its final time sample precedes any copier stamp it misses
// -- and whenever the copy changes between consecutive snapshots, the
// new copy must be >= the x of the PREVIOUS snapshot: the copier that
// produced it serialized after that snapshot, and x is monotone. LSA
// runs with max_versions=1 (an old-version fallback would let a later
// checker legitimately serialize before an earlier one, which the
// cross-snapshot comparison cannot distinguish from the race).
template <typename A, typename Cfg>
void copier_race_cell(const std::string& spec, Cfg cfg) {
    A adapter(tb::make(spec), cfg);
    alignas(64) typename A::template Var<long> x(0);
    alignas(64) typename A::template Var<long> y(0);

    std::atomic<bool> stop{false};
    std::atomic<int> inversions{0};
    std::vector<std::thread> threads;
    threads.emplace_back([&] {  // incrementer of x
        auto ctx = adapter.make_context();
        while (!stop.load(std::memory_order_acquire))
            adapter.run(ctx, [&](typename A::Txn& tx) {
                tx.write(x, tx.read(x) + 1);
            });
    });
    threads.emplace_back([&] {  // copier: reads x, writes y
        auto ctx = adapter.make_context();
        while (!stop.load(std::memory_order_acquire))
            adapter.run(ctx, [&](typename A::Txn& tx) {
                tx.write(y, tx.read(x));
            });
    });
    threads.emplace_back([&] {  // checker
        auto ctx = adapter.make_context();
        bool have_prev = false;
        long prev_a = 0, prev_b = 0;
        while (!stop.load(std::memory_order_acquire)) {
            long a = 0, b = 0;
            adapter.run(ctx, [&](typename A::Txn& tx) {
                a = tx.read(x);
                b = tx.read(y);
            });
            if (have_prev && b != prev_b && b < prev_a)
                inversions.fetch_add(1, std::memory_order_relaxed);
            have_prev = true;
            prev_a = a;
            prev_b = b;
        }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    stop.store(true, std::memory_order_release);
    for (auto& t : threads) t.join();

    CHECK_MSG(inversions.load() == 0,
              "%d stale-commit inversions on %s (copy went backwards past "
              "an observed x)",
              inversions.load(), spec.c_str());
    CHECK(y.unsafe_peek() <= x.unsafe_peek());
    CHECK(adapter.collected_stats().commits() > 0);
}

void check_copier_race() {
    // The commit-side race window exists per stripe, so the oracle runs
    // over the degenerate single-word filter, a coarse striping that
    // aliases x and y's stripes on some geometries, and the default.
    for (const unsigned stripes : {1u, 4u, 64u}) {
        for (const char* spec : {"shared", "batched:B=8", "sharded:S=4"}) {
            StmConfig lsa;
            lsa.max_versions = 1;
            lsa.filter_stripes = stripes;
            copier_race_cell<stm::LsaAdapter>(spec, lsa);
            OrecConfig orec;
            orec.filter_stripes = stripes;
            copier_race_cell<stm::OrecAdapter>(spec, orec);
        }
    }
}

void check_adversarial_sweep() {
    for (const char* spec : {"shared", "batched:B=8", "sharded:S=4"}) {
        adversarial_cell<stm::LsaAdapter>(spec, StmConfig{});
        adversarial_cell<stm::OrecAdapter>(spec, OrecConfig{});
    }
    // Filter off: same workload must stay opaque with zero fast hits --
    // every extension and validation runs the full walk.
    StmConfig lsa_off;
    lsa_off.epoch_filter = false;
    const auto lsa_st =
        adversarial_cell<stm::LsaAdapter>("shared", lsa_off);
    CHECK(lsa_st.extension_fast_hits == 0);
    CHECK(lsa_st.validation_fast_hits == 0);
    OrecConfig orec_off;
    orec_off.epoch_filter = false;
    const auto orec_st =
        adversarial_cell<stm::OrecAdapter>("shared", orec_off);
    CHECK(orec_st.extension_fast_hits == 0);
    CHECK(orec_st.validation_fast_hits == 0);
}

}  // namespace

int main() {
    check_forced_fast_hit_lsa();
    check_fast_hit_orec();
    check_validation_fast_hit();
    check_ro_commit_no_stamp();
    check_freshness_draw_unsticks_batched_reader();
    check_conflict_aborts_draw_nothing();
    check_copier_race();
    check_adversarial_sweep();
    std::printf("test_stm_epoch: PASS\n");
    return 0;
}
