// Tiny assertion harness for the tier-1 unit tests: no framework
// dependency, exits nonzero on first failure with file:line context.

#pragma once

#include <cstdio>
#include <cstdlib>

#define CHECK(cond)                                                         \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,   \
                         __LINE__, #cond);                                  \
            std::exit(1);                                                   \
        }                                                                   \
    } while (0)

#define CHECK_MSG(cond, fmt, ...)                                           \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::fprintf(stderr, "CHECK failed at %s:%d: %s (" fmt ")\n",   \
                         __FILE__, __LINE__, #cond, __VA_ARGS__);           \
            std::exit(1);                                                   \
        }                                                                   \
    } while (0)
