// Tier-1: the transactional containers (ds/skiplist.hpp, ds/hashmap.hpp,
// ds/queue.hpp) over the type-erased EnginePolicy for EVERY registry
// engine, plus the DirectPolicy compile-time twin for the time-based
// engines. Single-threaded runs are checked operation-by-operation
// against STL references; multi-threaded runs check the transactional
// invariants (net-size accounting, per-producer FIFO order, disjoint-
// range determinism) and that the epoch heap drains to zero limbo.
//
// CHRONOSTM_TIMEBASE adds time-base specs for the lsa/orec engines.

#include <cstdint>
#include <cstdlib>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <chronostm/ds/hashmap.hpp>
#include <chronostm/ds/policy.hpp>
#include <chronostm/ds/queue.hpp>
#include <chronostm/ds/skiplist.hpp>
#include <chronostm/stm/facade.hpp>

#include "test_util.hpp"

using namespace chronostm;

namespace {

std::uint64_t xorshift(std::uint64_t& r) {
    r ^= r << 13;
    r ^= r >> 7;
    r ^= r << 17;
    return r;
}

// ---- single-threaded, reference-checked -------------------------------

template <typename Policy>
void check_set_semantics(Policy pol, const char* label) {
    ds::SkiplistSet<Policy> set(pol);
    auto h = set.make_handle();
    std::set<std::uint64_t> ref;
    std::uint64_t r = 0x2545f4914f6cdd1dull;
    for (int i = 0; i < 4000; ++i) {
        const std::uint64_t key = xorshift(r) % 96;
        switch (r >> 8 & 3) {
            case 0:
            case 1:
                CHECK_MSG(set.insert(h, key) == ref.insert(key).second,
                          "%s insert(%llu) step %d", label,
                          static_cast<unsigned long long>(key), i);
                break;
            case 2:
                CHECK_MSG(set.erase(h, key) == (ref.erase(key) == 1),
                          "%s erase(%llu) step %d", label,
                          static_cast<unsigned long long>(key), i);
                break;
            default:
                CHECK_MSG(set.contains(h, key) == (ref.count(key) == 1),
                          "%s contains(%llu) step %d", label,
                          static_cast<unsigned long long>(key), i);
        }
    }
    CHECK(set.unsafe_size() == ref.size());
    for (std::uint64_t k = 0; k < 96; ++k)
        CHECK(set.contains(h, k) == (ref.count(k) == 1));
}

template <typename Policy>
void check_map_semantics(Policy pol, const char* label) {
    ds::TxHashMap<Policy> map(pol, 256);
    auto h = map.make_handle();
    std::map<std::uint64_t, std::uint64_t> ref;
    std::uint64_t r = 0x9e3779b97f4a7c15ull;
    for (int i = 0; i < 4000; ++i) {
        const std::uint64_t key = xorshift(r) % 96;
        const std::uint64_t val = (r >> 16) | 2;  // kEmpty/kTombstone-safe
        std::uint64_t out = 0;
        switch (r >> 8 & 3) {
            case 0:
            case 1:
                // put returns true only when the key was absent.
                CHECK_MSG(map.put(h, key, val) == (ref.count(key) == 0),
                          "%s put(%llu) step %d", label,
                          static_cast<unsigned long long>(key), i);
                ref[key] = val;
                break;
            case 2:
                CHECK_MSG(map.erase(h, key) == (ref.erase(key) == 1),
                          "%s erase(%llu) step %d", label,
                          static_cast<unsigned long long>(key), i);
                break;
            default:
                CHECK(map.get(h, key, out) == (ref.count(key) == 1));
                if (ref.count(key) == 1) CHECK(out == ref[key]);
        }
    }
    CHECK(map.unsafe_size() == ref.size());
    for (const auto& kv : ref) {
        std::uint64_t out = 0;
        CHECK(map.get(h, kv.first, out) && out == kv.second);
    }
    // Tombstone reuse: cycling one key through erase/put forever must not
    // exhaust a small table (graves are reclaimed as insert slots).
    ds::TxHashMap<Policy> small(pol, 8);
    auto sh = small.make_handle();
    for (int i = 0; i < 200; ++i) {
        CHECK(small.put(sh, 5, 100 + i));
        CHECK(small.erase(sh, 5));
    }
    CHECK(small.unsafe_size() == 0);
}

template <typename Policy>
void check_queue_semantics(Policy pol, const char* label) {
    ds::TxQueue<Policy> q(pol);
    auto h = q.make_handle();
    std::uint64_t out = 0;
    CHECK(!q.dequeue(h, out));  // empty
    std::deque<std::uint64_t> ref;
    std::uint64_t r = 0x853c49e6748fea9bull;
    for (int i = 0; i < 2000; ++i) {
        if ((xorshift(r) & 3) != 0 || ref.empty()) {
            q.enqueue(h, r);
            ref.push_back(r);
        } else {
            CHECK(q.dequeue(h, out));
            CHECK_MSG(out == ref.front(), "%s FIFO broken at step %d", label,
                      i);
            ref.pop_front();
        }
        CHECK(q.unsafe_size() == ref.size());
    }
    while (!ref.empty()) {
        CHECK(q.dequeue(h, out) && out == ref.front());
        ref.pop_front();
    }
    CHECK(!q.dequeue(h, out));
    CHECK(q.unsafe_size() == 0);
}

// ---- multi-threaded invariants ----------------------------------------

template <typename Policy>
void check_set_threaded(Policy pol, const char* label) {
    ds::SkiplistSet<Policy> set(pol);
    const unsigned kThreads = 4;
    const unsigned kOps = 1500;
    const std::uint64_t kSpace = 64;
    std::atomic<long> net{0};
    std::vector<std::thread> ts;
    for (unsigned t = 0; t < kThreads; ++t) {
        ts.emplace_back([&, t] {
            auto h = set.make_handle();
            std::uint64_t r = t * 0xd1342543de82ef95ull + 7;
            long my = 0;
            for (unsigned i = 0; i < kOps; ++i) {
                const std::uint64_t key = xorshift(r) % kSpace;
                if (r & (1u << 9)) {
                    if (set.insert(h, key)) ++my;
                } else {
                    if (set.erase(h, key)) --my;
                }
            }
            net.fetch_add(my);
        });
    }
    for (auto& th : ts) th.join();
    // insert/erase return values are transactional, so the net count must
    // equal the surviving population exactly.
    CHECK_MSG(static_cast<long>(set.unsafe_size()) == net.load(),
              "%s: size %zu != net %ld", label, set.unsafe_size(),
              net.load());
    set.heap().drain();
    CHECK(set.heap().stats().limbo == 0);
}

template <typename Policy>
void check_map_threaded(Policy pol, const char* label) {
    // Disjoint key ranges: each thread's final writes must be exactly
    // what a later reader observes, independent of interleaving.
    ds::TxHashMap<Policy> map(pol, 1024);
    const unsigned kThreads = 4;
    const unsigned kOps = 1500;
    const std::uint64_t kRange = 48;
    std::vector<std::map<std::uint64_t, std::uint64_t>> finals(kThreads);
    std::vector<std::thread> ts;
    for (unsigned t = 0; t < kThreads; ++t) {
        ts.emplace_back([&, t] {
            auto h = map.make_handle();
            std::uint64_t r = t * 0xaf251af3b0f025b5ull + 3;
            const std::uint64_t base = 1000 * (t + 1);
            for (unsigned i = 0; i < kOps; ++i) {
                const std::uint64_t key = base + xorshift(r) % kRange;
                const std::uint64_t val = (r >> 16) | 2;
                if (r & (1u << 9)) {
                    map.put(h, key, val);
                    finals[t][key] = val;
                } else {
                    map.erase(h, key);
                    finals[t].erase(key);
                }
            }
        });
    }
    for (auto& th : ts) th.join();
    auto h = map.make_handle();
    std::size_t expect = 0;
    for (unsigned t = 0; t < kThreads; ++t) {
        expect += finals[t].size();
        for (std::uint64_t k = 1000 * (t + 1); k < 1000 * (t + 1) + kRange;
             ++k) {
            std::uint64_t out = 0;
            const bool present = map.get(h, k, out);
            CHECK_MSG(present == (finals[t].count(k) == 1),
                      "%s: key %llu presence mismatch", label,
                      static_cast<unsigned long long>(k));
            if (present) CHECK(out == finals[t][k]);
        }
    }
    CHECK(map.unsafe_size() == expect);
    map.heap().drain();
    CHECK(map.heap().stats().limbo == 0);
}

template <typename Policy>
void check_queue_threaded(Policy pol, const char* label) {
    ds::TxQueue<Policy> q(pol);
    const unsigned kProducers = 2;
    const unsigned kConsumers = 2;
    const unsigned kItems = 1200;  // per producer
    std::atomic<unsigned> popped{0};
    std::vector<std::vector<std::uint64_t>> got(kConsumers);
    std::vector<std::thread> ts;
    for (unsigned p = 0; p < kProducers; ++p) {
        ts.emplace_back([&, p] {
            auto h = q.make_handle();
            for (unsigned i = 0; i < kItems; ++i)
                q.enqueue(h, (static_cast<std::uint64_t>(p) << 32) | i);
        });
    }
    for (unsigned c = 0; c < kConsumers; ++c) {
        ts.emplace_back([&, c] {
            auto h = q.make_handle();
            std::uint64_t out = 0;
            while (popped.load() < kProducers * kItems) {
                if (q.dequeue(h, out)) {
                    got[c].push_back(out);
                    popped.fetch_add(1);
                } else {
                    std::this_thread::yield();
                }
            }
        });
    }
    for (auto& th : ts) th.join();

    // FIFO per producer: any single consumer sees each producer's
    // sequence numbers strictly increasing; the union is exactly the
    // submitted multiset.
    std::set<std::uint64_t> all;
    for (unsigned c = 0; c < kConsumers; ++c) {
        std::vector<std::int64_t> last(kProducers, -1);
        for (const std::uint64_t v : got[c]) {
            const unsigned p = static_cast<unsigned>(v >> 32);
            const std::int64_t seq = static_cast<std::int64_t>(v & 0xffffffff);
            CHECK_MSG(seq > last[p], "%s: producer %u reordered", label, p);
            last[p] = seq;
            CHECK(all.insert(v).second);  // no duplicates
        }
    }
    CHECK(all.size() == kProducers * kItems);
    CHECK(q.unsafe_size() == 0);
    q.heap().drain();
    CHECK(q.heap().stats().limbo == 0);
}

template <typename MkPolicy>
void check_all(MkPolicy mk, const std::string& label) {
    const char* l = label.c_str();
    check_set_semantics(mk(), l);
    check_map_semantics(mk(), l);
    check_queue_semantics(mk(), l);
    check_set_threaded(mk(), l);
    check_map_threaded(mk(), l);
    check_queue_threaded(mk(), l);
}

}  // namespace

int main() {
    // Every registry engine through the type-erased policy.
    for (const char* spec : {"lsa", "orec:bits=12", "tl2", "vstm", "glock"}) {
        stm::Engine eng = stm::make(spec);
        check_all([&] { return ds::EnginePolicy(eng); },
                  std::string("engine:") + spec);
    }

    // The compile-time twin must behave identically (same container code,
    // statically dispatched slots).
    {
        stm::Engine eng = stm::make("lsa");
        auto& ad = *stm::get_if<stm::LsaAdapter>(eng);
        check_all([&] { return ds::DirectPolicy<stm::LsaAdapter>(ad); },
                  "direct:lsa");
    }
    {
        stm::Engine eng = stm::make("orec:bits=12");
        auto& ad = *stm::get_if<stm::OrecAdapter>(eng);
        check_all([&] { return ds::DirectPolicy<stm::OrecAdapter>(ad); },
                  "direct:orec");
    }

    // CI matrix: sweep the time-based engines across CHRONOSTM_TIMEBASE.
    if (const char* env = std::getenv("CHRONOSTM_TIMEBASE")) {
        for (const auto& tbs : tb::split_specs(env)) {
            for (const char* spec : {"lsa", "orec:bits=12"}) {
                stm::Engine eng = stm::make(spec, tb::make(tbs));
                check_all([&] { return ds::EnginePolicy(eng); },
                          std::string(spec) + "@" + tbs);
            }
        }
    }

    std::printf("test_stm_datastructures: all checks passed\n");
    return 0;
}
