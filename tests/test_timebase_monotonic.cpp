// Tier-1: per-thread monotonicity of every time base. Each of 8 threads
// draws a stream of stamps from its own thread clock; get_new_ts must be
// strictly increasing within a thread for every base, and get_time
// observations interleaved with them must never exceed a later commit
// stamp from the same clock. Imprecise bases (batched/sharded/adaptive)
// run a deviation-adjusted variant of the get_time bound -- an
// observation may lead a later stamp, but never by more than the pairwise
// uncertainty 2*deviation() -- exercised through the facade registry so
// the string-keyed path is what the invariants hold over.

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <chronostm/timebase/facade.hpp>

#include "test_util.hpp"

using namespace chronostm;

namespace {

constexpr unsigned kThreads = 8;

template <typename TB>
void check_monotonic(TB& tbase, int stamps_per_thread, const char* name) {
    std::vector<std::thread> threads;
    std::vector<int> ok(kThreads, 0);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&tbase, &ok, t, stamps_per_thread] {
            auto clk = tbase.make_thread_clock();
            std::uint64_t prev_ts = 0;
            bool good = true;
            for (int i = 0; i < stamps_per_thread; ++i) {
                const std::uint64_t now = clk.get_time();
                const std::uint64_t ts = clk.get_new_ts();
                good = good && (i == 0 || ts > prev_ts) && (now <= ts);
                prev_ts = ts;
            }
            ok[t] = good ? 1 : 0;
        });
    }
    for (auto& th : threads) th.join();
    for (unsigned t = 0; t < kThreads; ++t)
        CHECK_MSG(ok[t] == 1, "time base %s, thread %u", name, t);
}

// The batched counter is deliberately imprecise: a get_time observation may
// exceed a later stamp from the same thread, but never by the block size or
// more (stamps lag the exact counter by at most B-1). Per-thread strict
// monotonicity of stamps still holds exactly.
void check_monotonic_batched(std::uint64_t block, int stamps_per_thread) {
    tb::BatchedCounterTimeBase tbase(block);
    const std::uint64_t bound = tbase.block_size();
    std::vector<std::thread> threads;
    std::vector<int> ok(kThreads, 0);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&tbase, &ok, bound, t, stamps_per_thread] {
            auto clk = tbase.make_thread_clock();
            std::uint64_t prev_ts = 0;
            bool good = true;
            for (int i = 0; i < stamps_per_thread; ++i) {
                const std::uint64_t now = clk.get_time();
                const std::uint64_t ts = clk.get_new_ts();
                good = good && (i == 0 || ts > prev_ts) && (now < ts + bound);
                prev_ts = ts;
            }
            ok[t] = good ? 1 : 0;
        });
    }
    for (auto& th : threads) th.join();
    for (unsigned t = 0; t < kThreads; ++t)
        CHECK_MSG(ok[t] == 1, "BatchedCounter(B=%llu), thread %u",
                  static_cast<unsigned long long>(block), t);
}

// Registry-made imprecise bases: stamps strictly increase per thread, and
// interleaved get_time observations stay within the pairwise uncertainty
// of a later stamp from the same clock (now <= ts + 2*deviation(); see the
// centered-bound derivations in the base headers).
void check_monotonic_facade(const std::string& spec, int stamps_per_thread) {
    tb::TimeBase tbase = tb::make(spec);
    const std::uint64_t slack = 2 * tbase.deviation() + 1;
    std::vector<std::thread> threads;
    std::vector<int> ok(kThreads, 0);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&tbase, &ok, slack, t, stamps_per_thread] {
            auto clk = tbase.make_thread_clock();
            std::uint64_t prev_ts = 0;
            bool good = true;
            for (int i = 0; i < stamps_per_thread; ++i) {
                const std::uint64_t now = clk.get_time();
                const std::uint64_t ts = clk.get_new_ts();
                good = good && (i == 0 || ts > prev_ts) && (now < ts + slack);
                prev_ts = ts;
            }
            ok[t] = good ? 1 : 0;
        });
    }
    for (auto& th : threads) th.join();
    for (unsigned t = 0; t < kThreads; ++t)
        CHECK_MSG(ok[t] == 1, "time base %s, thread %u", spec.c_str(), t);
}

}  // namespace

int main() {
    {
        tb::SharedCounterTimeBase tbase;
        check_monotonic(tbase, 20000, "SharedCounter");
    }
    {
        tb::Tl2SharedCounterTimeBase tbase;
        check_monotonic(tbase, 20000, "Tl2SharedCounter");
    }
    check_monotonic_batched(1, 20000);   // degenerate: behaves exactly
    check_monotonic_batched(8, 20000);   // refetch-heavy
    check_monotonic_batched(64, 20000);  // throughput-tuned
    check_monotonic_facade("batched:B=8", 20000);
    check_monotonic_facade("sharded:S=1,K=1", 20000);  // near-exact corner
    check_monotonic_facade("sharded:S=4,K=8", 20000);
    check_monotonic_facade("sharded:S=8,K=2", 20000);
    check_monotonic_facade("adaptive:S=4,B=8,L=16", 20000);
    check_monotonic_facade("adaptive:S=3,B=4,L=4,threshold-ns=1,trips=1",
                           20000);  // trips instantly: crosses both switches
    {
        tb::PerfectClockTimeBase tbase(tb::PerfectSource::Auto);
        check_monotonic(tbase, 20000, "PerfectClock(Auto)");
    }
    {
        tb::PerfectClockTimeBase tbase(tb::PerfectSource::Steady);
        check_monotonic(tbase, 20000, "PerfectClock(Steady)");
    }
    {
        // Few stamps: every MMTimer read pays the simulated ~350ns latency.
        tb::MMTimerSim sim;
        tb::MMTimerClockTimeBase tbase(sim);
        check_monotonic(tbase, 500, "MMTimer");
    }
    {
        static tb::WallTimeSource src;
        static tb::PerfectDevice d0(src, 1'000'000'000), d1(src, 1'000'000'000);
        auto tbase = tb::ExtSyncTimeBase::with_static_params({&d0, &d1}, 0, 100);
        check_monotonic(*tbase, 20000, "ExtSync");
    }
    std::printf("test_timebase_monotonic: PASS\n");
    return 0;
}
