// Chaos harness (CHRONOSTM_FAILPOINTS builds): the bank and copier
// oracles from the tier-1 suite re-run under deterministic fault
// injection -- stalled committers parked on held locks, injected read
// aborts (abort storms), and preemption-style delays at every commit
// failpoint -- across both engines and the shared/batched/sharded time
// bases. Two properties are asserted:
//
//   * serializability: conservation and snapshot-monotonicity oracles
//     hold no matter what the failpoints inject;
//   * progress: with the degradation ladder enabled every worker finishes
//     every operation with ZERO RetryExhausted throws (stall detection
//     aborts off the dead lock, backoff spreads the storm, and the
//     irrevocability token bounds the worst case), while the same
//     100%-injection storm with irrevocable_threshold=0 demonstrably
//     throws.
//
// The failpoint RNG seed defaults to a fixed value and can be overridden
// with CHRONOSTM_CHAOS_SEED (CI runs one fixed and one random seed); it is
// echoed up front so any failure is replayable.

#include <cstdio>

#ifndef CHRONOSTM_FAILPOINTS

int main() {
    std::printf("test_stm_chaos: SKIPPED (built without "
                "CHRONOSTM_FAILPOINTS)\n");
    return 0;
}

#else  // CHRONOSTM_FAILPOINTS

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <chronostm/stm/adapter.hpp>
#include <chronostm/util/rng.hpp>

#include "test_util.hpp"

using namespace chronostm;

namespace {

// Mixed-fault mix used by the oracle cells: occasional long stalls at
// every commit site (a committer parked on held locks), short preemption
// delays, and a few percent of injected read aborts.
void arm_chaos_sites() {
    fp::reset();
    fp::SiteConfig commit_site;
    commit_site.stall_ppm = 4000;  // 0.4% of commits park for a while
    commit_site.stall_us = 300;
    commit_site.delay_ppm = 20000;  // 2% take a short preemption delay
    commit_site.delay_spins = 512;
    for (fp::Site s : {fp::k_lsa_commit_post_lock, fp::k_lsa_commit_pre_stamp,
                       fp::k_lsa_commit_pre_writeback,
                       fp::k_lsa_commit_pre_unlock, fp::k_orec_commit_post_lock,
                       fp::k_orec_commit_pre_stamp,
                       fp::k_orec_commit_pre_writeback,
                       fp::k_orec_commit_pre_unlock})
        fp::configure(s, commit_site);

    fp::SiteConfig read_site;
    read_site.abort_ppm = 20000;  // 2% injected aborts: a rolling storm
    read_site.delay_ppm = 10000;
    read_site.delay_spins = 256;
    fp::configure(fp::k_lsa_read, read_site);
    fp::configure(fp::k_orec_read, read_site);
}

// Ladder-enabled config for the oracle cells: the retry bound is tight
// enough that an unhandled storm WOULD throw, the threshold well under it
// so escalation always wins first.
template <typename Cfg>
Cfg chaos_cfg(Cfg cfg) {
    cfg.max_retries = 512;
    cfg.irrevocable_threshold = 16;
    return cfg;
}

// Bank oracle under chaos: fixed-size transfer load plus a running
// auditor; completion of every operation with zero RetryExhausted throws
// IS the progress assertion, conservation the serializability one.
template <typename A, typename Cfg>
void chaos_bank_cell(const std::string& label, const std::string& spec,
                     Cfg cfg) {
    constexpr unsigned kThreads = 3;
    constexpr int kAccounts = 8;
    constexpr long kInitial = 100;
    constexpr int kOps = 400;

    A adapter(tb::make(spec), chaos_cfg(cfg));
    std::vector<std::unique_ptr<typename A::template Var<long>>> acct;
    for (int i = 0; i < kAccounts; ++i)
        acct.push_back(
            std::make_unique<typename A::template Var<long>>(kInitial));

    std::atomic<int> retry_exhausted{0};
    std::atomic<int> torn_audits{0};
    std::atomic<unsigned> done{0};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            auto ctx = adapter.make_context();
            Rng rng(t * 7919 + 13);
            for (int i = 0; i < kOps; ++i) {
                const auto a = rng.below(kAccounts);
                auto b = rng.below(kAccounts);
                if (a == b) b = (b + 1) % kAccounts;
                const long amount = static_cast<long>(rng.below(5)) + 1;
                try {
                    adapter.run(ctx, [&](typename A::Txn& tx) {
                        tx.write(*acct[a], tx.read(*acct[a]) - amount);
                        tx.write(*acct[b], tx.read(*acct[b]) + amount);
                    });
                } catch (const RetryExhausted&) {
                    retry_exhausted.fetch_add(1, std::memory_order_relaxed);
                }
            }
            done.fetch_add(1, std::memory_order_acq_rel);
        });
    }
    threads.emplace_back([&] {  // auditor: whole-bank read transactions
        auto ctx = adapter.make_context();
        while (done.load(std::memory_order_acquire) < kThreads) {
            try {
                long total = 0;
                adapter.run(ctx, [&](typename A::Txn& tx) {
                    total = 0;
                    for (auto& a : acct) total += tx.read(*a);
                });
                if (total != kInitial * kAccounts)
                    torn_audits.fetch_add(1, std::memory_order_relaxed);
            } catch (const RetryExhausted&) {
                retry_exhausted.fetch_add(1, std::memory_order_relaxed);
            }
        }
    });
    for (auto& th : threads) th.join();

    CHECK_MSG(retry_exhausted.load() == 0,
              "%s: %d RetryExhausted throws with the ladder enabled",
              label.c_str(), retry_exhausted.load());
    CHECK_MSG(torn_audits.load() == 0, "%s: %d torn audits", label.c_str(),
              torn_audits.load());
    long total = 0;
    for (const auto& a : acct) total += a->unsafe_peek();
    CHECK_MSG(total == kInitial * kAccounts, "%s: total %ld", label.c_str(),
              total);
    const auto st = adapter.collected_stats();
    CHECK(st.commits() >= kThreads * kOps);  // every transfer landed
}

// Copier oracle under chaos (see test_stm_epoch.cpp for the oracle's
// soundness argument): whenever the copy changes between consecutive
// checker snapshots, the new copy must not precede the previously
// observed x. LSA runs single-version so the oracle stays decisive.
template <typename A, typename Cfg>
void chaos_copier_cell(const std::string& label, const std::string& spec,
                       Cfg cfg) {
    constexpr int kOps = 600;
    A adapter(tb::make(spec), chaos_cfg(cfg));
    alignas(64) typename A::template Var<long> x(0);
    alignas(64) typename A::template Var<long> y(0);

    std::atomic<int> retry_exhausted{0};
    std::atomic<int> inversions{0};
    std::atomic<unsigned> done{0};
    std::vector<std::thread> threads;
    threads.emplace_back([&] {  // incrementer of x
        auto ctx = adapter.make_context();
        for (int i = 0; i < kOps; ++i) {
            try {
                adapter.run(ctx, [&](typename A::Txn& tx) {
                    tx.write(x, tx.read(x) + 1);
                });
            } catch (const RetryExhausted&) {
                retry_exhausted.fetch_add(1, std::memory_order_relaxed);
            }
        }
        done.fetch_add(1, std::memory_order_acq_rel);
    });
    threads.emplace_back([&] {  // copier: reads x, writes y
        auto ctx = adapter.make_context();
        for (int i = 0; i < kOps; ++i) {
            try {
                adapter.run(ctx, [&](typename A::Txn& tx) {
                    tx.write(y, tx.read(x));
                });
            } catch (const RetryExhausted&) {
                retry_exhausted.fetch_add(1, std::memory_order_relaxed);
            }
        }
        done.fetch_add(1, std::memory_order_acq_rel);
    });
    threads.emplace_back([&] {  // checker
        auto ctx = adapter.make_context();
        bool have_prev = false;
        long prev_a = 0, prev_b = 0;
        while (done.load(std::memory_order_acquire) < 2) {
            long a = 0, b = 0;
            try {
                adapter.run(ctx, [&](typename A::Txn& tx) {
                    a = tx.read(x);
                    b = tx.read(y);
                });
            } catch (const RetryExhausted&) {
                retry_exhausted.fetch_add(1, std::memory_order_relaxed);
                continue;
            }
            if (have_prev && b != prev_b && b < prev_a)
                inversions.fetch_add(1, std::memory_order_relaxed);
            have_prev = true;
            prev_a = a;
            prev_b = b;
        }
    });
    for (auto& th : threads) th.join();

    CHECK_MSG(retry_exhausted.load() == 0,
              "%s: %d RetryExhausted throws with the ladder enabled",
              label.c_str(), retry_exhausted.load());
    CHECK_MSG(inversions.load() == 0, "%s: %d stale-commit inversions",
              label.c_str(), inversions.load());
    CHECK(x.unsafe_peek() == kOps);
    CHECK(y.unsafe_peek() <= x.unsafe_peek());
}

// Total abort storm: EVERY optimistic read is an injected abort, so the
// only way any transaction ever commits is the ladder -- four injected
// aborts, escalate, commit irrevocably (the token holder ignores the
// injection). Two threads keep the token contended.
template <typename A, typename Cfg>
void chaos_abort_storm_cell(Cfg cfg) {
    fp::reset();
    fp::SiteConfig always_abort;
    always_abort.abort_ppm = 1'000'000;
    fp::configure(fp::k_lsa_read, always_abort);
    fp::configure(fp::k_orec_read, always_abort);

    constexpr unsigned kThreads = 2;
    constexpr int kOps = 40;
    cfg.max_retries = 64;
    cfg.irrevocable_threshold = 4;
    A adapter(tb::make("shared"), cfg);
    typename A::template Var<long> v(0);

    std::atomic<int> retry_exhausted{0};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            auto ctx = adapter.make_context();
            for (int i = 0; i < kOps; ++i) {
                try {
                    adapter.run(ctx, [&](typename A::Txn& tx) {
                        tx.write(v, tx.read(v) + 1);
                    });
                } catch (const RetryExhausted&) {
                    retry_exhausted.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (auto& th : threads) th.join();

    CHECK(retry_exhausted.load() == 0);
    CHECK(v.unsafe_peek() == kThreads * kOps);
    const auto st = adapter.collected_stats();
    // Nothing can commit optimistically under 100% read-abort injection:
    // every commit went through the token, one escalation each.
    CHECK(st.commits() == kThreads * kOps);
    CHECK(st.irrevocable_commits == st.commits());
    CHECK(st.escalations == st.commits());
    CHECK(st.injected_faults > 0);
    fp::reset();
}

// The same storm with the ladder DISABLED must exhaust its retry bound
// and surface as RetryExhausted -- proving the ladder, not luck, is what
// makes the storm cells above complete.
template <typename A, typename Cfg>
void chaos_throws_without_ladder(const char* engine, Cfg cfg) {
    fp::reset();
    fp::SiteConfig always_abort;
    always_abort.abort_ppm = 1'000'000;
    fp::configure(fp::k_lsa_read, always_abort);
    fp::configure(fp::k_orec_read, always_abort);

    cfg.max_retries = 8;
    cfg.irrevocable_threshold = 0;  // ladder off
    A adapter(tb::make("shared"), cfg);
    typename A::template Var<long> v(0);
    auto ctx = adapter.make_context();

    bool threw = false;
    try {
        adapter.run(ctx,
                    [&](typename A::Txn& tx) { tx.write(v, tx.read(v) + 1); });
    } catch (const RetryExhausted& e) {
        threw = true;
        CHECK(e.conflict_aborts == 8);  // injected aborts are conflict-class
        CHECK(e.freshness_aborts == 0);
        CHECK(e.stats.aborts() >= 8);
    }
    CHECK_MSG(threw, "%s: 100%% injection with the ladder off did not throw",
              engine);
    CHECK(v.unsafe_peek() == 0);
    fp::reset();
}

}  // namespace

int main() {
    std::uint64_t seed = 0xC0FFEEull;
    if (const char* env = std::getenv("CHRONOSTM_CHAOS_SEED"))
        seed = std::strtoull(env, nullptr, 0);
    fp::set_seed(seed);
    std::printf("test_stm_chaos: seed 0x%llx (override with "
                "CHRONOSTM_CHAOS_SEED)\n",
                static_cast<unsigned long long>(seed));

    for (const char* spec : {"shared", "batched:B=8", "sharded:S=4"}) {
        arm_chaos_sites();
        chaos_bank_cell<stm::LsaAdapter>(std::string("lsa/") + spec, spec,
                                         StmConfig{});
        chaos_bank_cell<stm::OrecAdapter>(std::string("orec/") + spec, spec,
                                          OrecConfig{});
        arm_chaos_sites();
        StmConfig lsa;
        lsa.max_versions = 1;  // keep the copier oracle decisive
        chaos_copier_cell<stm::LsaAdapter>(std::string("lsa/") + spec, spec,
                                            lsa);
        chaos_copier_cell<stm::OrecAdapter>(std::string("orec/") + spec, spec,
                                            OrecConfig{});
    }
    fp::reset();

    chaos_abort_storm_cell<stm::LsaAdapter>(StmConfig{});
    chaos_abort_storm_cell<stm::OrecAdapter>(OrecConfig{});
    chaos_throws_without_ladder<stm::LsaAdapter>("lsa", StmConfig{});
    chaos_throws_without_ladder<stm::OrecAdapter>("orec", OrecConfig{});

    CHECK(fp::total_faults() > 0);  // the harness actually injected faults
    std::printf("test_stm_chaos: PASS\n");
    return 0;
}

#endif  // CHRONOSTM_FAILPOINTS
