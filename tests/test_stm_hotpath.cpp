// Tier-1: the hot-path data structures behind the pooled transaction sets
// -- write-set lookup across the inline-scan -> hash-index threshold
// (detail::kInlineScan), write-after-write overwrite semantics,
// read-after-read dedup, commit-time validation through the sorted write
// set, and set reuse across transactions (the structures are recycled, so
// a stale entry leaking across attempts would show up here). Plus the
// batched-counter time base: block-local stamp arithmetic and snapshot
// correctness under concurrent commits with deliberately tiny blocks.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <chronostm/core/lsa_stm.hpp>
#include <chronostm/timebase/batched_counter.hpp>
#include <chronostm/timebase/shared_counter.hpp>
#include <chronostm/util/rng.hpp>

#include "test_util.hpp"

using namespace chronostm;

namespace {

using Tx = Transaction;

// Comfortably past detail::kInlineScan (8) so every lookup below runs on
// the hash index, not the inline scan.
constexpr int kManyVars = 40;

void check_write_set_past_threshold() {
    LsaStm stm(tb::make("shared"));
    std::vector<std::unique_ptr<TVar<long>>> vars;
    for (int i = 0; i < kManyVars; ++i)
        vars.push_back(std::make_unique<TVar<long>>(0));

    auto ctx = stm.make_context();
    ctx.run([&](Tx& tx) {
        // First pass writes i, crossing the inline->hash threshold mid-way.
        for (int i = 0; i < kManyVars; ++i)
            vars[i]->set(tx, static_cast<long>(i));
        // Read-after-write must come from the write set on both sides of
        // the threshold.
        for (int i = 0; i < kManyVars; ++i)
            CHECK_MSG(vars[i]->get(tx) == i, "read-after-write var %d", i);
        // Write-after-write overwrites in place: the set must not grow.
        for (int i = 0; i < kManyVars; ++i)
            vars[i]->set(tx, static_cast<long>(100 + i));
        CHECK_MSG(tx.write_set_size() == static_cast<std::size_t>(kManyVars),
                  "write-after-write grew the set to %zu",
                  tx.write_set_size());
        // Reads of written vars never enter the read set.
        CHECK_MSG(tx.read_set_size() == 0, "read set holds %zu entries",
                  tx.read_set_size());
        for (int i = 0; i < kManyVars; ++i)
            CHECK_MSG(vars[i]->get(tx) == 100 + i, "overwrite var %d", i);
    });
    for (int i = 0; i < kManyVars; ++i)
        CHECK_MSG(vars[i]->unsafe_peek() == 100 + i, "committed var %d", i);
}

void check_read_dedup() {
    LsaStm stm(tb::make("shared"));
    std::vector<std::unique_ptr<TVar<long>>> vars;
    for (int i = 0; i < kManyVars; ++i)
        vars.push_back(std::make_unique<TVar<long>>(7));

    auto ctx = stm.make_context();
    // One var read many times collapses to one entry.
    ctx.run([&](Tx& tx) {
        long s = 0;
        for (int i = 0; i < 100; ++i) s += vars[0]->get(tx);
        CHECK(s == 700);
        CHECK_MSG(tx.read_set_size() == 1, "dup reads grew set to %zu",
                  tx.read_set_size());
    });
    // Distinct vars each get exactly one entry, re-reads add none --
    // including past the inline threshold.
    ctx.run([&](Tx& tx) {
        for (int round = 0; round < 3; ++round)
            for (auto& v : vars) CHECK(v->get(tx) == 7);
        CHECK_MSG(tx.read_set_size() == static_cast<std::size_t>(kManyVars),
                  "expected %d entries, got %zu", kManyVars,
                  tx.read_set_size());
    });
    // Sets are pooled per context: a fresh transaction starts empty.
    ctx.run([&](Tx& tx) {
        CHECK(tx.read_set_size() == 0);
        CHECK(tx.write_set_size() == 0);
        CHECK(vars[1]->get(tx) == 7);
        CHECK(tx.read_set_size() == 1);
    });
}

// Update transactions that read every var they write, with write sets well
// past the threshold: commit-time validation takes the locked-by-us branch
// and resolves it through the sorted write set. Concurrency makes the
// cross-checks meaningful (torn commits would break conservation).
void check_large_update_txns_concurrent() {
    LsaStm stm(tb::make("shared"));
    constexpr int kAccounts = 24;
    constexpr int kTouch = 12;  // > kInlineScan
    constexpr int kThreads = 4;
    constexpr int kTxPerThread = 800;
    constexpr long kInitial = 1000;
    std::vector<std::unique_ptr<TVar<long>>> acct;
    for (int i = 0; i < kAccounts; ++i)
        acct.push_back(std::make_unique<TVar<long>>(kInitial));

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            auto ctx = stm.make_context();
            Rng rng(t * 733 + 3);
            for (int i = 0; i < kTxPerThread; ++i) {
                unsigned first = rng.below(kAccounts);
                ctx.run([&](Tx& tx) {
                    // Shift 1 unit along a ring of kTouch accounts: sum
                    // conserved iff the whole write set commits atomically.
                    for (int k = 0; k < kTouch; ++k) {
                        const auto a = (first + k) % kAccounts;
                        const auto b = (first + k + 1) % kAccounts;
                        acct[a]->set(tx, acct[a]->get(tx) - 1);
                        acct[b]->set(tx, acct[b]->get(tx) + 1);
                    }
                });
            }
        });
    }
    for (auto& th : threads) th.join();

    long total = 0;
    for (const auto& a : acct) total += a->unsafe_peek();
    CHECK_MSG(total == kInitial * kAccounts, "total %ld", total);
    CHECK(stm.collected_stats().commits() ==
          static_cast<std::uint64_t>(kThreads) * kTxPerThread);
}

// Word-sized TVars embed their version ring in the var itself; payloads
// wider than a granule keep the lazily heap-allocated ring. TVar<long>
// tests above cover the embedded path, so this covers the heap path:
// a 16-byte payload under concurrent update/read must never tear and the
// lazy ring must allocate safely under racing first commits.
struct WidePair {
    long a;
    long b;
};

void check_wide_tvar_payload() {
    static_assert(sizeof(WidePair) > 8, "must take the heap-history path");
    LsaStm stm(tb::make("shared"));
    constexpr long kTotal = 100;
    TVar<WidePair> v(WidePair{kTotal / 2, kTotal / 2});

    std::atomic<bool> stop{false};
    std::atomic<int> violations{0};
    std::vector<std::thread> threads;
    for (int w = 0; w < 2; ++w) {
        threads.emplace_back([&, w] {
            auto ctx = stm.make_context();
            Rng rng(w * 41 + 3);
            while (!stop.load(std::memory_order_acquire)) {
                const long amt = static_cast<long>(rng.below(7)) + 1;
                ctx.run([&](Tx& tx) {
                    WidePair p = v.get(tx);
                    p.a -= amt;
                    p.b += amt;
                    v.set(tx, p);
                });
            }
        });
    }
    for (int r = 0; r < 2; ++r) {
        threads.emplace_back([&] {
            auto ctx = stm.make_context();
            while (!stop.load(std::memory_order_acquire)) {
                ctx.run([&](Tx& tx) {
                    const WidePair p = v.get(tx);
                    if (p.a + p.b != kTotal)
                        violations.fetch_add(1, std::memory_order_relaxed);
                });
            }
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    stop.store(true, std::memory_order_release);
    for (auto& th : threads) th.join();

    CHECK_MSG(violations.load() == 0, "%d torn wide reads",
              violations.load());
    const WidePair fin = v.unsafe_peek();
    CHECK(fin.a + fin.b == kTotal);
}

void check_batched_counter_stamps() {
    tb::BatchedCounterTimeBase tbase(8);
    CHECK(tbase.block_size() == 8);
    // Centered-clock convention: published deviation is ceil(B/2), so the
    // core's pairwise 2x shrink covers the one-sided lag of up to B-1.
    CHECK(tbase.deviation() == 4);
    auto c1 = tbase.make_thread_clock();
    auto c2 = tbase.make_thread_clock();
    // Stamps from one clock are strictly increasing; blocks from two
    // clocks never collide.
    std::uint64_t prev = 0;
    for (int i = 0; i < 40; ++i) {
        // A fresh stamp lags the counter observed just before drawing it
        // by less than the block size (the freshness reload's guarantee;
        // the counter may of course move past the stamp again afterwards).
        const auto now = c1.get_time();
        const auto a = c1.get_new_ts();
        const auto b = c2.get_new_ts();
        CHECK_MSG(a > prev, "stamp %llu not increasing",
                  static_cast<unsigned long long>(a));
        prev = a;
        CHECK_MSG(a != b, "clocks collided on %llu",
                  static_cast<unsigned long long>(a));
        CHECK(now < a + tbase.block_size());
    }
}

// Snapshot correctness over the batched counter with deliberately tiny
// blocks (stale-stamp refetches and deviation-shrunk validity ranges both
// trigger constantly): writers keep an invariant, in-transaction readers
// must never see it broken.
void check_batched_counter_snapshots() {
    using BTx = Transaction;
    tb::BatchedCounterTimeBase tbase(4);
    LsaStm stm(tb::TimeBase::wrap(tbase));
    constexpr long kTotal = 600;
    TVar<long> a(kTotal / 2), b(kTotal / 2);

    std::atomic<bool> stop{false};
    std::atomic<int> violations{0};
    std::atomic<std::uint64_t> reader_txns{0};
    std::vector<std::thread> threads;
    for (int w = 0; w < 2; ++w) {
        threads.emplace_back([&, w] {
            auto ctx = stm.make_context();
            Rng rng(w * 19 + 1);
            while (!stop.load(std::memory_order_acquire)) {
                const long amt = static_cast<long>(rng.below(9)) + 1;
                ctx.run([&](BTx& tx) {
                    a.set(tx, a.get(tx) - amt);
                    b.set(tx, b.get(tx) + amt);
                });
            }
        });
    }
    for (int r = 0; r < 2; ++r) {
        threads.emplace_back([&] {
            auto ctx = stm.make_context();
            while (!stop.load(std::memory_order_acquire)) {
                ctx.run([&](BTx& tx) {
                    const long a1 = a.get(tx);
                    const long b1 = b.get(tx);
                    const long a2 = a.get(tx);  // dedup'd re-read
                    if (a1 + b1 != kTotal || a1 != a2)
                        violations.fetch_add(1, std::memory_order_relaxed);
                });
                reader_txns.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    stop.store(true, std::memory_order_release);
    for (auto& th : threads) th.join();

    CHECK_MSG(violations.load() == 0, "%d snapshot violations",
              violations.load());
    CHECK(reader_txns.load() > 0);
    CHECK(a.unsafe_peek() + b.unsafe_peek() == kTotal);
}

}  // namespace

int main() {
    check_write_set_past_threshold();
    check_read_dedup();
    check_large_update_txns_concurrent();
    check_wide_tvar_payload();
    check_batched_counter_stamps();
    check_batched_counter_snapshots();
    std::printf("test_stm_hotpath: PASS\n");
    return 0;
}
