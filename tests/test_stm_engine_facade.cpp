// Tier-1: the type-erased stm::Engine facade and its string-keyed
// registry (stm::make). Covers:
//
//   * registry grammar: case-insensitive names/keys, later-key-wins,
//     comma-separated spec lists, loud failures on unknown names/keys
//   * config plumbing: engine-specific keys and the CommonConfig keys
//     shared by every engine land in the concrete adapter's config
//   * the slot data plane (size/align/init/peek/destroy/dtor) and the
//     run/load/store control plane for ALL five engines
//   * get_if<> / visit escape hatches
//   * atomicity through the facade: a multi-threaded counter and a
//     forced-abort retry, per engine
//
// CHRONOSTM_TIMEBASE adds time-base specs for the lsa/orec engines so
// the CI matrix exercises the facade over every clock construction.

#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include <chronostm/stm/facade.hpp>

#include "test_util.hpp"

using namespace chronostm;

namespace {

template <typename F>
void expect_invalid(F&& f, const char* needle) {
    bool threw = false;
    try {
        f();
    } catch (const std::invalid_argument& e) {
        threw = true;
        CHECK_MSG(std::strstr(e.what(), needle) != nullptr,
                  "message '%s' lacks '%s'", e.what(), needle);
    }
    CHECK_MSG(threw, "expected std::invalid_argument containing '%s'",
              needle);
}

void check_registry_grammar() {
    // Names and aliases, case-insensitively.
    CHECK(stm::make("lsa").name() == "lsa");
    CHECK(stm::make("LSA").name() == "lsa");
    CHECK(stm::make("Orec:BITS=9").name() == "orec");
    CHECK(stm::make("tl2").name() == "tl2");
    CHECK(stm::make("vstm").name() == "vstm");
    CHECK(stm::make("glock").name() == "glock");
    CHECK(stm::make("GlobalLock").name() == "glock");
    CHECK(stm::make("lock").name() == "glock");
    CHECK(stm::make("lsa").kind() == stm::EngineKind::kLsa);
    CHECK(stm::make("glock").kind() == stm::EngineKind::kGlock);

    // The spec string round-trips for row labels.
    CHECK(stm::make("orec:bits=9").spec() == "orec:bits=9");

    // Unknown engine / unknown key / malformed values fail loudly.
    expect_invalid([] { stm::make("bocs"); }, "unknown engine");
    expect_invalid([] { stm::make("bocs"); }, "lsa");  // lists known names
    expect_invalid([] { stm::make("lsa:bogus=1"); }, "unknown key");
    expect_invalid([] { stm::make("glock:bits=4"); }, "unknown key");
    expect_invalid([] { stm::make("vstm:heuristic=maybe"); }, "on/off");
    expect_invalid([] { stm::make("lsa:versions"); }, "key=value");

    // Comma-separated lists: a comma followed by key=value extends the
    // preceding spec, otherwise it starts a new one.
    const auto specs =
        stm::split_engine_specs("lsa,orec:bits=10,writeback=eager,glock");
    CHECK(specs.size() == 3);
    CHECK(specs[0] == "lsa");
    CHECK(specs[1] == "orec:bits=10,writeback=eager");
    CHECK(specs[2] == "glock");
    CHECK(stm::parse_engine_spec(specs[1]).name == "orec");

    // Every registry entry's own example spec must construct.
    for (const auto& k : stm::known_engines())
        CHECK_MSG(stm::make(k.example).valid(), "example '%s'", k.example);
}

void check_config_plumbing() {
    // Engine-specific keys land in the concrete config (get_if hatch).
    {
        stm::Engine e =
            stm::make("lsa:versions=4,cm=Karma,help=off,irrev=32,filter=off");
        auto* a = stm::get_if<stm::LsaAdapter>(e);
        CHECK(a != nullptr);
        CHECK(stm::get_if<stm::OrecAdapter>(e) == nullptr);
        const StmConfig& c = a->stm().config();
        CHECK(c.max_versions == 4);
        CHECK(c.contention_manager == "karma");
        CHECK(!c.help_committers);
        CHECK(c.irrevocable_threshold == 32);
        CHECK(!c.epoch_filter);
    }
    // Later occurrences of a key override earlier ones (drivers append
    // sweep keys to user specs and rely on this).
    {
        stm::Engine e = stm::make("orec:bits=10,bits=12,writeback=eager");
        auto* a = stm::get_if<stm::OrecAdapter>(e);
        CHECK(a != nullptr);
        CHECK(a->stm().config().table_bits == 12);
        CHECK(!a->stm().config().batched_writeback);
        CHECK(stm::get_if<stm::OrecAdapter>(stm::make("orec:writeback=batched"))
                  ->stm()
                  .config()
                  .batched_writeback);
    }
    // The CommonConfig keys parse on EVERY engine, including ones that
    // ignore most of them (a shared sweep flag must not explode on the
    // baselines).
    for (const char* name : {"lsa", "orec", "tl2", "vstm", "glock"}) {
        const std::string spec =
            std::string(name) +
            ":spin=128,retries=10000,irrev=32,filter=off,ext=on,"
            "stallspin=2,stallts=8";
        CHECK_MSG(stm::make(spec).valid(), "common keys on '%s'", name);
    }
    // Common keys reach the lsa/orec configs.
    {
        stm::Engine e = stm::make("lsa:spin=77,stallspin=3,stallts=9,ext=off");
        const StmConfig& c = stm::get_if<stm::LsaAdapter>(e)->stm().config();
        CHECK(c.lock_spin == 77);
        CHECK(c.stall_spin_factor == 3);
        CHECK(c.stall_ts_budget == 9);
        CHECK(!c.read_extension);
    }
}

// One engine, full data/control plane: raw slots + transactions through
// the type-erased Txn, then a concrete-adapter pass via visit() to show
// both paths see the same memory.
void check_engine_roundtrip(const stm::Engine& eng) {
    const std::size_t kSlots = 16;
    const std::size_t stride = eng.slot_size();
    CHECK(stride >= sizeof(std::uint64_t));
    CHECK(eng.slot_align() >= alignof(std::uint64_t));
    void* mem = ::operator new(kSlots * stride,
                               std::align_val_t(eng.slot_align()));
    const auto slot = [&](std::size_t i) {
        return static_cast<void*>(static_cast<char*>(mem) + i * stride);
    };
    for (std::size_t i = 0; i < kSlots; ++i)
        eng.slot_init(slot(i), 100 + i);
    for (std::size_t i = 0; i < kSlots; ++i)
        CHECK(eng.slot_peek(slot(i)) == 100 + i);

    stm::Context ctx = eng.make_context();
    CHECK(ctx.kind() == eng.kind());

    // run() passes the functor's return value through.
    const std::uint64_t sum = eng.run(ctx, [&](stm::Txn& tx) {
        CHECK(tx.kind() == eng.kind());
        CHECK(tx.raw() != nullptr);
        std::uint64_t s = 0;
        for (std::size_t i = 0; i < kSlots; ++i) s += tx.load(slot(i));
        return s;
    });
    CHECK(sum == (100 + 100 + kSlots - 1) * kSlots / 2);

    eng.run(ctx, [&](stm::Txn& tx) {
        for (std::size_t i = 0; i < kSlots; ++i)
            tx.store(slot(i), tx.load(slot(i)) + 1);
    });
    for (std::size_t i = 0; i < kSlots; ++i)
        CHECK(eng.slot_peek(slot(i)) == 101 + i);

    // A forced abort on the first attempt retries the functor. The
    // optimistic engines buffer writes, so the doomed attempt's store
    // vanishes; the big-lock baseline writes in place and a user abort
    // only retries -- its doomed store sticks (documented contract).
    int attempts = 0;
    eng.run(ctx, [&](stm::Txn& tx) {
        tx.store(slot(0), tx.load(slot(0)) + 1);
        if (attempts++ == 0) tx.abort();
    });
    CHECK(attempts == 2);
    const std::uint64_t expected =
        eng.kind() == stm::EngineKind::kGlock ? 103 : 102;
    CHECK(eng.slot_peek(slot(0)) == expected);

    // visit() hands out the concrete adapter; it is the same object the
    // facade dispatches into, so its commits land in the same counters.
    stm::visit(eng, [&](auto& adapter) {
        CHECK(static_cast<void*>(&adapter) == eng.raw());
        auto c = adapter.make_context();
        adapter.run(c, [&](auto&) {});
    });

    const TxStats stats = eng.collected_stats();
    CHECK_MSG(stats.commits() >= 4, "engine %s commits %llu",
              eng.name().c_str(),
              static_cast<unsigned long long>(stats.commits()));
    CHECK(ctx.stats().commits() >= 3);

    for (std::size_t i = 0; i < kSlots; ++i) {
        // Exercise both destructor spellings.
        if (i % 2 == 0)
            eng.slot_destroy(slot(i));
        else
            eng.slot_dtor()(slot(i));
    }
    ::operator delete(mem, std::align_val_t(eng.slot_align()));
}

// Counter hammered from several threads through the facade: the committed
// total must equal the submitted total on every engine.
void check_facade_atomicity(const stm::Engine& eng) {
    const unsigned kThreads = 4;
    const unsigned kIncrements = 2000;
    void* mem = ::operator new(eng.slot_size(),
                               std::align_val_t(eng.slot_align()));
    eng.slot_init(mem, 0);
    std::vector<std::thread> ts;
    for (unsigned t = 0; t < kThreads; ++t) {
        ts.emplace_back([&] {
            stm::Context ctx = eng.make_context();
            for (unsigned i = 0; i < kIncrements; ++i)
                eng.run(ctx, [&](stm::Txn& tx) {
                    tx.store(mem, tx.load(mem) + 1);
                });
        });
    }
    for (auto& t : ts) t.join();
    CHECK_MSG(eng.slot_peek(mem) == kThreads * kIncrements,
              "engine %s counter %llu", eng.name().c_str(),
              static_cast<unsigned long long>(eng.slot_peek(mem)));
    CHECK(eng.collected_stats().commits() >= kThreads * kIncrements);
    eng.slot_destroy(mem);
    ::operator delete(mem, std::align_val_t(eng.slot_align()));
}

}  // namespace

int main() {
    check_registry_grammar();
    check_config_plumbing();

    for (const char* spec : {"lsa", "orec", "tl2", "vstm", "glock"}) {
        check_engine_roundtrip(stm::make(spec));
        check_facade_atomicity(stm::make(spec));
    }

    // The two-arg make threads an explicit time base into the time-based
    // engines; CHRONOSTM_TIMEBASE sweeps the CI matrix specs through it.
    std::vector<std::string> tb_specs = {"shared"};
    if (const char* env = std::getenv("CHRONOSTM_TIMEBASE"))
        for (const auto& s : tb::split_specs(env)) tb_specs.push_back(s);
    for (const auto& tbs : tb_specs) {
        check_facade_atomicity(stm::make("lsa", tb::make(tbs)));
        check_facade_atomicity(stm::make("orec:bits=12", tb::make(tbs)));
    }

    std::printf("test_stm_engine_facade: all checks passed\n");
    return 0;
}
