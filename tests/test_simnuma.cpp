// Tier-1 tests for the ccNUMA machine model (simnuma/machine.hpp): the
// simulation must be deterministic per seed, its event clocks must be
// physically sane, and it must reproduce the Figure-2 cost structure --
// shared-counter throughput saturates and never recovers past the
// saturation point, while the local-timer curve is monotone in P. The
// sharded-counter clock-domain model must additionally push its
// saturation point right as domains are added (the property fig2_sim's
// --domains sweep gates in CI).

#include <cstdio>
#include <vector>

#include <chronostm/simnuma/machine.hpp>

#include "test_util.hpp"

using namespace chronostm;

namespace {

sim::MachineConfig base_config(unsigned processors, sim::SimTimeBase tb,
                               std::uint64_t seed) {
    sim::MachineConfig cfg;  // driver defaults: Altix-class calibration
    cfg.processors = processors;
    cfg.txn_accesses = 10;
    cfg.duration_ms = 10.0;
    cfg.seed = seed;
    cfg.time_base = tb;
    return cfg;
}

std::vector<sim::MachineResult> run_sweep(sim::SimTimeBase tb,
                                          std::uint64_t seed) {
    std::vector<sim::MachineResult> out;
    for (const unsigned p : {1u, 2u, 4u, 8u, 16u})
        out.push_back(sim::simulate_machine(base_config(p, tb, seed)));
    return out;
}

void check_determinism() {
    for (const auto tb :
         {sim::SimTimeBase::SharedCounter, sim::SimTimeBase::LocalTimer,
          sim::SimTimeBase::ShardedCounter}) {
        const auto a = run_sweep(tb, 7);
        const auto b = run_sweep(tb, 7);
        CHECK(a.size() == b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            // Same seed => bit-identical sweep, doubles included.
            CHECK(a[i].committed_txns == b[i].committed_txns);
            CHECK(a[i].mtx_per_sec == b[i].mtx_per_sec);
            CHECK(a[i].line_busy_ns == b[i].line_busy_ns);
            CHECK(a[i].proc_clock_ns == b[i].proc_clock_ns);
            CHECK(a[i].per_proc_commits == b[i].per_proc_commits);
        }
    }
    // Distinct seeds must perturb the interleaving somewhere in the sweep
    // (the jitter stream is the only randomness).
    const auto s1 = run_sweep(sim::SimTimeBase::SharedCounter, 7);
    const auto s2 = run_sweep(sim::SimTimeBase::SharedCounter, 8);
    bool differs = false;
    for (std::size_t i = 0; i < s1.size(); ++i)
        differs = differs || s1[i].proc_clock_ns != s2[i].proc_clock_ns;
    CHECK(differs);
}

void check_event_clocks() {
    for (const auto tb :
         {sim::SimTimeBase::SharedCounter, sim::SimTimeBase::LocalTimer,
          sim::SimTimeBase::ShardedCounter}) {
        for (const unsigned p : {1u, 3u, 16u}) {
            const auto cfg = base_config(p, tb, 3);
            const auto res = sim::simulate_machine(cfg);
            CHECK(res.clocks_monotone);
            CHECK(res.proc_clock_ns.size() == p);
            const double horizon = cfg.duration_ms * 1e6;
            std::uint64_t total = 0;
            for (unsigned i = 0; i < p; ++i) {
                // Every processor ran through the whole window and stopped
                // at its first commit past the horizon.
                CHECK_MSG(res.proc_clock_ns[i] > horizon, "proc %u clock %.1f",
                          i, res.proc_clock_ns[i]);
                CHECK(res.per_proc_commits[i] > 0);
                total += res.per_proc_commits[i];
            }
            CHECK(total == res.committed_txns);
            if (tb == sim::SimTimeBase::SharedCounter) {
                // The line is a physical resource: utilization over the
                // window cannot exceed 1 (post-horizon drain grants are
                // clamped out of line_busy_ns).
                CHECK(res.line_busy_ns <= horizon);
                if (p == 1) CHECK(res.line_remote_transfers <= 1);
            }
        }
    }
}

void check_figure2_shape() {
    for (const unsigned accesses : {10u, 50u, 100u}) {
        std::vector<double> counter, timer;
        std::vector<unsigned> procs = {1u, 2u, 4u, 8u, 16u};
        for (const unsigned p : procs) {
            auto cfg = base_config(p, sim::SimTimeBase::SharedCounter, 11);
            cfg.txn_accesses = accesses;
            counter.push_back(sim::simulate_machine(cfg).mtx_per_sec);
            cfg.time_base = sim::SimTimeBase::LocalTimer;
            timer.push_back(sim::simulate_machine(cfg).mtx_per_sec);
        }
        // Timer: embarrassingly parallel, so each doubling of P must
        // scale throughput near-linearly (>1.5x per step is a loose
        // floor on ~2x; the sweep points are consecutive doublings).
        for (std::size_t i = 1; i < timer.size(); ++i)
            CHECK_MSG(timer[i] > timer[i - 1] * 1.5,
                      "accesses=%u timer %.3f -> %.3f", accesses,
                      timer[i - 1], timer[i]);
        // Counter: find the saturation peak; throughput must be
        // non-increasing at every later point and strictly lower at 16.
        std::size_t peak = 0;
        for (std::size_t i = 1; i < counter.size(); ++i)
            if (counter[i] > counter[peak]) peak = i;
        CHECK_MSG(peak < counter.size() - 1, "accesses=%u peak at P=%u",
                  accesses, procs[peak]);
        for (std::size_t i = peak + 1; i < counter.size(); ++i)
            CHECK_MSG(counter[i] <= counter[i - 1] * 1.001,
                      "accesses=%u counter %.3f -> %.3f past saturation",
                      accesses, counter[i - 1], counter[i]);
        CHECK(counter.back() < counter[peak]);
        // The crossover the paper highlights: timer wins at 16 in every
        // panel; the counter keeps only the single-thread short-txn case.
        CHECK(timer.back() > counter.back());
        if (accesses == 10) CHECK(counter.front() > timer.front());
    }
}

// Clock domains: per-domain counter lines split the commit load and
// shrink the transfer diameter, so adding domains never hurts at machine
// scale and the saturation point moves right monotonically.
void check_clock_domains() {
    const std::vector<unsigned> procs = {1u, 2u, 4u, 8u, 16u};
    std::vector<std::size_t> peaks;
    std::vector<double> at16;
    for (const unsigned d : {1u, 2u, 4u, 8u}) {
        std::vector<double> series;
        for (const unsigned p : procs) {
            auto cfg = base_config(p, sim::SimTimeBase::ShardedCounter, 5);
            cfg.clock_domains = d;
            const auto r = sim::simulate_machine(cfg);
            CHECK(r.clocks_monotone);
            series.push_back(r.mtx_per_sec);
        }
        std::size_t peak = 0;
        for (std::size_t i = 1; i < series.size(); ++i)
            if (series[i] > series[peak]) peak = i;
        peaks.push_back(peak);
        at16.push_back(series.back());
    }
    for (std::size_t i = 1; i < peaks.size(); ++i) {
        CHECK_MSG(peaks[i] >= peaks[i - 1],
                  "saturation moved left: D index %zu peak %zu -> %zu", i,
                  peaks[i - 1], peaks[i]);
        CHECK_MSG(at16[i] >= at16[i - 1] * 0.999,
                  "more domains lost throughput at 16P: %.3f -> %.3f",
                  at16[i - 1], at16[i]);
    }
    CHECK(peaks.back() > peaks.front());
    // One domain serves every processor through one line: a single
    // processor pays at most the initial cold transfer.
    auto cfg = base_config(1, sim::SimTimeBase::ShardedCounter, 5);
    cfg.clock_domains = 4;  // clamped to 1 processor internally
    const auto r = sim::simulate_machine(cfg);
    CHECK(r.line_remote_transfers <= 2);  // domain line + watermark line
    CHECK(r.committed_txns > 0);
}

}  // namespace

int main() {
    check_determinism();
    check_event_clocks();
    check_figure2_shape();
    check_clock_domains();
    std::printf("test_simnuma: OK\n");
    return 0;
}
