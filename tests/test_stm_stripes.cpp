// Tier-1: the STRIPED commit-epoch filter (PR 10). The engine-global
// epoch word is sharded into cache-line-padded stripes keyed by an
// address-range hash; writers bump only the stripes their write set
// covers and readers compare only the stripes their read set touched.
// These tests pin the stripe-specific behavior:
//
//   * geometry: power-of-two rounding, [1,64] clamping, and the orec
//     engine's table-derived shift (stripe count capped at table size)
//   * the tentpole workload: a writer committing OUTSIDE the reader's
//     stripes must leave the O(1) extension fast hit intact at the
//     default striping, while stripes=1 (the PR 7 single word) must drop
//     the same extension to the O(R) walk
//   * aliasing soundness direction: two vars forced into ONE stripe make
//     a disjoint-var writer cause a spurious walk -- never a stale fast
//     hit -- and the reader still sees consistent values
//   * stripes=1 equivalence: the exact PR 7 counter values (validation
//     fast hits, epoch bumps, and the new stripe counters mirroring the
//     old fast-hit/walk split)
//   * commit-time validation across interleaved committers in different
//     stripes stays on the fast path at the default striping and walks
//     at stripes=1
//   * filter off: the stripe counters never move
//   * the stm::make() registry accepts stripes= as a common key
//
// Var placement: a 16KiB-aligned static buffer; offset 64 shares the
// base's stripe (same 16KiB block), offset 32KiB is two stripes away at
// the default shift for BOTH engines (LSA shift 14; orec shift
// 4 + 16 - 6 = 14). The tests still assert the stripe relation through
// filter_stripe_of() rather than trusting the arithmetic.

#include <cstdint>
#include <new>
#include <stdexcept>
#include <string>

#include <chronostm/core/lsa_stm.hpp>
#include <chronostm/core/orec_stm.hpp>
#include <chronostm/stm/facade.hpp>

#include "test_util.hpp"

using namespace chronostm;

namespace {

using Tx = Transaction;

constexpr std::size_t kBlock = 16 * 1024;
alignas(16384) unsigned char lsa_buf[3 * kBlock];
alignas(16384) unsigned char orec_buf[3 * kBlock];

void check_geometry() {
    {
        StmConfig cfg;
        cfg.filter_stripes = 3;  // rounds up
        LsaStm stm(tb::make("shared"), cfg);
        CHECK(stm.filter_stripes() == 4);
        CHECK(stm.config().filter_stripes == 4);
    }
    {
        StmConfig cfg;
        cfg.filter_stripes = 0;  // clamps up to 1
        LsaStm stm(tb::make("shared"), cfg);
        CHECK(stm.filter_stripes() == 1);
    }
    {
        StmConfig cfg;
        cfg.filter_stripes = 100;  // clamps down to the signature width
        LsaStm stm(tb::make("shared"), cfg);
        CHECK(stm.filter_stripes() == 64);
    }
    {
        // A 16-entry orec table cannot carry 64 stripes: the count is
        // capped at the table size so a stripe never spans less than one
        // orec.
        OrecConfig cfg;
        cfg.table_bits = 4;
        cfg.filter_stripes = 64;
        OrecStm stm(tb::make("shared"), cfg);
        CHECK(stm.filter_stripes() == 16);
        CHECK(stm.config().filter_stripes == 16);
    }
}

// The workload the striping exists for: a reader extending over vars the
// writer never touches. At the default striping the writer's bump lands
// outside the reader's signature (O(1) fast hit); at stripes=1 every
// bump is "the" stripe and the reader walks.
void disjoint_writer_cell_lsa(unsigned stripes, bool expect_fast) {
    StmConfig cfg;
    cfg.filter_stripes = stripes;
    LsaStm stm(tb::make("shared"), cfg);
    auto* a = new (lsa_buf) TVar<long>(1);
    auto* b = new (lsa_buf + 2 * kBlock) TVar<long>(10);
    if (stripes > 1)
        CHECK(stm.filter_stripe_of(a) != stm.filter_stripe_of(b));

    auto rctx = stm.make_context();
    auto wctx = stm.make_context();
    Transaction tx = rctx.txn_begin();
    CHECK(a->get(tx) == 1);
    wctx.run([&](Tx& t) { b->set(t, 11); });  // disjoint writer
    CHECK(tx.try_extend_now());
    CHECK(rctx.txn_commit(tx));

    const auto st = rctx.stats();
    if (expect_fast) {
        CHECK_MSG(st.extension_fast_hits >= 1 && st.stripe_walks == 0,
                  "stripes=%u: fast hits %llu walks %llu", stripes,
                  static_cast<unsigned long long>(st.extension_fast_hits),
                  static_cast<unsigned long long>(st.stripe_walks));
        CHECK(st.stripe_fast_hits >= 1);
    } else {
        CHECK_MSG(st.stripe_walks >= 1 && st.extension_fast_hits == 0,
                  "stripes=%u: expected a walk, fast hits %llu", stripes,
                  static_cast<unsigned long long>(st.extension_fast_hits));
    }
    b->~TVar<long>();
    a->~TVar<long>();
}

void disjoint_writer_cell_orec(unsigned stripes, bool expect_fast) {
    OrecConfig cfg;
    cfg.filter_stripes = stripes;
    OrecStm stm(tb::make("shared"), cfg);
    auto* a = new (orec_buf) WordVar<long>(1);
    auto* b = new (orec_buf + 2 * kBlock) WordVar<long>(10);
    if (stripes > 1)
        CHECK(stm.filter_stripe_of(a) != stm.filter_stripe_of(b));

    auto rctx = stm.make_context();
    auto wctx = stm.make_context();
    OrecTransaction tx = rctx.txn_begin();
    CHECK(a->get(tx) == 1);
    wctx.run([&](OrecTransaction& t) { b->set(t, 11); });
    CHECK(tx.try_extend_now());
    CHECK(rctx.txn_commit(tx));

    const auto st = rctx.stats();
    if (expect_fast) {
        CHECK_MSG(st.extension_fast_hits >= 1 && st.stripe_walks == 0,
                  "orec stripes=%u: fast hits %llu walks %llu", stripes,
                  static_cast<unsigned long long>(st.extension_fast_hits),
                  static_cast<unsigned long long>(st.stripe_walks));
        CHECK(st.stripe_fast_hits >= 1);
    } else {
        CHECK_MSG(st.stripe_walks >= 1 && st.extension_fast_hits == 0,
                  "orec stripes=%u: expected a walk, fast hits %llu",
                  stripes,
                  static_cast<unsigned long long>(st.extension_fast_hits));
    }
    b->~WordVar<long>();
    a->~WordVar<long>();
}

void check_disjoint_writer() {
    disjoint_writer_cell_lsa(64, /*expect_fast=*/true);
    disjoint_writer_cell_lsa(1, /*expect_fast=*/false);
    disjoint_writer_cell_orec(64, /*expect_fast=*/true);
    disjoint_writer_cell_orec(1, /*expect_fast=*/false);
}

// Aliasing direction: two DISTINCT vars in one stripe. The writer's bump
// aliases into the reader's signature, so the extension must take the
// spurious walk (stripe_walks moves) -- and because the vars really are
// distinct, the walk passes and the extension still succeeds with
// consistent values. A stale fast hit would show up as stripe_walks == 0
// here.
void check_alias_spurious_walk() {
    {
        StmConfig cfg;  // default 64 stripes
        LsaStm stm(tb::make("shared"), cfg);
        auto* a = new (lsa_buf) TVar<long>(1);
        auto* c = new (lsa_buf + 64) TVar<long>(2);  // same 16KiB block
        CHECK(stm.filter_stripe_of(a) == stm.filter_stripe_of(c));

        auto rctx = stm.make_context();
        auto wctx = stm.make_context();
        Transaction tx = rctx.txn_begin();
        CHECK(a->get(tx) == 1);
        wctx.run([&](Tx& t) { c->set(t, 7); });  // same stripe, other var
        CHECK(tx.try_extend_now());  // walk passes: a is untouched
        CHECK(a->get(tx) == 1);
        CHECK(rctx.txn_commit(tx));

        const auto st = rctx.stats();
        CHECK_MSG(st.stripe_walks >= 1, "lsa alias: %llu spurious walks",
                  static_cast<unsigned long long>(st.stripe_walks));
        CHECK(st.extension_fast_hits == 0);
        CHECK(rctx.run([&](Tx& t) { return c->get(t); }) == 7);
        c->~TVar<long>();
        a->~TVar<long>();
    }
    {
        OrecConfig cfg;
        OrecStm stm(tb::make("shared"), cfg);
        auto* a = new (orec_buf) WordVar<long>(1);
        auto* c = new (orec_buf + 64) WordVar<long>(2);
        CHECK(stm.filter_stripe_of(a) == stm.filter_stripe_of(c));

        auto rctx = stm.make_context();
        auto wctx = stm.make_context();
        OrecTransaction tx = rctx.txn_begin();
        CHECK(a->get(tx) == 1);
        wctx.run([&](OrecTransaction& t) { c->set(t, 7); });
        CHECK(tx.try_extend_now());
        CHECK(a->get(tx) == 1);
        CHECK(rctx.txn_commit(tx));

        const auto st = rctx.stats();
        CHECK_MSG(st.stripe_walks >= 1, "orec alias: %llu spurious walks",
                  static_cast<unsigned long long>(st.stripe_walks));
        CHECK(st.extension_fast_hits == 0);
        CHECK(rctx.run([&](OrecTransaction& t) { return c->get(t); }) == 7);
        c->~WordVar<long>();
        a->~WordVar<long>();
    }
}

// stripes=1 must reproduce the PR 7 filter exactly: the solo updater's
// counters from test_stm_epoch, plus the new stripe counters mirroring
// the fast-hit/walk split (every fast hit is a stripe fast hit, no
// walks).
void check_stripe1_equivalence() {
    {
        StmConfig cfg;
        cfg.filter_stripes = 1;
        LsaStm stm(tb::make("shared"), cfg);
        CHECK(stm.filter_stripes() == 1);
        TVar<long> v(0);
        auto ctx = stm.make_context();
        for (int i = 0; i < 3; ++i)
            ctx.run([&](Tx& tx) { v.set(tx, v.get(tx) + 1); });
        CHECK(v.unsafe_peek() == 3);
        const auto st = ctx.stats();
        CHECK(st.validation_fast_hits == 3);
        CHECK(st.stripe_fast_hits == 3);
        CHECK(st.stripe_walks == 0);
        CHECK(stm.commit_epoch() == 3);  // one bump per writer commit
    }
    {
        OrecConfig cfg;
        cfg.filter_stripes = 1;
        OrecStm stm(tb::make("shared"), cfg);
        CHECK(stm.filter_stripes() == 1);
        WordVar<long> v(5);
        auto ctx = stm.make_context();
        OrecTransaction tx = ctx.txn_begin();
        CHECK(v.get(tx) == 5);
        auto side = stm.time_base().make_thread_clock();
        side.get_new_ts();
        CHECK(tx.try_extend_now());
        CHECK(ctx.txn_commit(tx));
        const auto st = ctx.stats();
        CHECK(st.extension_fast_hits == 1);
        CHECK(st.stripe_fast_hits == 1);
        CHECK(st.stripe_walks == 0);
        CHECK(stm.commit_epoch() == 0);
    }
}

// Interleaved committers in different stripes: each one's read set never
// covers the other's write stripe, so BOTH commit-time validations stay
// on the fast path at the default striping; at stripes=1 the first
// opened transaction sees the other's bump and walks.
void check_interleaved_commit_validation() {
    const auto run_cell = [](unsigned stripes, bool expect_fast) {
        StmConfig cfg;
        cfg.filter_stripes = stripes;
        LsaStm stm(tb::make("shared"), cfg);
        auto* a = new (lsa_buf) TVar<long>(0);
        auto* b = new (lsa_buf + 2 * kBlock) TVar<long>(0);
        if (stripes > 1)
            CHECK(stm.filter_stripe_of(a) != stm.filter_stripe_of(b));

        auto ca = stm.make_context();
        auto cb = stm.make_context();
        Transaction ta = ca.txn_begin();
        const long va = a->get(ta);  // stripe snapshot before B commits
        Transaction tb = cb.txn_begin();
        b->set(tb, b->get(tb) + 1);
        CHECK(cb.txn_commit(tb));
        a->set(ta, va + 1);
        CHECK(ca.txn_commit(ta));

        const auto st = ca.stats();
        CHECK(st.commits() == 1);
        if (expect_fast) {
            CHECK_MSG(st.validation_fast_hits == 1 && st.stripe_walks == 0,
                      "stripes=%u: validation walked", stripes);
        } else {
            CHECK_MSG(st.validation_fast_hits == 0 && st.stripe_walks == 1,
                      "stripes=%u: validation did not walk", stripes);
        }
        CHECK(a->unsafe_peek() == 1);
        CHECK(b->unsafe_peek() == 1);
        b->~TVar<long>();
        a->~TVar<long>();
    };
    run_cell(64, /*expect_fast=*/true);
    run_cell(1, /*expect_fast=*/false);
}

// Filter off: the walk runs every time and the stripe counters must not
// move at all (they only account filtered decisions).
void check_filter_off_counters() {
    StmConfig cfg;
    cfg.epoch_filter = false;
    LsaStm stm(tb::make("shared"), cfg);
    auto* a = new (lsa_buf) TVar<long>(1);
    auto* b = new (lsa_buf + 2 * kBlock) TVar<long>(10);

    auto rctx = stm.make_context();
    auto wctx = stm.make_context();
    Transaction tx = rctx.txn_begin();
    CHECK(a->get(tx) == 1);
    wctx.run([&](Tx& t) { b->set(t, 11); });
    CHECK(tx.try_extend_now());
    CHECK(rctx.txn_commit(tx));

    const auto rs = rctx.stats();
    const auto ws = wctx.stats();
    CHECK(rs.extensions == 1 && rs.extension_fast_hits == 0);
    CHECK(rs.stripe_fast_hits == 0 && rs.stripe_walks == 0);
    CHECK(ws.stripe_fast_hits == 0 && ws.stripe_walks == 0);
    b->~TVar<long>();
    a->~TVar<long>();
}

// The registry grammar: stripes= is a common key on every engine spec.
void check_registry_key() {
    (void)stm::make("lsa:stripes=4");
    (void)stm::make("orec:stripes=1,bits=14");
    bool threw = false;
    try {
        (void)stm::make("lsa:stripez=4");
    } catch (const std::invalid_argument&) {
        threw = true;
    }
    CHECK_MSG(threw, "unknown key was not rejected (%d)", threw ? 1 : 0);
}

}  // namespace

int main() {
    check_geometry();
    check_disjoint_writer();
    check_alias_spurious_walk();
    check_stripe1_equivalence();
    check_interleaved_commit_validation();
    check_filter_off_counters();
    check_registry_key();
    std::printf("test_stm_stripes: PASS\n");
    return 0;
}
