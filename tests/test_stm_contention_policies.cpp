// Tier-1: every contention manager preserves atomicity and makes
// progress on a hot-spot transfer workload, kill-based managers included
// (aggressive/karma/timestamp abort the enemy cooperatively through its
// commit descriptor). Also checks the policy parser rejects typos at
// construction instead of misbehaving at runtime.

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include <chronostm/core/lsa_stm.hpp>
#include <chronostm/util/rng.hpp>

#include "test_util.hpp"

using namespace chronostm;

namespace {

using Tx = Transaction;

constexpr unsigned kThreads = 4;
constexpr int kAccounts = 8;  // tiny on purpose: every txn conflicts
constexpr long kInitial = 100;
constexpr int kTransfersPerThread = 800;

void check_policy(const char* policy) {
    StmConfig cfg;
    cfg.contention_manager = policy;
    LsaStm stm(tb::make("shared"), cfg);
    std::vector<std::unique_ptr<TVar<long>>> acct;
    for (int i = 0; i < kAccounts; ++i)
        acct.push_back(std::make_unique<TVar<long>>(kInitial));

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&stm, &acct, t] {
            auto ctx = stm.make_context();
            Rng rng(t * 7919 + 13);
            for (int i = 0; i < kTransfersPerThread; ++i) {
                const auto a = rng.below(kAccounts);
                auto b = rng.below(kAccounts);
                if (a == b) b = (b + 1) % kAccounts;
                const long amount = static_cast<long>(rng.below(5)) + 1;
                ctx.run([&](Tx& tx) {
                    acct[a]->set(tx, acct[a]->get(tx) - amount);
                    acct[b]->set(tx, acct[b]->get(tx) + amount);
                });
            }
        });
    }
    for (auto& th : threads) th.join();

    long total = 0;
    for (const auto& a : acct) total += a->unsafe_peek();
    CHECK_MSG(total == kInitial * kAccounts, "policy %s: total %ld", policy,
              total);
    const auto stats = stm.collected_stats();
    CHECK_MSG(stats.commits() ==
                  static_cast<std::uint64_t>(kThreads) * kTransfersPerThread,
              "policy %s: commits %llu", policy,
              static_cast<unsigned long long>(stats.commits()));
}

}  // namespace

int main() {
    for (const char* policy :
         {"suicide", "polite", "backoff", "aggressive", "karma", "timestamp"})
        check_policy(policy);

    bool threw = false;
    try {
        StmConfig cfg;
        cfg.contention_manager = "no-such-policy";
        LsaStm stm(tb::make("shared"), cfg);
    } catch (const std::invalid_argument&) {
        threw = true;
    }
    CHECK(threw);

    // The registry fails just as loudly on unknown base names and keys.
    threw = false;
    try {
        tb::make("no-such-base");
    } catch (const std::invalid_argument&) {
        threw = true;
    }
    CHECK(threw);
    threw = false;
    try {
        tb::make("batched:Q=7");
    } catch (const std::invalid_argument&) {
        threw = true;
    }
    CHECK(threw);

    std::printf("test_stm_contention_policies: PASS\n");
    return 0;
}
