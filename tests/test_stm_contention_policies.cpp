// Tier-1: every contention manager preserves atomicity and makes
// progress on a hot-spot transfer workload, kill-based managers included
// (aggressive/karma/timestamp abort the enemy cooperatively through its
// commit descriptor). Also checks the policy parser rejects typos at
// construction instead of misbehaving at runtime.

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include <chronostm/core/lsa_stm.hpp>
#include <chronostm/util/rng.hpp>

#include "test_util.hpp"

using namespace chronostm;

namespace {

using Tx = Transaction;

constexpr unsigned kThreads = 4;
constexpr int kAccounts = 8;  // tiny on purpose: every txn conflicts
constexpr long kInitial = 100;
constexpr int kTransfersPerThread = 800;

void check_policy(const char* policy) {
    StmConfig cfg;
    cfg.contention_manager = policy;
    LsaStm stm(tb::make("shared"), cfg);
    std::vector<std::unique_ptr<TVar<long>>> acct;
    for (int i = 0; i < kAccounts; ++i)
        acct.push_back(std::make_unique<TVar<long>>(kInitial));

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&stm, &acct, t] {
            auto ctx = stm.make_context();
            Rng rng(t * 7919 + 13);
            for (int i = 0; i < kTransfersPerThread; ++i) {
                const auto a = rng.below(kAccounts);
                auto b = rng.below(kAccounts);
                if (a == b) b = (b + 1) % kAccounts;
                const long amount = static_cast<long>(rng.below(5)) + 1;
                ctx.run([&](Tx& tx) {
                    acct[a]->set(tx, acct[a]->get(tx) - amount);
                    acct[b]->set(tx, acct[b]->get(tx) + amount);
                });
            }
        });
    }
    for (auto& th : threads) th.join();

    long total = 0;
    for (const auto& a : acct) total += a->unsafe_peek();
    CHECK_MSG(total == kInitial * kAccounts, "policy %s: total %ld", policy,
              total);
    const auto stats = stm.collected_stats();
    CHECK_MSG(stats.commits() ==
                  static_cast<std::uint64_t>(kThreads) * kTransfersPerThread,
              "policy %s: commits %llu", policy,
              static_cast<unsigned long long>(stats.commits()));
}

#ifdef CHRONOSTM_FAILPOINTS
// Kill-based managers against a PROVABLY stalled victim: a one-shot
// failpoint parks the victim inside commit with write locks held (status
// kTxLocking), exactly what a preempted committer looks like. The policy
// under test must land its cooperative kill on the parked descriptor --
// the victim wakes, finds kTxKilled, rolls back and retries -- while the
// attacker records the stall (stall_waits) and everything still conserves.
void check_stalled_kill(const char* policy) {
    StmConfig cfg;
    cfg.contention_manager = policy;
    LsaStm stm(tb::make("shared"), cfg);
    constexpr int kSpare = 6;  // uncontended accounts pad attacker karma
    std::vector<std::unique_ptr<TVar<long>>> acct;
    for (int i = 0; i < 2 + kSpare; ++i)
        acct.push_back(std::make_unique<TVar<long>>(kInitial));

    std::atomic<bool> attacker_started{false};
    std::atomic<bool> victim_parked{false};

    // Attacker first, so the timestamp policy sees the victim as YOUNGER
    // (kill the younger enemy); its padded footprint outweighs the
    // victim's 4-access karma; aggressive kills unconditionally.
    std::thread attacker([&] {
        auto ctx = stm.make_context();
        ctx.run([&](Tx& tx) {
            long pad = 0;
            for (int i = 0; i < kSpare; ++i) {
                pad += acct[2 + i]->get(tx);
                acct[2 + i]->set(tx, acct[2 + i]->get(tx));
            }
            (void)pad;
            if (!attacker_started.exchange(true))
                while (!victim_parked.load(std::memory_order_acquire))
                    std::this_thread::yield();
            // First touch of the victim's locked account happens with a
            // 12-access footprint and the older start stamp.
            acct[0]->set(tx, acct[0]->get(tx) - 1);
            acct[1]->set(tx, acct[1]->get(tx) + 1);
        });
    });
    while (!attacker_started.load(std::memory_order_acquire))
        std::this_thread::yield();

    // On the shared counter, time only advances when someone commits: one
    // dummy update here separates the start stamps, so the victim (which
    // begins next) is strictly YOUNGER than the waiting attacker and the
    // timestamp policy has a tie-free kill decision.
    {
        auto ctx = stm.make_context();
        ctx.run([&](Tx& tx) { acct[2]->set(tx, acct[2]->get(tx)); });
    }

    const std::uint64_t faults_before = fp::total_faults();
    fp::SiteConfig stall;
    stall.stall_us = 20000;  // ~20ms: far beyond every spin budget
    fp::arm_one_shot(fp::k_lsa_commit_post_lock, stall, 1);

    std::thread victim([&] {
        auto ctx = stm.make_context();
        ctx.run([&](Tx& tx) {
            acct[0]->set(tx, acct[0]->get(tx) - 5);
            acct[1]->set(tx, acct[1]->get(tx) + 5);
        });
        CHECK_MSG(ctx.stats().aborts() >= 1, "policy %s: stalled victim "
                  "was never killed (aborts %llu)", policy,
                  static_cast<unsigned long long>(ctx.stats().aborts()));
    });

    // The victim is provably parked once the one-shot fired: locks held,
    // descriptor frozen in kTxLocking, thread asleep in the failpoint.
    while (fp::total_faults() == faults_before) std::this_thread::yield();
    victim_parked.store(true, std::memory_order_release);

    victim.join();
    attacker.join();
    fp::reset();

    long total = 0;
    for (const auto& a : acct) total += a->unsafe_peek();
    CHECK_MSG(total == kInitial * (2 + kSpare), "policy %s: total %ld",
              policy, total);
    const auto stats = stm.collected_stats();
    CHECK(stats.commits() == 3);  // victim + attacker + the stamp bump
    CHECK_MSG(stats.stall_waits >= 1, "policy %s: attacker never flagged "
              "the stall", policy);
    CHECK(stats.injected_faults >= 1);
}
#endif  // CHRONOSTM_FAILPOINTS

}  // namespace

int main() {
    for (const char* policy :
         {"suicide", "polite", "backoff", "aggressive", "karma", "timestamp"})
        check_policy(policy);

#ifdef CHRONOSTM_FAILPOINTS
    for (const char* policy : {"aggressive", "karma", "timestamp"})
        check_stalled_kill(policy);
#endif

    bool threw = false;
    try {
        StmConfig cfg;
        cfg.contention_manager = "no-such-policy";
        LsaStm stm(tb::make("shared"), cfg);
    } catch (const std::invalid_argument&) {
        threw = true;
    }
    CHECK(threw);

    // The registry fails just as loudly on unknown base names and keys.
    threw = false;
    try {
        tb::make("no-such-base");
    } catch (const std::invalid_argument&) {
        threw = true;
    }
    CHECK(threw);
    threw = false;
    try {
        tb::make("batched:Q=7");
    } catch (const std::invalid_argument&) {
        threw = true;
    }
    CHECK(threw);

    std::printf("test_stm_contention_policies: PASS\n");
    return 0;
}
