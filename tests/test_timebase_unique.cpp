// Tier-1: get_new_ts uniqueness under 8 threads for the bases that promise
// it -- the shared counter (fetch-and-increment) and the clock bases (raw
// reading widened with a per-clock id, bumped monotonically per thread).
// The TL2-sharing counter deliberately gives up uniqueness, so it is
// exercised in test_timebase_monotonic instead.

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include <chronostm/timebase/facade.hpp>

#include "test_util.hpp"

using namespace chronostm;

namespace {

constexpr unsigned kThreads = 8;

template <typename TB>
void check_unique(TB& tbase, int stamps_per_thread, const char* name) {
    std::vector<std::vector<std::uint64_t>> stamps(kThreads);
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&tbase, &stamps, t, stamps_per_thread] {
            auto clk = tbase.make_thread_clock();
            stamps[t].reserve(stamps_per_thread);
            for (int i = 0; i < stamps_per_thread; ++i)
                stamps[t].push_back(clk.get_new_ts());
        });
    }
    for (auto& th : threads) th.join();

    std::vector<std::uint64_t> all;
    for (const auto& s : stamps) all.insert(all.end(), s.begin(), s.end());
    std::sort(all.begin(), all.end());
    const auto dup = std::adjacent_find(all.begin(), all.end());
    CHECK_MSG(dup == all.end(), "time base %s handed out duplicate stamp %llu",
              name,
              static_cast<unsigned long long>(dup == all.end() ? 0 : *dup));
}

}  // namespace

int main() {
    {
        tb::SharedCounterTimeBase tbase;
        check_unique(tbase, 20000, "SharedCounter");
    }
    {
        // Blocks are disjoint and refetch only moves forward, so batched
        // stamps stay globally unique even with abandoned block tails.
        tb::BatchedCounterTimeBase tbase(8);
        check_unique(tbase, 20000, "BatchedCounter(B=8)");
    }
    {
        tb::BatchedCounterTimeBase tbase(64);
        check_unique(tbase, 20000, "BatchedCounter(B=64)");
    }
    {
        // Sharded stamps carry the shard residue: unique across shards by
        // construction, unique within a shard by fetch_add. More threads
        // than shards forces shard sharing.
        auto tbase = tb::make("sharded:S=4,K=8");
        check_unique(tbase, 20000, "ShardedCounter(S=4,K=8)");
    }
    {
        // Adaptive with an instant trigger crosses single -> batched ->
        // sharded while stamps are being drawn; reservations keep them
        // globally unique through both switches.
        auto tbase = tb::make("adaptive:S=4,B=8,L=16,threshold-ns=1,trips=1");
        check_unique(tbase, 20000, "Adaptive(instant-escalation)");
    }
    {
        tb::PerfectClockTimeBase tbase(tb::PerfectSource::Auto);
        check_unique(tbase, 20000, "PerfectClock(Auto)");
    }
    {
        tb::PerfectClockTimeBase tbase(tb::PerfectSource::Steady);
        check_unique(tbase, 20000, "PerfectClock(Steady)");
    }
    {
        tb::MMTimerSim sim;
        tb::MMTimerClockTimeBase tbase(sim);
        check_unique(tbase, 500, "MMTimer");
    }
    {
        static tb::WallTimeSource src;
        static tb::PerfectDevice d0(src, 1'000'000'000), d1(src, 1'000'000'000);
        auto tbase = tb::ExtSyncTimeBase::with_static_params({&d0, &d1}, 0, 100);
        check_unique(*tbase, 20000, "ExtSync");
    }
    std::printf("test_timebase_unique: PASS\n");
    return 0;
}
