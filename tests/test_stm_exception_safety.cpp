// Tier-1 exception safety: an exception thrown out of a user functor must
// unwind cleanly through run() -- no locks left behind, no stale access
// sets, no leaked irrevocability token -- leaving the engine fully usable
// for the next transaction on the SAME context and on other threads. Both
// engines are lazy (writes stage in the write set, locks exist only inside
// commit), so the mid-functor unwind path holds no engine state except the
// token, which detail::TokenGuard releases.

#include <stdexcept>
#include <thread>

#include <chronostm/stm/adapter.hpp>

#include "test_util.hpp"

using namespace chronostm;

namespace {

struct UserBoom : std::runtime_error {
    UserBoom() : std::runtime_error("user functor exception") {}
};

// A functor throw mid-transaction (reads and writes already staged) must
// not commit anything, and the same context must work afterwards.
template <typename Adapter>
void check_throwing_functor(Adapter& adapter) {
    typename Adapter::template Var<long> v(10);
    auto ctx = adapter.make_context();

    bool threw = false;
    try {
        adapter.run(ctx, [&](typename Adapter::Txn& tx) {
            tx.write(v, tx.read(v) + 100);  // staged, never published
            throw UserBoom{};
        });
    } catch (const UserBoom&) {
        threw = true;
    }
    CHECK(threw);
    CHECK(v.unsafe_peek() == 10);  // the aborted attempt published nothing

    // Same context, fresh transaction: access sets were reset, no lock or
    // descriptor state survived the unwind.
    adapter.run(ctx, [&](typename Adapter::Txn& tx) {
        tx.write(v, tx.read(v) + 1);
    });
    CHECK(v.unsafe_peek() == 11);

    // Other threads are unaffected too.
    std::thread peer([&] {
        auto pctx = adapter.make_context();
        adapter.run(pctx, [&](typename Adapter::Txn& tx) {
            tx.write(v, tx.read(v) + 1);
        });
    });
    peer.join();
    CHECK(v.unsafe_peek() == 12);
}

// A functor throw WHILE HOLDING the irrevocability token (escalated via
// the ladder, then the user code dies) must release the token on unwind;
// otherwise every later escalation -- and every update commit's gate
// entry -- would wedge forever.
template <typename Adapter, typename Stm, typename Cfg>
void check_throwing_escalated(Cfg cfg) {
    cfg.irrevocable_threshold = 1;
    Adapter adapter(tb::make("shared"), cfg);
    typename Adapter::template Var<long> v(0);
    auto ctx = adapter.make_context();

    bool threw = false;
    int tries = 0;
    try {
        adapter.run(ctx, [&](typename Adapter::Txn& tx) {
            ++tries;
            (void)tx.read(v);
            if (!tx.irrevocable()) tx.abort();  // drive the escalation
            throw UserBoom{};                   // die while holding the token
        });
    } catch (const UserBoom&) {
        threw = true;
    }
    CHECK(threw);
    CHECK_MSG(tries == 2, "tries %d", tries);
    Stm& stm = adapter.stm();
    CHECK(!stm.irrevocable_active());  // TokenGuard released it

    // The gate still works end to end: a later transaction can escalate
    // (acquire the token, drain, commit) and plain commits pass through.
    adapter.run(ctx, [&](typename Adapter::Txn& tx) {
        tx.write(v, tx.read(v) + 1);
        if (!tx.irrevocable()) tx.become_irrevocable();
    });
    CHECK(v.unsafe_peek() == 1);
    CHECK(!stm.irrevocable_active());
    adapter.run(ctx, [&](typename Adapter::Txn& tx) {
        tx.write(v, tx.read(v) + 1);
    });
    CHECK(v.unsafe_peek() == 2);
    CHECK(adapter.collected_stats().escalations == 2);
    CHECK(adapter.collected_stats().irrevocable_commits == 1);
}

}  // namespace

int main() {
    {
        stm::LsaAdapter a(tb::make("shared"));
        check_throwing_functor(a);
    }
    {
        stm::OrecAdapter a(tb::make("shared"));
        check_throwing_functor(a);
    }
    check_throwing_escalated<stm::LsaAdapter, LsaStm>(StmConfig{});
    check_throwing_escalated<stm::OrecAdapter, OrecStm>(OrecConfig{});

    std::printf("test_stm_exception_safety: PASS\n");
    return 0;
}
