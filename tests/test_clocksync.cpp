// Tier-1 tests for the clock-sync probe (clocksync/sync_probe.hpp) against
// MMTimerSim's injected offsets (ground truth known). Two directions, both
// predicted by the paper's reasoning:
//  * offsets below the read latency hide under the measurement error --
//    the estimated error dominates the true injected offset every round;
//  * offsets well above the error floor are *measured*, so error >= offset
//    breaks, while |offset| + error keeps covering the ground truth.
// The break threshold is calibrated from a zero-injection run instead of a
// hardcoded tick count so the test stays meaningful on hosts where
// scheduling (e.g. one CPU for three threads) honestly widens the windows.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <vector>

#include <chronostm/clocksync/sync_probe.hpp>
#include <chronostm/timebase/mmtimer.hpp>
#include <chronostm/util/stats.hpp>

#include "test_util.hpp"

using namespace chronostm;

namespace {

std::vector<csync::SyncRound> probe_mmtimer(std::int64_t inject, int rounds) {
    tb::MMTimerSim::Params p;
    p.nodes = 2;
    p.max_node_offset_ticks = inject;
    // Stack lifetime is fine: run_sync_probe joins all threads before
    // returning.
    tb::MMTimerSim sim(p);
    std::vector<std::function<std::int64_t()>> clocks;
    for (unsigned n = 0; n < sim.nodes(); ++n)
        clocks.emplace_back([&sim, n]() -> std::int64_t {
            return static_cast<std::int64_t>(sim.read(n));
        });
    csync::SyncProbeConfig cfg;
    cfg.rounds = rounds;
    cfg.exchanges_per_round = 8;
    cfg.round_interval_us = 0;
    cfg.pin_threads = false;  // test hosts may have fewer CPUs than nodes
    return csync::run_sync_probe(clocks, cfg);
}

void check_error_dominates_small_offsets() {
    // inject=4 is below the 7-tick read latency: the window of every
    // exchange contains two full reads, so the error bound sits at >= 7
    // ticks and must dominate the true injected offset on every round.
    const std::int64_t inject = 4;
    const auto rounds = probe_mmtimer(inject, 8);
    CHECK(rounds.size() == 8);
    for (const auto& r : rounds) {
        CHECK(r.valid_probes == 1);
        CHECK_MSG(r.max_error >= static_cast<double>(inject),
                  "error %.1f vs injected %lld", r.max_error,
                  static_cast<long long>(inject));
        // The estimated bound must cover the ground truth, always.
        CHECK(r.max_error_plus_offset + 1.0 >= static_cast<double>(inject));
    }
}

void check_invariant_breaks_past_read_latency() {
    // Calibrate the host's error floor with zero injection, then inject an
    // offset far above it: the probe must now *measure* the offset, and
    // error >= offset must break -- exactly the paper's prediction for a
    // badly synchronized clock.
    std::vector<double> floor_errors;
    for (const auto& r : probe_mmtimer(0, 8))
        floor_errors.push_back(r.max_error);
    const double floor = median(floor_errors);
    CHECK_MSG(floor >= 7.0, "error floor %.1f below the 7-tick read latency",
              floor);

    const auto inject = static_cast<std::int64_t>(8.0 * floor) + 8;
    std::vector<double> offsets, errors, bounds;
    for (const auto& r : probe_mmtimer(inject, 8)) {
        offsets.push_back(r.max_abs_offset);
        errors.push_back(r.max_error);
        bounds.push_back(r.max_error_plus_offset);
    }
    CHECK_MSG(median(offsets) > median(errors),
              "offset %.1f error %.1f inject %lld", median(offsets),
              median(errors), static_cast<long long>(inject));
    // Soundness survives the break: the bound still covers the truth.
    CHECK(median(bounds) + 1.0 >= static_cast<double>(inject));
}

void check_degenerate_inputs() {
    // A single clock has nothing to probe: rows come back empty, no hang.
    std::vector<std::function<std::int64_t()>> one{
        []() -> std::int64_t { return 42; }};
    csync::SyncProbeConfig cfg;
    cfg.rounds = 3;
    const auto rounds = csync::run_sync_probe(one, cfg);
    CHECK(rounds.size() == 3);
    for (const auto& r : rounds) {
        CHECK(r.valid_probes == 0);
        CHECK(r.max_error == 0 && r.max_abs_offset == 0);
    }
    CHECK(csync::run_sync_probe({}, cfg).size() == 3);
}

}  // namespace

int main() {
    check_error_dominates_small_offsets();
    check_invariant_breaks_past_read_latency();
    check_degenerate_inputs();
    std::printf("test_clocksync: OK\n");
    return 0;
}
