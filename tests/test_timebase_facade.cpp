// Tier-1: the runtime-pluggable time-base facade (timebase/facade.hpp).
//
//  * Registry round-trip: every known base is constructible by string key,
//    hands out stamps through the type-erased ThreadClock, and publishes a
//    sane deviation; unknown names and keys throw.
//  * Wrapping: TimeBase::wrap shares state with the wrapped object (the
//    facade is a view, not a copy), and wrap_external routes an
//    out-of-enum base through the function-pointer escape hatch.
//  * Sharded counter: stamps are globally unique across shards, carry the
//    shard residue, and every get_time observation stays within the
//    documented pairwise bound of a later stamp.
//  * Adaptive switch (the correctness-interesting part): 8 threads draw
//    stamps while the base is escalated single -> batched -> sharded
//    MID-RUN at deterministic points; per-thread strict monotonicity,
//    global uniqueness, and the deviation bound must survive both
//    switches. Run under TSan in CI: the switch is the new concurrency
//    hazard.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <chronostm/timebase/facade.hpp>

#include "test_util.hpp"

using namespace chronostm;

namespace {

void check_registry_roundtrip() {
    for (const auto& k : tb::known_bases()) {
        // Both the bare name and the documented example spec construct.
        for (const std::string& spec : {std::string(k.name),
                                        std::string(k.example)}) {
            tb::TimeBase tbase = tb::make(spec);
            CHECK_MSG(tbase.valid(), "spec %s", spec.c_str());
            CHECK_MSG(!tbase.spec().empty(), "spec %s", spec.c_str());
            auto clk = tbase.make_thread_clock();
            std::uint64_t prev = 0;
            for (int i = 0; i < 200; ++i) {
                const auto now = clk.get_time();
                const auto ts = clk.get_new_ts();
                CHECK_MSG(i == 0 || ts > prev, "spec %s: stamp %llu",
                          spec.c_str(),
                          static_cast<unsigned long long>(ts));
                CHECK_MSG(now < ts + 2 * tbase.deviation() + 1,
                          "spec %s: get_time %llu vs stamp %llu",
                          spec.c_str(), static_cast<unsigned long long>(now),
                          static_cast<unsigned long long>(ts));
                prev = ts;
            }
        }
    }
    // Params reach the concrete base.
    {
        auto tbase = tb::make("batched:B=16");
        auto* b = tbase.get_if<tb::BatchedCounterTimeBase>();
        CHECK(b != nullptr && b->block_size() == 16);
        CHECK(tbase.get_if<tb::ShardedCounterTimeBase>() == nullptr);
        CHECK(tbase.deviation() == b->deviation());
    }
    {
        auto tbase = tb::make("sharded:S=8,K=2");
        auto* s = tbase.get_if<tb::ShardedCounterTimeBase>();
        CHECK(s != nullptr && s->shard_count() == 8 && s->band() == 2);
    }
    // Case-insensitive keys, loud failures.
    CHECK(tb::make("batched:b=32").get_if<tb::BatchedCounterTimeBase>()
              ->block_size() == 32);
    for (const char* bad : {"no-such-base", "batched:Q=1", "sharded:S=x",
                            "perfect:source=sundial", "batched:B"}) {
        bool threw = false;
        try {
            tb::make(bad);
        } catch (const std::invalid_argument&) {
            threw = true;
        }
        CHECK_MSG(threw, "spec %s did not throw", bad);
    }
    // split_specs keeps params attached to their spec.
    const auto specs =
        tb::split_specs("shared,batched:B=8,K=2,adaptive:S=4,perfect");
    CHECK(specs.size() == 4);
    CHECK(specs[0] == "shared");
    CHECK(specs[1] == "batched:B=8,K=2");
    CHECK(specs[2] == "adaptive:S=4");
    CHECK(specs[3] == "perfect");
}

void check_wrap_shares_state() {
    tb::SharedCounterTimeBase counter;
    tb::TimeBase wrapped = tb::TimeBase::wrap(counter);
    auto direct = counter.make_thread_clock();
    auto erased = wrapped.make_thread_clock();
    // Interleaved draws come from ONE counter: strictly interleaving
    // values, no duplicates -- the facade is a view over the same state.
    std::uint64_t last = 0;
    for (int i = 0; i < 100; ++i) {
        const auto a = direct.get_new_ts();
        const auto b = erased.get_new_ts();
        CHECK(a == last + 1 && b == a + 1);
        last = b;
    }
    CHECK(wrapped.kind() == tb::Kind::kShared);
    CHECK(wrapped.deviation() == 0);
}

// An out-of-enum base: a trivial Lamport-style local counter with a
// published zero bound, wrapped through the external escape hatch.
struct ToyTimeBase {
    class ThreadClock {
     public:
        explicit ThreadClock(std::atomic<std::uint64_t>* c) : c_(c) {}
        std::uint64_t get_time() const {
            return c_->load(std::memory_order_acquire);
        }
        std::uint64_t get_new_ts() {
            return c_->fetch_add(1, std::memory_order_acq_rel) + 1;
        }

     private:
        std::atomic<std::uint64_t>* c_;
    };
    ThreadClock make_thread_clock() { return ThreadClock(&c); }
    std::uint64_t deviation() const { return 0; }
    std::atomic<std::uint64_t> c{0};
};

void check_wrap_external() {
    ToyTimeBase toy;
    tb::TimeBase tbase = tb::TimeBase::wrap_external(toy, "toy");
    CHECK(tbase.kind() == tb::Kind::kExternal);
    CHECK(tbase.deviation() == 0);
    CHECK(tbase.spec() == "toy");
    auto clk = tbase.make_thread_clock();
    CHECK(clk.get_new_ts() == 1);
    CHECK(clk.get_new_ts() == 2);
    // Move semantics transfer the heap-allocated external clock.
    auto clk2 = std::move(clk);
    CHECK(clk2.get_new_ts() == 3);
    CHECK(toy.c.load() == 3);
}

// NUMA-aware shard assignment rests on shard_group's partition: every
// shard in exactly one node group, group sizes within one of each other,
// and graceful emptiness when shards < nodes (callers then fall back to
// the global round-robin). Any thread->shard map is CORRECT; this pins
// down the partition math the locality optimization relies on.
void check_shard_group_partition() {
    for (const std::uint64_t nodes : {1u, 2u, 3u, 4u, 7u}) {
        for (const std::uint64_t shards : {1u, 2u, 3u, 4u, 8u, 13u}) {
            std::uint64_t covered = 0, min_sz = ~std::uint64_t{0},
                          max_sz = 0;
            std::uint64_t expected_base = 0;
            for (std::uint64_t g = 0; g < nodes; ++g) {
                const auto [base, size] =
                    tb::detail::shard_group(g, nodes, shards);
                CHECK_MSG(base == expected_base,
                          "nodes=%llu shards=%llu group %llu: gap or "
                          "overlap at base %llu",
                          static_cast<unsigned long long>(nodes),
                          static_cast<unsigned long long>(shards),
                          static_cast<unsigned long long>(g),
                          static_cast<unsigned long long>(base));
                expected_base = base + size;
                covered += size;
                min_sz = std::min(min_sz, size);
                max_sz = std::max(max_sz, size);
            }
            CHECK(covered == shards);
            CHECK(max_sz - min_sz <= 1);
        }
    }
    // Topology helpers degrade gracefully whatever the host looks like.
    CHECK(numa_node_count() >= 1);
    CHECK(numa_node_of_cpu(-1) == -1);
    const int cpu = current_cpu();
    if (cpu >= 0) {
        const int node = numa_node_of_cpu(cpu);
        CHECK(node == -1 || (node >= 0 && node < numa_node_count()));
    }
}

void check_sharded_stamps() {
    auto tbase = tb::make("sharded:S=4,K=8");
    auto* s = tbase.get_if<tb::ShardedCounterTimeBase>();
    // Documented bound: ceil(S*(K+1)/2).
    CHECK(tbase.deviation() == (4 * 9 + 1) / 2);

    constexpr unsigned kThreads = 8;  // 2 clocks per shard
    constexpr int kPerThread = 20000;
    std::vector<std::vector<std::uint64_t>> stamps(kThreads);
    std::atomic<int> bound_violations{0};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            auto clk = tbase.make_thread_clock();
            stamps[t].reserve(kPerThread);
            const std::uint64_t slack = 2 * tbase.deviation() + 1;
            for (int i = 0; i < kPerThread; ++i) {
                const auto now = clk.get_time();
                const auto ts = clk.get_new_ts();
                if (now >= ts + slack)
                    bound_violations.fetch_add(1, std::memory_order_relaxed);
                stamps[t].push_back(ts);
            }
        });
    }
    for (auto& th : threads) th.join();
    CHECK(bound_violations.load() == 0);

    std::vector<std::uint64_t> all;
    std::vector<std::uint64_t> per_shard(s->shard_count(), 0);
    for (unsigned t = 0; t < kThreads; ++t) {
        // Per-thread strict monotonicity.
        for (std::size_t i = 1; i < stamps[t].size(); ++i)
            CHECK_MSG(stamps[t][i] > stamps[t][i - 1], "thread %u pos %zu", t,
                      i);
        for (const auto ts : stamps[t]) {
            ++per_shard[ts % s->shard_count()];
            all.push_back(ts);
        }
    }
    // Global uniqueness across shards.
    std::sort(all.begin(), all.end());
    CHECK(std::adjacent_find(all.begin(), all.end()) == all.end());
    // All shards actually drew (round-robin clock assignment).
    for (std::uint64_t sh = 0; sh < s->shard_count(); ++sh)
        CHECK_MSG(per_shard[sh] > 0, "shard %llu never drew",
                  static_cast<unsigned long long>(sh));
}

// The adaptive switch, deterministically mid-run: drawers run with the
// sampling trigger disabled while the main thread escalates the mode
// twice; every invariant the STM relies on must hold across both fences.
void check_adaptive_switch() {
    auto tbase = tb::make("adaptive:S=4,B=8,L=16,threshold-ns=0");
    auto* ab = tbase.get_if<tb::AdaptiveTimeBase>();
    CHECK(ab != nullptr);
    CHECK(ab->mode() == tb::AdaptiveTimeBase::kSingle);

    constexpr unsigned kThreads = 8;
    constexpr int kPerThread = 40000;
    constexpr int kFinalPhase = 2000;  // drawn strictly after both switches
    std::vector<std::vector<std::uint64_t>> stamps(kThreads);
    std::atomic<int> bound_violations{0};
    std::atomic<unsigned> past_first_third{0}, past_second_third{0};
    std::atomic<bool> final_phase{false};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            auto clk = tbase.make_thread_clock();
            stamps[t].reserve(kPerThread + kFinalPhase);
            const std::uint64_t slack = 2 * tbase.deviation() + 1;
            const auto draw = [&] {
                const auto now = clk.get_time();
                const auto ts = clk.get_new_ts();
                if (now >= ts + slack)
                    bound_violations.fetch_add(1, std::memory_order_relaxed);
                stamps[t].push_back(ts);
            };
            for (int i = 0; i < kPerThread; ++i) {
                draw();
                if (i == kPerThread / 3)
                    past_first_third.fetch_add(1, std::memory_order_release);
                if (i == 2 * kPerThread / 3)
                    past_second_third.fetch_add(1, std::memory_order_release);
            }
            // Fast threads may exhaust their quota before the slowest
            // reaches its switch points; the extra phase guarantees every
            // thread draws under the final (sharded) mode too.
            while (!final_phase.load(std::memory_order_acquire))
                std::this_thread::yield();
            for (int i = 0; i < kFinalPhase; ++i) draw();
        });
    }
    // Escalate once every thread is deep in its draw loop, twice: the
    // drawers cross single->batched and batched->sharded live.
    while (past_first_third.load(std::memory_order_acquire) < kThreads)
        std::this_thread::yield();
    ab->escalate();
    while (past_second_third.load(std::memory_order_acquire) < kThreads)
        std::this_thread::yield();
    ab->escalate();
    final_phase.store(true, std::memory_order_release);
    for (auto& th : threads) th.join();

    CHECK(ab->mode() == tb::AdaptiveTimeBase::kSharded);
    CHECK_MSG(bound_violations.load() == 0, "%d deviation-bound violations",
              bound_violations.load());

    std::vector<std::uint64_t> all;
    for (unsigned t = 0; t < kThreads; ++t) {
        for (std::size_t i = 1; i < stamps[t].size(); ++i)
            CHECK_MSG(stamps[t][i] > stamps[t][i - 1],
                      "thread %u pos %zu: %llu then %llu across a switch", t,
                      i,
                      static_cast<unsigned long long>(stamps[t][i - 1]),
                      static_cast<unsigned long long>(stamps[t][i]));
        all.insert(all.end(), stamps[t].begin(), stamps[t].end());
    }
    std::sort(all.begin(), all.end());
    const auto dup = std::adjacent_find(all.begin(), all.end());
    CHECK_MSG(dup == all.end(), "duplicate stamp %llu across the switch",
              static_cast<unsigned long long>(dup == all.end() ? 0 : *dup));
    // After the final switch, stamps actually spread across shards.
    std::vector<std::uint64_t> residues(ab->params().shards, 0);
    for (unsigned t = 0; t < kThreads; ++t)
        ++residues[stamps[t].back() % ab->params().shards];
    std::uint64_t used = 0;
    for (const auto r : residues) used += r > 0 ? 1 : 0;
    CHECK_MSG(used > 1, "sharded mode never spread beyond one shard "
                        "(%llu)",
              static_cast<unsigned long long>(used));
}

// The latency trigger itself: an instant threshold escalates to the top of
// the ladder without any manual intervention.
void check_adaptive_auto_trigger() {
    auto tbase = tb::make("adaptive:S=2,threshold-ns=1,sample=4,trips=1");
    auto* ab = tbase.get_if<tb::AdaptiveTimeBase>();
    auto clk = tbase.make_thread_clock();
    for (int i = 0; i < 1000; ++i) clk.get_new_ts();
    CHECK(ab->mode() == tb::AdaptiveTimeBase::kSharded);
    // And a disabled trigger never escalates on its own.
    auto tbase2 = tb::make("adaptive:threshold-ns=0");
    auto* ab2 = tbase2.get_if<tb::AdaptiveTimeBase>();
    auto clk2 = tbase2.make_thread_clock();
    for (int i = 0; i < 1000; ++i) clk2.get_new_ts();
    CHECK(ab2->mode() == tb::AdaptiveTimeBase::kSingle);
}

}  // namespace

int main() {
    check_registry_roundtrip();
    check_wrap_shares_state();
    check_wrap_external();
    check_shard_group_partition();
    check_sharded_stamps();
    check_adaptive_switch();
    check_adaptive_auto_trigger();
    if (const char* env = std::getenv("CHRONOSTM_TIMEBASE")) {
        // CI's tier-1 sweep: whatever spec the matrix selects must at
        // least round-trip the registry and hand out monotonic stamps.
        for (const auto& spec : tb::split_specs(env)) {
            auto tbase = tb::make(spec);
            auto clk = tbase.make_thread_clock();
            std::uint64_t prev = 0;
            for (int i = 0; i < 1000; ++i) {
                const auto ts = clk.get_new_ts();
                CHECK_MSG(i == 0 || ts > prev, "env spec %s", spec.c_str());
                prev = ts;
            }
        }
    }
    std::printf("test_timebase_facade: PASS\n");
    return 0;
}
