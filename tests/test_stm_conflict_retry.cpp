// Tier-1 STM semantics: abort-and-retry on a write-write conflict,
// deterministically staged. Transaction 1 reads the variable, then parks
// while transaction 2 commits a conflicting update; transaction 1's commit
// must fail validation, and the automatic retry must observe the new value
// and commit. Also checks the retry bound is enforceable configuration.

#include <atomic>
#include <stdexcept>
#include <thread>
#include <type_traits>

#include <chronostm/core/lsa_stm.hpp>

#include "test_util.hpp"

using namespace chronostm;

namespace {

using Tx = Transaction;

void spin_until(const std::atomic<bool>& flag) {
    while (!flag.load(std::memory_order_acquire)) std::this_thread::yield();
}

}  // namespace

int main() {
    LsaStm stm(tb::make("shared"));
    TVar<long> v(0);

    std::atomic<bool> t1_read_done{false};
    std::atomic<bool> t2_committed{false};
    int attempts = 0;
    long seen_first = -1, seen_second = -1;

    std::thread t2([&] {
        auto ctx = stm.make_context();
        spin_until(t1_read_done);
        ctx.run([&](Tx& tx) { v.set(tx, v.get(tx) + 1); });
        t2_committed.store(true, std::memory_order_release);
    });

    auto ctx = stm.make_context();
    ctx.run([&](Tx& tx) {
        ++attempts;
        const long cur = v.get(tx);
        if (attempts == 1) {
            seen_first = cur;
            t1_read_done.store(true, std::memory_order_release);
            spin_until(t2_committed);
        } else {
            seen_second = cur;
        }
        v.set(tx, cur + 1);
    });
    t2.join();

    CHECK_MSG(attempts == 2, "attempts %d", attempts);
    CHECK(seen_first == 0);
    CHECK(seen_second == 1);  // the retry saw transaction 2's update
    CHECK(v.unsafe_peek() == 2);
    CHECK(ctx.stats().aborts() == 1);
    CHECK(ctx.stats().commits() == 1);
    CHECK(stm.collected_stats().commits() == 2);

    // The bounded-retry knob: a transaction that can never commit within
    // the bound surfaces as chronostm::RetryExhausted instead of spinning
    // forever. The exception carries a TxStats snapshot plus the abort
    // taxonomy (conflict vs freshness) of the exhausted transaction.
    {
        StmConfig cfg;
        cfg.max_retries = 3;
        cfg.irrevocable_threshold = 0;  // ladder off: exhaustion must throw
        LsaStm stm2(tb::make("shared"), cfg);
        TVar<long> w(0);
        auto c2 = stm2.make_context();
        bool threw = false;
        try {
            c2.run([&](Tx& tx) {
                (void)w.get(tx);
                tx.abort();  // user-directed abort on every attempt
            });
        } catch (const RetryExhausted& e) {
            threw = true;
            // tx.abort() is a conflict-class abort; no freshness misses.
            CHECK(e.conflict_aborts == 3);
            CHECK(e.freshness_aborts == 0);
            CHECK(e.stats.aborts() == 3);
            CHECK(e.stats.commits() == 0);
        }
        CHECK(threw);
        CHECK(c2.stats().aborts() == 3);
        // RetryExhausted stays catchable as std::runtime_error for callers
        // that predate the typed exception.
        static_assert(
            std::is_base_of<std::runtime_error, RetryExhausted>::value,
            "RetryExhausted must remain a runtime_error");
    }

    // With the degradation ladder enabled below the retry bound, the same
    // hopeless-conflict shape cannot throw: crossing the threshold
    // escalates to irrevocable serial mode, where user aborts are the only
    // way out -- so here we instead check a CONFLICT-abort storm commits.
    // (The functor stops calling tx.abort() once escalated; engine-side
    // conflicts can no longer abort the token holder.)
    {
        StmConfig cfg;
        cfg.max_retries = 8;
        cfg.irrevocable_threshold = 2;
        LsaStm stm2(tb::make("shared"), cfg);
        TVar<long> w(0);
        auto c2 = stm2.make_context();
        int tries = 0;
        c2.run([&](Tx& tx) {
            ++tries;
            const long cur = w.get(tx);
            w.set(tx, cur + 1);
            if (!tx.irrevocable()) tx.abort();  // hopeless until escalation
        });
        CHECK_MSG(tries == 3, "tries %d", tries);  // 2 aborts, then escalate
        CHECK(w.unsafe_peek() == 1);
        CHECK(c2.stats().escalations == 1);
        CHECK(c2.stats().irrevocable_commits == 1);
        CHECK(c2.stats().commits() == 1);
    }

    std::printf("test_stm_conflict_retry: PASS\n");
    return 0;
}
