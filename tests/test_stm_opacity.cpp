// Tier-1 STM semantics: read-only snapshot consistency (opacity smoke
// test). Writers keep the invariant a + b == kTotal while moving value
// between the pair; readers -- inside the transaction body, i.e. including
// attempts that will never commit -- must always observe the invariant and
// stable repeated reads. LSA gives this by construction: every read is
// validated against the snapshot interval at read time. The same bar is
// then applied through the adapter facade to every comparison engine
// (TL2 revalidates against its read version, the validation STM
// revalidates the read set at each open, the global lock is trivially
// consistent): a baseline that only "mostly" provides opacity would
// poison every comparison table built on it.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <cstdlib>

#include <chronostm/core/lsa_stm.hpp>
#include <chronostm/stm/adapter.hpp>
#include <chronostm/util/rng.hpp>

#include "test_util.hpp"

using namespace chronostm;

namespace {

using Tx = Transaction;

constexpr long kTotal = 200;

// Core layer: writers keep a + b == kTotal; in-transaction readers must
// always observe the invariant, whatever base the facade resolves.
void check_opacity_core(tb::TimeBase tbase, const char* name, int run_ms,
                        int writers, int readers) {
    LsaStm stm(std::move(tbase));
    TVar<long> a(kTotal / 2), b(kTotal / 2);

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> reader_txns{0};
    std::atomic<int> violations{0};

    std::vector<std::thread> threads;
    for (int w = 0; w < writers; ++w) {
        threads.emplace_back([&, w] {
            auto ctx = stm.make_context();
            Rng rng(w * 131 + 7);
            while (!stop.load(std::memory_order_acquire)) {
                const long amount = static_cast<long>(rng.below(20)) + 1;
                ctx.run([&](Tx& tx) {
                    a.set(tx, a.get(tx) - amount);
                    b.set(tx, b.get(tx) + amount);
                });
            }
        });
    }
    for (int r = 0; r < readers; ++r) {
        threads.emplace_back([&] {
            auto ctx = stm.make_context();
            while (!stop.load(std::memory_order_acquire)) {
                ctx.run([&](Tx& tx) {
                    const long a1 = a.get(tx);
                    const long b1 = b.get(tx);
                    const long a2 = a.get(tx);
                    if (a1 + b1 != kTotal || a1 != a2)
                        violations.fetch_add(1, std::memory_order_relaxed);
                });
                reader_txns.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }

    std::this_thread::sleep_for(std::chrono::milliseconds(run_ms));
    stop.store(true, std::memory_order_release);
    for (auto& th : threads) th.join();

    CHECK_MSG(violations.load() == 0, "time base %s: %d violations", name,
              violations.load());
    CHECK_MSG(reader_txns.load() > 0, "time base %s: no reader progress",
              name);
    CHECK_MSG(a.unsafe_peek() + b.unsafe_peek() == kTotal,
              "time base %s: total %ld", name,
              a.unsafe_peek() + b.unsafe_peek());
    std::printf("core/%s: %llu reader txns, 0 violations\n", name,
                static_cast<unsigned long long>(reader_txns.load()));
}

// Facade version, generic over the engine.
template <typename A>
void check_opacity_facade(A& adapter, const char* name, int run_ms) {
    using Var = typename A::template Var<long>;
    Var a(kTotal / 2), b(kTotal / 2);

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> reader_txns{0};
    std::atomic<int> violations{0};

    std::vector<std::thread> threads;
    for (int w = 0; w < 2; ++w) {
        threads.emplace_back([&, w] {
            auto ctx = adapter.make_context();
            Rng rng(w * 131 + 7);
            while (!stop.load(std::memory_order_acquire)) {
                const long amount = static_cast<long>(rng.below(20)) + 1;
                adapter.run(ctx, [&](typename A::Txn& tx) {
                    tx.write(a, tx.read(a) - amount);
                    tx.write(b, tx.read(b) + amount);
                });
            }
        });
    }
    for (int r = 0; r < 2; ++r) {
        threads.emplace_back([&] {
            auto ctx = adapter.make_context();
            while (!stop.load(std::memory_order_acquire)) {
                adapter.run(ctx, [&](typename A::Txn& tx) {
                    const long a1 = tx.read(a);
                    const long b1 = tx.read(b);
                    const long a2 = tx.read(a);
                    if (a1 + b1 != kTotal || a1 != a2)
                        violations.fetch_add(1, std::memory_order_relaxed);
                });
                reader_txns.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }

    std::this_thread::sleep_for(std::chrono::milliseconds(run_ms));
    stop.store(true, std::memory_order_release);
    for (auto& th : threads) th.join();

    CHECK_MSG(violations.load() == 0, "engine %s: %d violations", name,
              violations.load());
    CHECK_MSG(reader_txns.load() > 0, "engine %s: no reader progress", name);
    CHECK_MSG(a.unsafe_peek() + b.unsafe_peek() == kTotal,
              "engine %s: total %ld", name,
              a.unsafe_peek() + b.unsafe_peek());
}

}  // namespace

int main() {
    // Core layer over registry-selected bases: the exact counter as
    // shipped in PR 1, plus the imprecise scalable bases whose deviation
    // shrink must keep every snapshot consistent anyway (batched stamps
    // lag the counter; sharded stamps lag the watermark; adaptive crosses
    // modes while this runs if its trigger trips).
    check_opacity_core(tb::make("shared"), "shared", 300, 4, 4);
    check_opacity_core(tb::make("batched:B=16"), "batched:B=16", 150, 2, 2);
    check_opacity_core(tb::make("sharded:S=4,K=4"), "sharded:S=4,K=4", 150,
                       2, 2);
    check_opacity_core(tb::make("adaptive:S=4,B=8,L=8"), "adaptive", 150, 2,
                       2);
    if (const char* env = std::getenv("CHRONOSTM_TIMEBASE"))
        for (const auto& spec : tb::split_specs(env))
            check_opacity_core(tb::make(spec), spec.c_str(), 150, 2, 2);

    // Every engine behind the facade passes the same bar. The orec engine
    // sweeps the CI tier-1 time-base matrix: its seqlock-style reads must
    // stay opaque whatever base supplies the snapshot interval.
    for (const char* spec :
         {"shared", "batched:B=16", "sharded:S=2,K=8", "adaptive:S=2"}) {
        stm::LsaAdapter a(tb::make(spec));
        check_opacity_facade(a, spec, 150);
    }
    for (const char* spec : {"shared", "perfect", "batched:B=8",
                             "sharded:S=4,K=8", "adaptive:S=4,B=8,L=16"}) {
        stm::OrecAdapter a(tb::make(spec));
        check_opacity_facade(a, (std::string("orec/") + spec).c_str(), 150);
    }
    if (const char* env = std::getenv("CHRONOSTM_TIMEBASE"))
        for (const auto& spec : tb::split_specs(env)) {
            stm::OrecAdapter a(tb::make(spec));
            check_opacity_facade(a, ("orec/" + spec).c_str(), 150);
        }
    {
        stm::Tl2Adapter a;
        check_opacity_facade(a, "TL2", 150);
    }
    {
        stm::VstmAdapter a;
        check_opacity_facade(a, "VSTM/cc-heuristic", 150);
    }
    {
        stm::VstmConfig cfg;
        cfg.commit_counter_heuristic = false;
        stm::VstmAdapter a(cfg);
        check_opacity_facade(a, "VSTM/always-validate", 150);
    }
    {
        stm::GlobalLockAdapter a;
        check_opacity_facade(a, "GlobalLock", 100);
    }

    std::printf("test_stm_opacity: PASS\n");
    return 0;
}
