// Tier-1 STM semantics: read-only snapshot consistency (opacity smoke
// test). Writers keep the invariant a + b == kTotal while moving value
// between the pair; readers -- inside the transaction body, i.e. including
// attempts that will never commit -- must always observe the invariant and
// stable repeated reads. LSA gives this by construction: every read is
// validated against the snapshot interval at read time. The same bar is
// then applied through the adapter facade to every comparison engine
// (TL2 revalidates against its read version, the validation STM
// revalidates the read set at each open, the global lock is trivially
// consistent): a baseline that only "mostly" provides opacity would
// poison every comparison table built on it.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include <chronostm/core/lsa_stm.hpp>
#include <chronostm/stm/adapter.hpp>
#include <chronostm/timebase/batched_counter.hpp>
#include <chronostm/timebase/shared_counter.hpp>
#include <chronostm/util/rng.hpp>

#include "test_util.hpp"

using namespace chronostm;

namespace {

using TB = tb::SharedCounterTimeBase;
using Tx = Transaction<TB>;

constexpr long kTotal = 200;

// Facade version, generic over the engine.
template <typename A>
void check_opacity_facade(A& adapter, const char* name, int run_ms) {
    using Var = typename A::template Var<long>;
    Var a(kTotal / 2), b(kTotal / 2);

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> reader_txns{0};
    std::atomic<int> violations{0};

    std::vector<std::thread> threads;
    for (int w = 0; w < 2; ++w) {
        threads.emplace_back([&, w] {
            auto ctx = adapter.make_context();
            Rng rng(w * 131 + 7);
            while (!stop.load(std::memory_order_acquire)) {
                const long amount = static_cast<long>(rng.below(20)) + 1;
                adapter.run(ctx, [&](typename A::Txn& tx) {
                    tx.write(a, tx.read(a) - amount);
                    tx.write(b, tx.read(b) + amount);
                });
            }
        });
    }
    for (int r = 0; r < 2; ++r) {
        threads.emplace_back([&] {
            auto ctx = adapter.make_context();
            while (!stop.load(std::memory_order_acquire)) {
                adapter.run(ctx, [&](typename A::Txn& tx) {
                    const long a1 = tx.read(a);
                    const long b1 = tx.read(b);
                    const long a2 = tx.read(a);
                    if (a1 + b1 != kTotal || a1 != a2)
                        violations.fetch_add(1, std::memory_order_relaxed);
                });
                reader_txns.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }

    std::this_thread::sleep_for(std::chrono::milliseconds(run_ms));
    stop.store(true, std::memory_order_release);
    for (auto& th : threads) th.join();

    CHECK_MSG(violations.load() == 0, "engine %s: %d violations", name,
              violations.load());
    CHECK_MSG(reader_txns.load() > 0, "engine %s: no reader progress", name);
    CHECK_MSG(a.unsafe_peek() + b.unsafe_peek() == kTotal,
              "engine %s: total %ld", name,
              a.unsafe_peek() + b.unsafe_peek());
}

}  // namespace

int main() {
    // Core layer, as shipped in PR 1.
    {
        TB tbase;
        LsaStm<TB> stm(tbase);
        TVar<long, TB> a(kTotal / 2), b(kTotal / 2);

        std::atomic<bool> stop{false};
        std::atomic<std::uint64_t> reader_txns{0};
        std::atomic<int> violations{0};

        std::vector<std::thread> threads;
        for (int w = 0; w < 4; ++w) {
            threads.emplace_back([&, w] {
                auto ctx = stm.make_context();
                Rng rng(w * 131 + 7);
                while (!stop.load(std::memory_order_acquire)) {
                    const long amount = static_cast<long>(rng.below(20)) + 1;
                    ctx.run([&](Tx& tx) {
                        a.set(tx, a.get(tx) - amount);
                        b.set(tx, b.get(tx) + amount);
                    });
                }
            });
        }
        for (int r = 0; r < 4; ++r) {
            threads.emplace_back([&] {
                auto ctx = stm.make_context();
                while (!stop.load(std::memory_order_acquire)) {
                    ctx.run([&](Tx& tx) {
                        const long a1 = a.get(tx);
                        const long b1 = b.get(tx);
                        const long a2 = a.get(tx);
                        if (a1 + b1 != kTotal || a1 != a2)
                            violations.fetch_add(1, std::memory_order_relaxed);
                    });
                    reader_txns.fetch_add(1, std::memory_order_relaxed);
                }
            });
        }

        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        stop.store(true, std::memory_order_release);
        for (auto& th : threads) th.join();

        CHECK(violations.load() == 0);
        CHECK(reader_txns.load() > 0);
        CHECK(a.unsafe_peek() + b.unsafe_peek() == kTotal);
        std::printf("core: %llu reader txns, 0 violations\n",
                    static_cast<unsigned long long>(reader_txns.load()));
    }

    // Every engine behind the facade passes the same bar.
    {
        tb::SharedCounterTimeBase tbase;
        stm::LsaAdapter<tb::SharedCounterTimeBase> a(tbase);
        check_opacity_facade(a, "LSA-RT/SharedCounter", 150);
    }
    {
        // Small blocks: readers constantly meet versions stamped behind
        // the exact counter; the deviation shrink must keep every snapshot
        // consistent anyway.
        tb::BatchedCounterTimeBase tbase(16);
        stm::LsaAdapter<tb::BatchedCounterTimeBase> a(tbase);
        check_opacity_facade(a, "LSA-RT/BatchedCounter(B=16)", 150);
    }
    {
        stm::Tl2Adapter a;
        check_opacity_facade(a, "TL2", 150);
    }
    {
        stm::VstmAdapter a;
        check_opacity_facade(a, "VSTM/cc-heuristic", 150);
    }
    {
        stm::VstmConfig cfg;
        cfg.commit_counter_heuristic = false;
        stm::VstmAdapter a(cfg);
        check_opacity_facade(a, "VSTM/always-validate", 150);
    }
    {
        stm::GlobalLockAdapter a;
        check_opacity_facade(a, "GlobalLock", 100);
    }

    std::printf("test_stm_opacity: PASS\n");
    return 0;
}
