// Tier-1 STM semantics: read-only snapshot consistency (opacity smoke
// test). Writers keep the invariant a + b == kTotal while moving value
// between the pair; readers -- inside the transaction body, i.e. including
// attempts that will never commit -- must always observe the invariant and
// stable repeated reads. LSA gives this by construction: every read is
// validated against the snapshot interval at read time.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/lsa_stm.hpp"
#include "timebase/shared_counter.hpp"
#include "util/rng.hpp"

#include "test_util.hpp"

using namespace chronostm;

namespace {

using TB = tb::SharedCounterTimeBase;
using Tx = Transaction<TB>;

constexpr long kTotal = 200;

}  // namespace

int main() {
    TB tbase;
    LsaStm<TB> stm(tbase);
    TVar<long, TB> a(kTotal / 2), b(kTotal / 2);

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> reader_txns{0};
    std::atomic<int> violations{0};

    std::vector<std::thread> threads;
    for (int w = 0; w < 4; ++w) {
        threads.emplace_back([&, w] {
            auto ctx = stm.make_context();
            Rng rng(w * 131 + 7);
            while (!stop.load(std::memory_order_acquire)) {
                const long amount = static_cast<long>(rng.below(20)) + 1;
                ctx.run([&](Tx& tx) {
                    a.set(tx, a.get(tx) - amount);
                    b.set(tx, b.get(tx) + amount);
                });
            }
        });
    }
    for (int r = 0; r < 4; ++r) {
        threads.emplace_back([&] {
            auto ctx = stm.make_context();
            while (!stop.load(std::memory_order_acquire)) {
                ctx.run([&](Tx& tx) {
                    const long a1 = a.get(tx);
                    const long b1 = b.get(tx);
                    const long a2 = a.get(tx);
                    if (a1 + b1 != kTotal || a1 != a2)
                        violations.fetch_add(1, std::memory_order_relaxed);
                });
                reader_txns.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }

    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    stop.store(true, std::memory_order_release);
    for (auto& th : threads) th.join();

    CHECK(violations.load() == 0);
    CHECK(reader_txns.load() > 0);
    CHECK(a.unsafe_peek() + b.unsafe_peek() == kTotal);
    std::printf("test_stm_opacity: PASS (%llu reader txns, 0 violations)\n",
                static_cast<unsigned long long>(reader_txns.load()));
    return 0;
}
