// Tier-1: epoch-based reclamation soundness for transactionally freed
// nodes (util/epochs.hpp + stm/alloc.hpp). The two hazards the epochs
// must cover (DESIGN.md "Reclamation vs. multi-version histories"):
//
//   1. a DOOMED reader that fetched a pointer to a node before the
//      unlinking transaction committed and dereferences it afterwards --
//      the node must stay intact until the reader's pin ends;
//   2. a multi-version (LSA) reader whose snapshot predates the unlink
//      and is served the OLD pointer value from a history ring -- it
//      commits read-only against the retired node's contents.
//
// Both are constructed deterministically by nesting a committing
// unlink transaction (its own context + participant) inside a reader's
// first attempt on the same thread. A threaded skiplist churn then
// checks the retire/free accounting end to end, and a failpoints-only
// section parks a reader mid-read across the free with a one-shot stall.
//
// CHRONOSTM_TIMEBASE sweeps extra time-base specs through the scenarios.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include <stdlib.h>  // posix_memalign for the over-aligned oracle path

#include <chronostm/ds/policy.hpp>
#include <chronostm/ds/skiplist.hpp>
#include <chronostm/stm/alloc.hpp>
#include <chronostm/stm/facade.hpp>
#include <chronostm/util/epochs.hpp>
#ifdef CHRONOSTM_FAILPOINTS
#include <chronostm/util/failpoints.hpp>
#endif

#include "test_util.hpp"

// ---- allocation oracle ------------------------------------------------
//
// TU-wide replacement of the global operator new/delete family with a
// live-allocation counter (plain malloc/free pass-through, so ASan/TSan
// still see every block). The oracle check below runs the threaded churn
// once to populate every lazy one-time structure, snapshots the counter,
// runs it again, and asserts the epoch drain returned the second run to
// NET ZERO -- a leak anywhere in the retire/limbo/free pipeline (or a
// double-count in the engines' pooled access sets) shows up as a nonzero
// delta, independent of the stats counters the other checks trust.
// Zero-initialized atomic: constant-initialized, so counting is safe
// from the first allocation of program start-up.

static std::atomic<long long> g_live_allocs{0};

static void* oracle_alloc(std::size_t n, std::size_t align) {
    void* p = nullptr;
    if (align <= alignof(std::max_align_t)) {
        p = std::malloc(n ? n : 1);
    } else if (posix_memalign(&p, align, n ? n : align) != 0) {
        p = nullptr;
    }
    if (p == nullptr) throw std::bad_alloc();
    g_live_allocs.fetch_add(1, std::memory_order_relaxed);
    return p;
}

static void oracle_free(void* p) noexcept {
    if (p == nullptr) return;
    g_live_allocs.fetch_sub(1, std::memory_order_relaxed);
    std::free(p);
}

void* operator new(std::size_t n) {
    return oracle_alloc(n, alignof(std::max_align_t));
}
void* operator new[](std::size_t n) {
    return oracle_alloc(n, alignof(std::max_align_t));
}
void* operator new(std::size_t n, std::align_val_t a) {
    return oracle_alloc(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
    return oracle_alloc(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { oracle_free(p); }
void operator delete[](void* p) noexcept { oracle_free(p); }
void operator delete(void* p, std::size_t) noexcept { oracle_free(p); }
void operator delete[](void* p, std::size_t) noexcept { oracle_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { oracle_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept {
    oracle_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
    oracle_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
    oracle_free(p);
}

using namespace chronostm;

namespace {

std::uint64_t as_word(void* p) {
    return static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(p));
}
void* as_ptr(std::uint64_t w) {
    return reinterpret_cast<void*>(static_cast<std::uintptr_t>(w));
}

void mark_freed(void* p, void* ctx) noexcept {
    ::operator delete(p);
    static_cast<std::atomic<bool>*>(ctx)->store(true);
}

// Reclamation-time deleter for a single-slot test node: runs the slot
// destructor over the node layout, releases it, and flips the flag the
// assertions watch.
template <typename A>
struct NodeReaper {
    std::atomic<bool> freed{false};
    static void reap(void* p, void* ctx) noexcept {
        ds::SlotTraits<A>::destroy(p);
        ::operator delete(p);
        static_cast<NodeReaper*>(ctx)->freed.store(true);
    }
};

// ---- epoch domain unit behaviour --------------------------------------

void check_epoch_domain() {
    eb::EpochDomain d;
    auto p1 = d.register_participant();
    auto p2 = d.register_participant();
    CHECK(d.epoch() >= 1);

    std::atomic<bool> freed{false};
    void* n = ::operator new(8);
    p2->pin();
    p1->pin();
    CHECK(p1->pinned() && p2->pinned());
    p1->retire(n, &mark_freed, &freed);
    CHECK(d.stats().retired == 1);
    CHECK(p1->limbo_size() == 1);
    p1->unpin();

    // p2's pin holds the horizon at its epoch: no amount of advancing
    // reclaims the entry while it stays pinned.
    for (int i = 0; i < 4; ++i) d.try_advance();
    p1->collect();
    CHECK(!freed.load());
    CHECK(d.stats().limbo == 1);

    // Once the last pin drains, one advance moves the horizon past the
    // retire stamp and collect() frees it.
    p2->unpin();
    d.try_advance();
    p1->collect();
    CHECK(freed.load());
    CHECK(d.stats().freed == 1);
    CHECK(d.stats().limbo == 0);
    CHECK(d.stats().advances >= 1);

    // A participant dying with limbo pending leaks nothing: the domain
    // adopts the entries and drains them on later advances.
    std::atomic<bool> orphan_freed{false};
    {
        auto p3 = d.register_participant();
        p3->pin();
        p3->retire(::operator new(8), &mark_freed, &orphan_freed);
        p3->unpin();
    }
    d.try_advance();
    d.try_advance();
    CHECK(orphan_freed.load());
    CHECK(d.stats().limbo == 0);
}

// ---- HeapCtx attempt semantics ----------------------------------------

void check_heapctx_semantics() {
    stm::TxHeap heap;
    stm::HeapCtx c = heap.make_ctx();
    CHECK(c.attached());
    std::atomic<bool> freed{false};

    // rollback: allocations are released, frees are forgotten (nothing
    // retires -- the node is still ours to delete).
    {
        eb::PinGuard pg = c.pin();
        c.begin_attempt();
        (void)c.tx_alloc(64);
        void* n = ::operator new(16);
        c.tx_free(n, &mark_freed, &freed);
        c.rollback();
        CHECK(heap.stats().retired == 0);
        ::operator delete(n);
    }

    // begin_attempt rolls the PREVIOUS attempt back: the retry loses its
    // allocations and pending frees before the new attempt logs.
    {
        eb::PinGuard pg = c.pin();
        c.begin_attempt();
        (void)c.tx_alloc(32);
        void* n = ::operator new(16);
        c.tx_free(n, &mark_freed, &freed);
        c.begin_attempt();  // simulated engine retry
        c.commit();
        CHECK(heap.stats().retired == 0);
        ::operator delete(n);
    }

    // commit: the allocation is now the caller's, the free retires into
    // limbo and reclaims only after the epoch moves past our pin.
    void* kept = nullptr;
    {
        eb::PinGuard pg = c.pin();
        c.begin_attempt();
        kept = c.tx_alloc(32);
        void* n = ::operator new(16);
        c.tx_free(n, &mark_freed, &freed);
        c.commit();
        CHECK(heap.stats().retired == 1);
        heap.drain();
        c.participant().collect();
        CHECK(!freed.load());  // our own pin blocks the horizon
    }
    heap.drain();
    c.participant().collect();
    CHECK(freed.load());
    CHECK(heap.stats().freed == 1);
    CHECK(heap.stats().limbo == 0);
    ::operator delete(kept);
}

// ---- hazard 1: doomed reader dereferences an unlinked node ------------
//
// The reader (an update transaction, so its stale read MUST abort at
// commit) fetches the node pointer, then a nested transaction on a
// second context unlinks the node and tx_frees it. The doomed attempt
// dereferences the retired node: the bytes must still be intact, and no
// amount of epoch advancing may reclaim it while the reader is pinned.
template <typename A>
void check_doomed_reader(const std::string& espec,
                         const std::string& tbspec) {
    stm::Engine eng = stm::make(espec, tb::make(tbspec));
    A& ad = *stm::get_if<A>(eng);
    using Traits = ds::SlotTraits<A>;
    ds::DirectPolicy<A> pol(ad);
    stm::TxHeap heap;
    ds::TxHandle<ds::DirectPolicy<A>> wh{ad.make_context(), {}, 1};
    ds::TxHandle<ds::DirectPolicy<A>> rh{ad.make_context(), {}, 2};
    heap.attach(wh.heap);
    heap.attach(rh.heap);

    NodeReaper<A> reaper;
    void* n0 = ::operator new(Traits::size());
    Traits::init(n0, 42);
    void* box = ::operator new(Traits::size());
    Traits::init(box, as_word(n0));
    void* scratch = ::operator new(Traits::size());
    Traits::init(scratch, 0);

    int pass = 0;
    std::uint64_t doomed_val = 0;
    bool doomed_node_freed = true;
    std::uint64_t final_val = 0;
    ds::run_alloc_tx(pol, rh, [&](auto& tx) {
        // The write makes the reader an update transaction: its stale
        // box read fails commit validation instead of riding a
        // snapshot-consistent read-only commit.
        tx.store(scratch, tx.load(scratch) + 1);
        void* p = as_ptr(tx.load(box));
        if (pass++ == 0) {
            ds::run_alloc_tx(pol, wh, [&](auto& wtx) {
                void* old = as_ptr(wtx.load(box));
                void* n1 = wh.heap.tx_alloc(Traits::size());
                Traits::init(n1, 43);
                wtx.store(box, as_word(n1));
                wh.heap.tx_free(old, &NodeReaper<A>::reap, &reaper);
            });
            // The unlink committed; push the epoch as hard as we can.
            // Our own pin must keep the node alive regardless.
            heap.drain();
            wh.heap.participant().collect();
            doomed_node_freed = reaper.freed.load();
            doomed_val = tx.load(p);
        }
        final_val = tx.load(p);
    });

    // Exactly one doomed pass plus the committing retry under exact
    // counters; deviating time bases (batched/sharded stamps) may insert
    // freshness aborts between the two while the counter catches up to
    // the writer's stamp block.
    CHECK_MSG(pass >= 2, "engine %s: doomed attempt did not retry (pass %d)",
              eng.name().c_str(), pass);
    CHECK(doomed_val == 42);       // retired node read back intact
    CHECK(!doomed_node_freed);     // pin blocked reclamation
    CHECK(final_val == 43);        // retry saw the replacement node
    heap.drain();
    wh.heap.participant().collect();
    CHECK(reaper.freed.load());
    CHECK(heap.stats().retired == 1);
    CHECK(heap.stats().freed == 1);
    CHECK(heap.stats().limbo == 0);

    void* n1 = as_ptr(Traits::peek(box));
    Traits::destroy(n1);
    ::operator delete(n1);
    Traits::destroy(box);
    ::operator delete(box);
    Traits::destroy(scratch);
    ::operator delete(scratch);
}

// ---- hazard 2: history ring serves a retired node (LSA only) ----------
//
// The reader pins its snapshot on an anchor, then the writer commits
// {anchor++, box -> n1, tx_free(n0)} in one transaction. The reader's
// later box read cannot extend (the anchor moved), so the multi-version
// history serves the OLD pointer value -- the retired node -- and the
// read-only commit succeeds at the old snapshot without ever aborting.
//
// Exact time bases (shared counter, perfect clock) guarantee that
// outcome. Coarse ones (batched counters) may collapse the writer's
// stamp into the reader's snapshot batch, and LSA then conservatively
// aborts instead of proving the history entry covers the snapshot --
// `require_history` relaxes the assertion to "either the history served
// the retired node intact, or the reader retried onto the new node";
// the reclamation invariants must hold in both outcomes.
void check_history_pinned_read(const std::string& tbspec,
                               bool require_history) {
    using A = stm::LsaAdapter;
    stm::Engine eng = stm::make("lsa:versions=8", tb::make(tbspec));
    A& ad = *stm::get_if<A>(eng);
    using Traits = ds::SlotTraits<A>;
    ds::DirectPolicy<A> pol(ad);
    stm::TxHeap heap;
    ds::TxHandle<ds::DirectPolicy<A>> wh{ad.make_context(), {}, 1};
    ds::TxHandle<ds::DirectPolicy<A>> rh{ad.make_context(), {}, 2};
    heap.attach(wh.heap);
    heap.attach(rh.heap);

    NodeReaper<A> reaper;
    void* n0 = ::operator new(Traits::size());
    Traits::init(n0, 42);
    void* box = ::operator new(Traits::size());
    Traits::init(box, as_word(n0));
    void* anchor = ::operator new(Traits::size());
    Traits::init(anchor, 7);

    int pass = 0;
    std::uint64_t seen = 0;
    bool freed_during_read = true;
    ds::run_alloc_tx(pol, rh, [&](auto& tx) {
        const std::uint64_t a0 = tx.load(anchor);  // fixes the snapshot
        CHECK(a0 >= 7);
        if (pass++ == 0) {
            ds::run_alloc_tx(pol, wh, [&](auto& wtx) {
                wtx.store(anchor, wtx.load(anchor) + 1);
                void* old = as_ptr(wtx.load(box));
                void* n1 = wh.heap.tx_alloc(Traits::size());
                Traits::init(n1, 43);
                wtx.store(box, as_word(n1));
                wh.heap.tx_free(old, &NodeReaper<A>::reap, &reaper);
            });
            heap.drain();
            wh.heap.participant().collect();
            freed_during_read = reaper.freed.load();
        }
        seen = tx.load(as_ptr(tx.load(box)));
    });

    if (require_history) {
        CHECK_MSG(pass == 1, "history read aborted (pass %d, timebase %s)",
                  pass, tbspec.c_str());
    }
    if (pass == 1) {
        CHECK(seen == 42);  // the history entry served the retired node
    } else {
        CHECK_MSG(pass == 2 && seen == 43,
                  "pass %d seen %llu under timebase %s", pass,
                  static_cast<unsigned long long>(seen), tbspec.c_str());
    }
    CHECK(!freed_during_read);
    heap.drain();
    wh.heap.participant().collect();
    CHECK(reaper.freed.load());
    CHECK(heap.stats().limbo == 0);

    void* n1 = as_ptr(Traits::peek(box));
    Traits::destroy(n1);
    ::operator delete(n1);
    Traits::destroy(box);
    ::operator delete(box);
    Traits::destroy(anchor);
    ::operator delete(anchor);
}

// ---- threaded churn: retire/free accounting end to end ----------------

template <typename A>
void check_threaded_churn(const std::string& espec) {
    stm::Engine eng = stm::make(espec);
    A& ad = *stm::get_if<A>(eng);
    ds::SkiplistSet<ds::DirectPolicy<A>> set{ds::DirectPolicy<A>(ad)};

    const unsigned kThreads = 4;
    const unsigned kOps = 3000;
    const std::uint64_t kSpace = 128;
    std::atomic<long> net{0};
    std::vector<std::thread> ts;
    for (unsigned t = 0; t < kThreads; ++t) {
        ts.emplace_back([&, t] {
            auto h = set.make_handle();
            std::uint64_t r = t * 0x9e3779b97f4a7c15ull + 1;
            long my = 0;
            for (unsigned i = 0; i < kOps; ++i) {
                r ^= r << 13;
                r ^= r >> 7;
                r ^= r << 17;
                const std::uint64_t key = r % kSpace;
                if (r & (1u << 20)) {
                    if (set.insert(h, key)) ++my;
                } else {
                    if (set.erase(h, key)) --my;
                }
            }
            net.fetch_add(my);
        });
    }
    for (auto& th : ts) th.join();

    CHECK_MSG(static_cast<long>(set.unsafe_size()) == net.load(),
              "engine %s: size %zu != net inserts %ld", eng.name().c_str(),
              set.unsafe_size(), net.load());
    CHECK(set.heap().stats().retired > 0);  // erases really retired nodes
    // Thread handles died with their threads; orphaned limbo must drain
    // completely once nobody is pinned.
    set.heap().drain();
    const auto st = set.heap().stats();
    CHECK_MSG(st.limbo == 0, "limbo %llu after drain",
              static_cast<unsigned long long>(st.limbo));
    CHECK(st.freed == st.retired);
}

// ---- net-allocation oracle across a churn run -------------------------
//
// The churn check above trusts the heap's own retired/freed counters; this
// one does not. The first run is warm-up (one-time lazy structures: pooled
// access sets, thread bootstrap, function-local statics); the second runs
// the identical churn against the operator-new counter and must come back
// to exactly the level it started from -- every node, context, pool page,
// and limbo record allocated inside the scope is returned by the time the
// engine is destroyed.

template <typename A>
void check_net_alloc_oracle(const std::string& espec) {
    check_threaded_churn<A>(espec);  // warm-up
    const long long before = g_live_allocs.load(std::memory_order_relaxed);
    check_threaded_churn<A>(espec);  // measured
    const long long after = g_live_allocs.load(std::memory_order_relaxed);
    CHECK_MSG(after == before,
              "engine %s: net live allocations drifted %lld -> %lld "
              "across a full churn + drain cycle",
              espec.c_str(), before, after);
}

// ---- failpoints: park a reader mid-read across the free ---------------

#ifdef CHRONOSTM_FAILPOINTS
void check_failpoint_parked_reader() {
    using A = stm::LsaAdapter;
    stm::Engine eng = stm::make("lsa");
    A& ad = *stm::get_if<A>(eng);
    using Traits = ds::SlotTraits<A>;
    ds::DirectPolicy<A> pol(ad);
    stm::TxHeap heap;
    ds::TxHandle<ds::DirectPolicy<A>> wh{ad.make_context(), {}, 1};
    heap.attach(wh.heap);

    NodeReaper<A> reaper;
    void* n0 = ::operator new(Traits::size());
    Traits::init(n0, 42);
    void* box = ::operator new(Traits::size());
    Traits::init(box, as_word(n0));

    fp::reset();
    fp::set_seed(1234);
    const std::uint64_t before = fp::total_faults();
    // One-shot: the reader's FIRST TVar read sleeps 300ms inside its
    // pinned window, parking it across the writer's unlink + free.
    fp::SiteConfig cfg;
    cfg.stall_us = 300'000;
    fp::arm_one_shot(fp::Site::k_lsa_read, cfg, 1);

    std::atomic<bool> reader_done{false};
    std::uint64_t seen = 0;
    std::thread reader([&] {
        ds::TxHandle<ds::DirectPolicy<A>> rh{ad.make_context(), {}, 2};
        heap.attach(rh.heap);
        ds::run_alloc_tx(pol, rh, [&](auto& tx) {
            seen = tx.load(as_ptr(tx.load(box)));
        });
        reader_done.store(true);
    });

    // Handshake: the fault counter bumps BEFORE the stall sleep, so once
    // we see it the reader is provably parked inside its pin.
    while (fp::total_faults() == before) std::this_thread::yield();

    ds::run_alloc_tx(pol, wh, [&](auto& wtx) {
        void* old = as_ptr(wtx.load(box));
        void* n1 = wh.heap.tx_alloc(Traits::size());
        Traits::init(n1, 43);
        wtx.store(box, as_word(n1));
        wh.heap.tx_free(old, &NodeReaper<A>::reap, &reaper);
    });
    heap.drain();
    wh.heap.participant().collect();
    CHECK(!reaper.freed.load());  // parked reader's pin holds the node
    CHECK(!reader_done.load());

    reader.join();
    CHECK(seen == 42 || seen == 43);
    heap.drain();
    wh.heap.participant().collect();
    CHECK(reaper.freed.load());
    CHECK(heap.stats().limbo == 0);
    fp::reset();

    void* n1 = as_ptr(Traits::peek(box));
    Traits::destroy(n1);
    ::operator delete(n1);
    Traits::destroy(box);
    ::operator delete(box);
}
#endif

}  // namespace

int main() {
    check_epoch_domain();
    check_heapctx_semantics();

    std::vector<std::string> tb_specs = {"shared"};
    if (const char* env = std::getenv("CHRONOSTM_TIMEBASE"))
        for (const auto& s : tb::split_specs(env)) tb_specs.push_back(s);
    for (const auto& tbs : tb_specs) {
        check_doomed_reader<stm::LsaAdapter>("lsa", tbs);
        check_doomed_reader<stm::OrecAdapter>("orec:bits=12", tbs);
        const bool exact = tbs == "shared" || tbs == "perfect";
        check_history_pinned_read(tbs, exact);
    }

    check_threaded_churn<stm::LsaAdapter>("lsa");
    check_threaded_churn<stm::OrecAdapter>("orec:bits=12");

    check_net_alloc_oracle<stm::LsaAdapter>("lsa");
    check_net_alloc_oracle<stm::OrecAdapter>("orec:bits=12");

#ifdef CHRONOSTM_FAILPOINTS
    check_failpoint_parked_reader();
#endif

    std::printf("test_stm_reclamation: all checks passed\n");
    return 0;
}
