// Tier-1 regression for StmConfig::help_committers: the two modes must
// actually diverge. A committer (thread A) is frozen via the test hook at
// the exact point where its commit is decided (descriptor Committed,
// claims armed) but its write set not yet applied -- the situation a
// preempted committer creates in production. A conflicting writer (thread
// B) then runs:
//
//   * helping ON:  B finishes A's write-back itself and commits while A is
//                  still frozen; helped counters are nonzero.
//   * helping OFF: B can only spin on A's lock and abort; it must not
//                  commit until A is released, and no helping is counted.

#include <atomic>
#include <chrono>
#include <thread>

#include <chronostm/core/lsa_stm.hpp>

#include "test_util.hpp"

using namespace chronostm;

namespace {

using Tx = Transaction;

void spin_until(const std::atomic<bool>& flag) {
    while (!flag.load(std::memory_order_acquire)) std::this_thread::yield();
}

struct Outcome {
    bool b_done_while_stalled = false;
    long x_while_stalled = -1;
    long y_while_stalled = -1;
    std::uint64_t helped = 0;
    long x_final = -1;
    long y_final = -1;
    std::uint64_t commits = 0;
};

Outcome run_schedule(bool help) {
    std::atomic<bool> stall_armed{true};
    std::atomic<bool> a_stalled{false};
    std::atomic<bool> release_a{false};

    StmConfig cfg;
    cfg.help_committers = help;
    cfg.commit_publish_hook = [&] {
        // Only the first committer (thread A, by construction) freezes.
        if (stall_armed.exchange(false)) {
            a_stalled.store(true, std::memory_order_release);
            spin_until(release_a);
        }
    };
    LsaStm stm(tb::make("shared"), cfg);
    TVar<long> x(0), y(0);

    std::thread a([&] {
        auto ctx = stm.make_context();
        ctx.run([&](Tx& tx) {
            x.set(tx, 1);
            y.set(tx, 1);
        });
    });
    spin_until(a_stalled);

    std::atomic<bool> b_done{false};
    std::thread b([&] {
        auto ctx = stm.make_context();
        ctx.run([&](Tx& tx) { x.set(tx, x.get(tx) + 10); });
        b_done.store(true, std::memory_order_release);
    });

    Outcome out;
    if (help) {
        // B must finish A's commit and its own while A is frozen.
        b.join();
        out.b_done_while_stalled = b_done.load(std::memory_order_acquire);
        out.x_while_stalled = x.unsafe_peek();
        out.y_while_stalled = y.unsafe_peek();
    } else {
        // Nothing can free A's locks: B must still be aborting-and-
        // retrying after a generous grace period, and A's writes must not
        // have been applied by anybody.
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
        out.b_done_while_stalled = b_done.load(std::memory_order_acquire);
        out.x_while_stalled = x.unsafe_peek();
        out.y_while_stalled = y.unsafe_peek();
    }

    release_a.store(true, std::memory_order_release);
    a.join();
    if (!help) b.join();

    const auto stats = stm.collected_stats();
    out.helped = stats.helped_commits + stats.helped_timestamps;
    out.x_final = x.unsafe_peek();
    out.y_final = y.unsafe_peek();
    out.commits = stats.commits();
    return out;
}

}  // namespace

int main() {
    {
        const Outcome o = run_schedule(/*help=*/true);
        CHECK(o.b_done_while_stalled);
        CHECK_MSG(o.x_while_stalled == 11,
                  "helper did not finish both commits: x=%ld",
                  o.x_while_stalled);
        CHECK_MSG(o.y_while_stalled == 1,
                  "helper did not apply the frozen committer's full write "
                  "set: y=%ld",
                  o.y_while_stalled);
        CHECK_MSG(o.helped >= 1, "no helping counted (helped=%llu)",
                  static_cast<unsigned long long>(o.helped));
        CHECK(o.x_final == 11 && o.y_final == 1);
        CHECK(o.commits == 2);
    }
    {
        const Outcome o = run_schedule(/*help=*/false);
        CHECK_MSG(!o.b_done_while_stalled,
                  "helping disabled but the conflicting writer committed "
                  "through a frozen committer (x=%ld)",
                  o.x_while_stalled);
        CHECK(o.x_while_stalled == 0);
        CHECK(o.y_while_stalled == 0);
        CHECK_MSG(o.helped == 0, "helping disabled but counted %llu",
                  static_cast<unsigned long long>(o.helped));
        // Once released, both transactions land and the values agree with
        // the helping run: the knob changes liveness, never the outcome.
        CHECK(o.x_final == 11 && o.y_final == 1);
        CHECK(o.commits == 2);
    }
    std::printf("test_stm_helping: PASS\n");
    return 0;
}
