// Tier-1: ExtSyncTimeBase respects the configured sync-error bound.
//
// Devices are driven by one shared WallTimeSource with injected per-device
// offsets of +/-inj ticks, and the time base publishes a deviation bound of
// dev >= inj. The contract: two devices read at the same real instant
// differ by at most 2*dev (in stamp units). We verify with a bracketing
// probe -- read clock A, read clock B, read clock A again; B's true instant
// lies between the two A reads, so B's stamp must lie within
// [a1 - 2*dev, a2 + 2*dev].

#include <cstdint>

#include <chronostm/timebase/ext_sync_clock.hpp>

#include "test_util.hpp"

using namespace chronostm;

namespace {

void check_bracket(std::int64_t inj_ticks, std::uint64_t dev_ticks,
                   int rounds) {
    tb::WallTimeSource src;
    tb::PerfectDevice d0(src, 1'000'000'000);  // 1 GHz: 1 tick = 1 ns
    tb::PerfectDevice d1(src, 1'000'000'000);
    auto tbase =
        tb::ExtSyncTimeBase::with_static_params({&d0, &d1}, inj_ticks,
                                                dev_ticks);

    // Published bound is exposed in stamp units for the STM core.
    CHECK(tbase->deviation() == dev_ticks << tb::kIdBits);

    auto clk_a = tbase->make_thread_clock();  // device 0: offset +inj
    auto clk_b = tbase->make_thread_clock();  // device 1: offset -inj
    const std::uint64_t dev_stamp = tbase->deviation();

    for (int i = 0; i < rounds; ++i) {
        const std::uint64_t a1 = clk_a.get_time();
        const std::uint64_t b = clk_b.get_time();
        const std::uint64_t a2 = clk_a.get_time();
        CHECK_MSG(b + 2 * dev_stamp >= a1,
                  "round %d: b=%llu a1=%llu dev=%llu", i,
                  static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(a1),
                  static_cast<unsigned long long>(dev_stamp));
        CHECK_MSG(b <= a2 + 2 * dev_stamp,
                  "round %d: b=%llu a2=%llu dev=%llu", i,
                  static_cast<unsigned long long>(b),
                  static_cast<unsigned long long>(a2),
                  static_cast<unsigned long long>(dev_stamp));
    }
}

}  // namespace

int main() {
    // Perfectly synchronized devices, tight bound.
    check_bracket(0, 1, 5000);
    // Offsets at the bound: 20us skew either way, bound published honestly.
    check_bracket(20'000, 20'000, 5000);
    // Offsets comfortably within a loose bound.
    check_bracket(5'000, 50'000, 5000);

    // An out-of-contract configuration must be observable as such: skew of
    // 200us against a published bound of 1ns breaks the bracket. This
    // guards the test's own sensitivity (and documents that the bound is a
    // promise the configuration must keep, not something enforced inside).
    {
        tb::WallTimeSource src;
        tb::PerfectDevice d0(src, 1'000'000'000), d1(src, 1'000'000'000);
        auto tbase =
            tb::ExtSyncTimeBase::with_static_params({&d0, &d1}, 200'000, 1);
        auto clk_a = tbase->make_thread_clock();
        auto clk_b = tbase->make_thread_clock();
        bool violated = false;
        for (int i = 0; i < 1000 && !violated; ++i) {
            const std::uint64_t a1 = clk_a.get_time();
            const std::uint64_t b = clk_b.get_time();
            const std::uint64_t a2 = clk_a.get_time();
            violated = (b + 2 * tbase->deviation() < a1) ||
                       (b > a2 + 2 * tbase->deviation());
        }
        CHECK(violated);
    }

    std::printf("test_ext_sync_bound: PASS\n");
    return 0;
}
